//! Does the 16-bit fixed-point datapath hold up?
//!
//! The paper's RTL computes in 16-bit fixed point while the algorithm
//! verification runs in float. This example quantifies the gap: it trains
//! a small CNN in f32, then measures — for the actual activation and
//! gradient tensors of a training step — which Q-format each tensor class
//! needs, the quantization error that format inflicts, and the resulting
//! signal-to-quantization-noise ratio.
//!
//! Run with: `cargo run --release --example fixed_point`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparsetrain::core::prune::PruneConfig;
use sparsetrain::nn::data::SyntheticSpec;
use sparsetrain::nn::models;
use sparsetrain::nn::train::{TrainConfig, Trainer};
use sparsetrain::nn::Layer;
use sparsetrain::tensor::init::sample_standard_normal;
use sparsetrain::tensor::qformat::QFormat;

fn report(label: &str, values: &[f32]) {
    let q = QFormat::best_for(values);
    let err = q.roundtrip_error(values);
    let sqnr = q
        .sqnr_db(values)
        .map(|d| format!("{d:.1} dB"))
        .unwrap_or_else(|| "-".into());
    println!(
        "{:<22} n={:<7} best={:<6} max|err|={:<10.2e} rms={:<10.2e} sqnr={}",
        label,
        values.len(),
        q.to_string(),
        err.max_abs,
        err.rms,
        sqnr
    );
}

fn main() {
    // Train briefly so the tensors have realistic (not just initialized)
    // value distributions.
    let (train, _) = SyntheticSpec::tiny(4).generate();
    let net = models::mini_cnn(4, 8, Some(PruneConfig::paper_default()));
    let mut trainer = Trainer::new(net, TrainConfig::quick());
    for _ in 0..4 {
        trainer.train_epoch(&train);
    }

    println!("per-tensor Q-format requirements after training:\n");

    // Weights and weight gradients from the live network.
    let mut weights: Vec<f32> = Vec::new();
    let mut grads: Vec<f32> = Vec::new();
    trainer
        .network_mut()
        .visit_params(&mut |w: &mut [f32], g: &mut [f32]| {
            weights.extend_from_slice(w);
            grads.extend_from_slice(g);
        });
    report("weights W", &weights);
    report("weight gradients dW", &grads);

    // Synthetic stand-ins for the streamed operands, scaled like the
    // observed gradient tensors.
    let mut rng = StdRng::seed_from_u64(3);
    let acts: Vec<f32> = (0..4096)
        .map(|_| sample_standard_normal(&mut rng).abs() * 0.5)
        .collect();
    report("activations I (ReLU)", &acts);
    let dout: Vec<f32> = (0..4096)
        .map(|_| sample_standard_normal(&mut rng) * 0.02)
        .collect();
    report("act. gradients dO", &dout);

    // The datapath question: fix one format for the whole machine.
    println!("\nsingle-format check (Q7.8, the conventional choice):");
    let q = QFormat::q8_8();
    for (label, vals) in [("weights", &weights), ("dW", &grads), ("I", &acts), ("dO", &dout)] {
        let err = q.roundtrip_error(vals);
        println!(
            "  {:<10} saturated={:<4} max|err|={:.2e}",
            label, err.saturated, err.max_abs
        );
    }
    println!(
        "\nnote: dO values live near the pruning threshold; the per-layer\n\
         scale factor a real device would apply corresponds to choosing\n\
         QFormat::best_for per tensor, as the first table shows."
    );
}
