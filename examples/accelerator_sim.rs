//! Simulates one captured training step of a ResNet on the SparseTrain
//! accelerator and the dense baseline, printing the per-layer, per-stage
//! cycle breakdown — the machinery behind the paper's Figs. 8 and 9.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use sparsetrain::core::dataflow::StepKind;
use sparsetrain::core::prune::PruneConfig;
use sparsetrain::nn::data::SyntheticSpec;
use sparsetrain::nn::models::ModelKind;
use sparsetrain::nn::train::{TrainConfig, Trainer};
use sparsetrain::sim::baseline::simulate_baseline;
use sparsetrain::sim::{ArchConfig, Machine};

fn main() {
    let mut spec = SyntheticSpec::cifar10_like();
    spec.size = 16;
    spec.train_samples = 200;
    spec.test_samples = 50;
    let (train, _) = spec.generate();

    // Short pruned training run to develop realistic sparsity.
    let net = ModelKind::Resnet18.build(
        spec.channels,
        spec.size,
        spec.classes,
        Some(PruneConfig::paper_default()),
        11,
    );
    let mut trainer = Trainer::new(net, TrainConfig::quick());
    for _ in 0..2 {
        trainer.train_epoch(&train);
    }
    let trace = trainer.capture_trace(&train, "resnet18", "cifar10-like");
    println!(
        "captured trace: {} layers, mean I density {:.2}, mean dO density {:.2}",
        trace.layers.len(),
        trace.mean_input_density(),
        trace.mean_dout_density()
    );

    let cfg = ArchConfig::paper_default();
    let machine = Machine::new(cfg);
    let sparse = machine.simulate(&trace);
    let dense = simulate_baseline(&machine, &trace);

    println!("\nper-layer cycles (sparse / dense):");
    println!("{:<18} {:>22} {:>22} {:>22}", "layer", "forward", "gta", "gtw");
    for (s, d) in sparse.layers.iter().zip(&dense.layers) {
        println!(
            "{:<18} {:>10} /{:>10} {:>10} /{:>10} {:>10} /{:>10}",
            s.name,
            s.step(StepKind::Forward).cycles,
            d.step(StepKind::Forward).cycles,
            s.step(StepKind::Gta).cycles,
            d.step(StepKind::Gta).cycles,
            s.step(StepKind::Gtw).cycles,
            d.step(StepKind::Gtw).cycles,
        );
    }

    println!(
        "\ntotals: {} vs {} cycles -> {:.2}x speedup",
        sparse.total_cycles,
        dense.total_cycles,
        sparse.speedup_over(&dense)
    );
    println!(
        "energy: {:.1} uJ vs {:.1} uJ (baseline SRAM share {:.0}%) -> {:.2}x efficiency",
        sparse.energy.total_uj(),
        dense.energy.total_uj(),
        dense.energy.sram_share() * 100.0,
        sparse.energy_efficiency_over(&dense)
    );
}
