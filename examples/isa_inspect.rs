//! Inspect the compiled instruction stream of a captured training step.
//!
//! Trains a small CNN for a moment, captures its dataflow trace, compiles
//! the trace into the accelerator's internal instruction program, then
//! shows the program three ways: summary statistics, the first lines of
//! the textual assembly, and the size of the binary encoding a host
//! driver would DMA to the device.
//!
//! Run with: `cargo run --release --example isa_inspect`

use sparsetrain::core::dataflow::asm::disassemble;
use sparsetrain::core::dataflow::encoding::{decode_program, encode_program};
use sparsetrain::core::dataflow::{compile, StepKind};
use sparsetrain::core::prune::PruneConfig;
use sparsetrain::nn::data::SyntheticSpec;
use sparsetrain::nn::models;
use sparsetrain::nn::train::{TrainConfig, Trainer};

fn main() {
    let (train, _) = SyntheticSpec::tiny(4).generate();
    let net = models::mini_cnn(4, 8, Some(PruneConfig::paper_default()));
    let mut trainer = Trainer::new(net, TrainConfig::quick());
    for _ in 0..3 {
        trainer.train_epoch(&train);
    }

    let trace = trainer.capture_trace(&train, "mini_cnn", "tiny");
    let program = compile(&trace);

    println!(
        "compiled {} instructions over {} tasks",
        program.len(),
        program.task_count()
    );
    let [fwd, gta, gtw] = program.instrs_per_step();
    println!("  forward (SRC):  {fwd}");
    println!("  GTA (MSRC):     {gta}");
    println!("  GTW (OSRC):     {gtw}");
    println!("  streamed operand values: {}", program.total_stream_values());

    // A taste of the assembly, one line per step kind.
    let listing = disassemble(&program);
    println!("\nassembly head:");
    for kind in StepKind::ALL {
        if let Some(line) = listing.lines().find(|l| {
            l.starts_with(match kind {
                StepKind::Forward => "src ",
                StepKind::Gta => "msrc",
                StepKind::Gtw => "osrc",
            })
        }) {
            println!("  {line}");
        }
    }

    // Binary round-trip: what the host driver ships to the device.
    let bytes = encode_program(&program).expect("program fits the 128-bit format");
    let back = decode_program(&bytes).expect("encoding round-trips");
    assert_eq!(back.instrs, program.instrs);
    println!(
        "\nbinary image: {} bytes ({} bytes/instruction incl. header)",
        bytes.len(),
        if program.is_empty() {
            0
        } else {
            bytes.len() / program.len()
        }
    );
    println!("round-trip decode verified.");
}
