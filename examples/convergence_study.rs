//! Convergence study (§VI-B): per-epoch training-loss curves for dense vs
//! pruned training, printed as CSV for easy plotting.
//!
//! Run with: `cargo run --release --example convergence_study`

use sparsetrain::core::prune::PruneConfig;
use sparsetrain::nn::data::SyntheticSpec;
use sparsetrain::nn::models::ModelKind;
use sparsetrain::nn::train::{TrainConfig, Trainer};

fn main() {
    let (train, test) = SyntheticSpec::tiny(4).generate();
    let epochs = 8;

    println!("setting,epoch,loss");
    let mut finals = Vec::new();
    for p in [None, Some(0.7), Some(0.9), Some(0.99)] {
        let label = p.map_or("dense".to_string(), |p| format!("p={p}"));
        let prune = p.map(|p| PruneConfig::new(p, 4));
        let net = ModelKind::Alexnet.build(3, 8, 4, prune, 17);
        let mut trainer = Trainer::new(
            net,
            TrainConfig {
                batch_size: 8,
                lr: 0.01,
                momentum: 0.9,
                weight_decay: 1e-4,
                seed: 0,
                engine: None,
                checkpoint: None,
                shard: None,
            },
        );
        for e in 0..epochs {
            if e >= 2 * epochs / 3 {
                trainer.set_learning_rate(0.002);
            }
            let stats = trainer.train_epoch(&train);
            println!("{label},{e},{:.4}", stats.loss);
        }
        finals.push((label, trainer.evaluate(&test)));
    }

    eprintln!("\nfinal test accuracies:");
    for (label, acc) in finals {
        eprintln!("  {label}: {:.1}%", acc * 100.0);
    }
    eprintln!("expected shape: pruned curves track the dense curve");
}
