//! Check the normal-distribution assumption behind threshold selection.
//!
//! §III derives the pruning threshold from a zero-mean normal model of
//! the activation gradients. This example trains a small network, taps
//! the gradients at a pruning position, and prints the distribution
//! diagnostics: moments, σ-band coverage, the half-normal ratio E|g|/σ
//! (√(2/π) ≈ 0.798 under the model) and a composite normality score.
//! It also shows the contrast with deliberately non-normal data.
//!
//! Run with: `cargo run --release --example gradient_stats`

use rand::rngs::StdRng;
use rand::stream::StreamKey;
use rand::{Rng, SeedableRng};
use sparsetrain::core::prune::diagnostics::{
    DistributionSummary, HALF_NORMAL_RATIO, NORMAL_1SIGMA, NORMAL_2SIGMA,
};
use sparsetrain::core::prune::{BatchStream, LayerPruner, PruneConfig};
use sparsetrain::tensor::init::sample_standard_normal;

fn print_summary(label: &str, s: &DistributionSummary) {
    println!("{label}:");
    println!("  n = {}, zero fraction = {:.3}", s.n, s.zero_fraction);
    println!("  mean = {:+.5}, sigma = {:.5}", s.mean, s.std_dev);
    println!(
        "  skewness = {:+.3}, excess kurtosis = {:+.3}",
        s.skewness, s.excess_kurtosis
    );
    println!(
        "  E|g|/sigma = {:.4} (normal: {:.4})",
        s.half_normal_ratio().unwrap_or(0.0),
        HALF_NORMAL_RATIO
    );
    println!(
        "  within 1 sigma = {:.4} (normal {:.4}), within 2 sigma = {:.4} (normal {:.4})",
        s.within_1sigma, NORMAL_1SIGMA, s.within_2sigma, NORMAL_2SIGMA
    );
    println!("  normality score = {:.3}\n", s.normality_score());
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // Gradient-like data: zero-mean normal, the model's home turf.
    let grads: Vec<f32> = (0..100_000)
        .map(|_| sample_standard_normal(&mut rng) * 0.02)
        .collect();
    let s = DistributionSummary::from_slice(&grads);
    print_summary("normal gradients (sigma = 0.02)", &s);

    // The same data after ReLU masking: structural zeros distort the raw
    // view; the non-zero view restores it.
    let mut masked = grads.clone();
    for (i, g) in masked.iter_mut().enumerate() {
        if i % 3 != 0 {
            *g = 0.0;
        }
    }
    print_summary(
        "masked gradients, raw view",
        &DistributionSummary::from_slice(&masked),
    );
    print_summary(
        "masked gradients, non-zero view",
        &DistributionSummary::from_nonzero(&masked),
    );

    // A deliberately non-normal stream: uniform gradients.
    let uniform: Vec<f32> = (0..100_000).map(|_| rng.gen_range(-0.05f32..0.05)).collect();
    print_summary(
        "uniform data (counter-example)",
        &DistributionSummary::from_slice(&uniform),
    );

    // What the threshold machinery does with each stream.
    println!("achieved density at target p = 0.9 after FIFO warm-up:");
    for (label, data) in [("normal", &grads), ("uniform", &uniform)] {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 4));
        let prune_key = StreamKey::new(7);
        let chunk = data.len() / 8;
        let mut density = 0.0;
        for i in 0..8 {
            let mut batch = data[i * chunk..(i + 1) * chunk].to_vec();
            pruner.prune_batch(&mut batch, &BatchStream::contiguous(prune_key.derive(i as u64)));
            density = pruner.stats().last_density().unwrap_or(1.0);
        }
        println!("  {label:<8} density = {density:.3}");
    }
    println!("\nthe normal stream lands near the design point; the uniform stream");
    println!("misses it — which is exactly why the diagnostics matter.");
}
