//! Quickstart: the three layers of SparseTrain in ~60 lines.
//!
//! 1. Prune a stream of activation-gradient batches (the algorithm, §III).
//! 2. Train a small CNN with pruning hooks (the training integration).
//! 3. Simulate the captured dataflow on the accelerator vs the dense
//!    baseline (the architecture, §V–VI).
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Set `SPARSETRAIN_ENGINE` to `scalar`, `parallel`, `simd`,
//! `parallel:simd`, `im2row`, `parallel:im2row`, `fixed`, a
//! `fixed:qI.F` format, or `auto` (the density-adaptive planner: probes
//! each layer/stage cell once, then replays the frozen plan — identical
//! output, adaptive speed) to run the training step's convolutions on a
//! named kernel engine from the registry.

use rand::rngs::StdRng;
use rand::stream::StreamKey;
use rand::SeedableRng;
use sparsetrain::core::prune::{BatchStream, LayerPruner, PruneConfig};
use sparsetrain::nn::data::SyntheticSpec;
use sparsetrain::nn::models;
use sparsetrain::nn::train::{TrainConfig, Trainer};
use sparsetrain::sim::baseline::simulate_baseline;
use sparsetrain::sim::{ArchConfig, Machine};
use sparsetrain::tensor::init::sample_standard_normal;

fn main() {
    // --- 1. The pruning algorithm on a synthetic gradient stream.
    let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 4));
    let mut rng = StdRng::seed_from_u64(1);
    // Pruning draws from counter-based streams: one key per batch, so the
    // result is reproducible at any thread count.
    let prune_key = StreamKey::new(1);
    for batch in 0..8u64 {
        let mut grads: Vec<f32> = (0..4096)
            .map(|_| sample_standard_normal(&mut rng) * 0.05)
            .collect();
        pruner.prune_batch(&mut grads, &BatchStream::contiguous(prune_key.derive(batch)));
        if let Some(d) = pruner.stats().last_density() {
            println!(
                "batch {batch}: density {:.3} (predicted tau {:.5})",
                d,
                pruner.stats().last_predicted_tau.unwrap_or(0.0)
            );
        }
    }

    // --- 2. Train a small CNN with the pruning hooks installed.
    let (train, test) = SyntheticSpec::tiny(4).generate();
    let net = models::mini_cnn(4, 8, Some(PruneConfig::paper_default()));
    // SPARSETRAIN_ENGINE selects a registered kernel engine by name; unset
    // keeps the dense im2row execution.
    let mut trainer = Trainer::new(net, TrainConfig::quick().with_env_engine());
    println!("kernel engine: {}", trainer.engine_name());
    for epoch in 0..5 {
        let stats = trainer.train_epoch(&train);
        println!("epoch {epoch}: loss {:.3} acc {:.2}", stats.loss, stats.accuracy);
    }
    println!("test accuracy: {:.2}", trainer.evaluate(&test));
    println!(
        "mean activation-gradient density: {:.3}",
        trainer.mean_grad_density().unwrap_or(1.0)
    );

    // --- 3. Capture one training step and simulate both architectures.
    let trace = trainer.capture_trace(&train, "mini_cnn", "tiny");
    let cfg = ArchConfig::paper_default();
    let machine = Machine::new(cfg);
    let sparse = machine.simulate(&trace);
    let dense = simulate_baseline(&machine, &trace);
    println!(
        "SparseTrain: {:.3} ms/sample, baseline: {:.3} ms/sample -> {:.2}x speedup",
        sparse.latency_ms(cfg.clock_mhz),
        dense.latency_ms(cfg.clock_mhz),
        sparse.speedup_over(&dense)
    );
    println!(
        "energy: {:.1} uJ vs {:.1} uJ -> {:.2}x efficiency",
        sparse.energy.total_uj(),
        dense.energy.total_uj(),
        sparse.energy_efficiency_over(&dense)
    );
}
