//! Captures a dataflow trace, saves it to disk, reloads it, and runs the
//! static work analysis — the offline workflow for studying a workload
//! without re-running training.
//!
//! Run with: `cargo run --release --example trace_analysis`

use sparsetrain::core::dataflow::{analysis, trace_io, StepKind};
use sparsetrain::core::prune::PruneConfig;
use sparsetrain::nn::data::SyntheticSpec;
use sparsetrain::nn::models;
use sparsetrain::nn::train::{TrainConfig, Trainer};
use sparsetrain::sim::baseline::simulate_baseline;
use sparsetrain::sim::{ArchConfig, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Capture.
    let (train, _) = SyntheticSpec::tiny(4).generate();
    let net = models::mini_cnn(4, 8, Some(PruneConfig::paper_default()));
    let mut trainer = Trainer::new(net, TrainConfig::quick());
    for _ in 0..3 {
        trainer.train_epoch(&train);
    }
    let trace = trainer.capture_trace(&train, "mini_cnn", "tiny");

    // Save and reload.
    let path = std::env::temp_dir().join("sparsetrain_example.trace");
    std::fs::write(&path, trace_io::to_text(&trace))?;
    let loaded = trace_io::from_text(&std::fs::read_to_string(&path)?)?;
    println!(
        "trace round-tripped through {} ({} layers)",
        path.display(),
        loaded.layers.len()
    );

    // Static analysis: ideal bounds.
    let summary = analysis::analyze(&loaded);
    println!(
        "dense MACs: {}  sparse MACs: {}  ideal speedup: {:.2}x",
        summary.total_dense_macs(),
        summary.total_sparse_macs(),
        summary.ideal_speedup()
    );
    for step in [StepKind::Forward, StepKind::Gta, StepKind::Gtw] {
        println!(
            "  {:<8} MAC reduction: {:.2}x",
            step.name(),
            summary.stage_reduction(step)
        );
    }

    // Compare the ideal bound with the simulated speedup.
    let machine = Machine::new(ArchConfig::paper_default());
    let sparse = machine.simulate(&loaded);
    let dense = simulate_baseline(&machine, &loaded);
    let measured = sparse.speedup_over(&dense);
    println!(
        "simulated speedup: {measured:.2}x (ideal bound {:.2}x; the gap is scheduling + bandwidth + per-op overhead)",
        summary.ideal_speedup()
    );
    Ok(())
}
