//! How much does the controller's scheduling policy matter?
//!
//! Generates synthetic traces across a sparsity sweep, extracts the
//! per-task cycle counts of each training stage, and schedules them onto
//! the paper's 168 PEs under three policies. The punchline: with dense
//! operands every policy ties, but the sparser the gradients the more the
//! greedy least-loaded policy (what SparseTrain's controller implements)
//! pulls ahead of static assignment — load balance is a *consequence of
//! sparsity*, not a free property of the dataflow.
//!
//! Run with: `cargo run --release --example scheduler_study`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparsetrain::core::dataflow::synth::{SynthLayer, SynthNet};
use sparsetrain::core::dataflow::{for_each_forward_op, LayerTrace};
use sparsetrain::sim::sched::{compare_policies, lower_bound};
use sparsetrain::sparse::work::src_work;

fn main() {
    let pes = 168;
    println!("scheduling one conv layer's forward tasks onto {pes} PEs\n");
    println!(
        "{:>8} {:>10} | {:>13} {:>13} {:>13} | {:>12}",
        "density", "tasks", "least-loaded", "round-robin", "contiguous", "lower bound"
    );

    for density in [1.0, 0.6, 0.3, 0.1, 0.05] {
        let mut rng = StdRng::seed_from_u64(42);
        let trace = SynthNet::new("sched", "sweep")
            .conv(SynthLayer::conv(64, 64, 32, 3).input_density(density))
            .generate(&mut rng);
        let LayerTrace::Conv(conv) = &trace.layers[0] else {
            unreachable!()
        };

        // One scheduling task = one output row; sum its op cycles.
        let mut tasks: Vec<u64> = Vec::new();
        let mut last_task = usize::MAX;
        for_each_forward_op(conv, |task, op| {
            let w = src_work(op.input, op.geom);
            if task != last_task {
                tasks.push(0);
                last_task = task;
            }
            *tasks.last_mut().expect("pushed above") += w.cycles;
        });

        let results = compare_policies(&tasks, pes);
        let lb = lower_bound(&tasks, pes);
        println!(
            "{:>8.2} {:>10} | {:>13} {:>13} {:>13} | {:>12}",
            density,
            tasks.len(),
            results[0].makespan,
            results[1].makespan,
            results[2].makespan,
            lb
        );
    }

    println!("\nutilization at density 0.1:");
    let mut rng = StdRng::seed_from_u64(42);
    let trace = SynthNet::new("sched", "sweep")
        .conv(SynthLayer::conv(64, 64, 32, 3).input_density(0.1))
        .generate(&mut rng);
    let LayerTrace::Conv(conv) = &trace.layers[0] else {
        unreachable!()
    };
    let mut tasks: Vec<u64> = Vec::new();
    let mut last_task = usize::MAX;
    for_each_forward_op(conv, |task, op| {
        let w = src_work(op.input, op.geom);
        if task != last_task {
            tasks.push(0);
            last_task = task;
        }
        *tasks.last_mut().expect("pushed above") += w.cycles;
    });
    for r in compare_policies(&tasks, pes) {
        println!("  {:<13} {:.1}%", r.policy.name(), 100.0 * r.utilization());
    }
}
