//! Algorithm 1 as the *hardware* executes it.
//!
//! The software view (`LayerPruner`) and the architecture view run the
//! same algorithm with different parts: in hardware, the PPU's stream
//! accumulators produce Σ|g| as a side effect of the GTA step, the
//! controller determines the batch threshold from it and pushes it into
//! the per-layer FIFO, and the PPU's pruning stage applies the predicted
//! τ̂ with an LFSR per lane — one value per cycle, no extra pass, no
//! buffering of unpruned gradients. This example runs both views over
//! the same gradient stream and shows they agree.
//!
//! Run with: `cargo run --release --example hw_pruning`

use rand::rngs::StdRng;
use rand::stream::StreamKey;
use rand::SeedableRng;
use sparsetrain::core::prune::predictor::{FifoPredictor, ThresholdPredictor};
use sparsetrain::core::prune::{determine_threshold, sigma_hat, BatchStream, LayerPruner, PruneConfig};
use sparsetrain::sim::prune_unit::PruneUnit;
use sparsetrain::tensor::init::sample_standard_normal;

fn main() {
    let target_sparsity = 0.9;
    let fifo_depth = 4;
    let batches = 12;
    let batch_len = 16_384;

    // Software reference: the paper's Algorithm 1 in one object, drawing
    // from counter-based streams (one per batch).
    let mut software = LayerPruner::new(PruneConfig::new(target_sparsity, fifo_depth));
    let sw_key = StreamKey::new(1);

    // Hardware decomposition: PPU pruning stage + controller-side FIFO.
    let mut unit = PruneUnit::new(0xACE1);
    let mut fifo = FifoPredictor::new(fifo_depth);

    let mut data_rng = StdRng::seed_from_u64(7);
    println!("batch | software density | hardware density | tau-hat (hw)");
    println!("------+------------------+------------------+-------------");
    for batch in 0..batches {
        let scale = 0.05 * (1.0 - batch as f32 / 40.0);
        let grads: Vec<f32> = (0..batch_len)
            .map(|_| sample_standard_normal(&mut data_rng) * scale)
            .collect();

        // --- software path
        let mut sw = grads.clone();
        software.prune_batch(&mut sw, &BatchStream::contiguous(sw_key.derive(batch as u64)));
        let sw_density = software.stats().last_density().unwrap_or(1.0);

        // --- hardware path: load predicted tau (0 while FIFO cold),
        // stream the batch through the PPU stage, then determine this
        // batch's tau from the stream accumulators and push it.
        let tau_hat = fifo.predict().unwrap_or(0.0);
        unit.reset_stats();
        unit.set_threshold(tau_hat as f32);
        let _pruned = unit.process(&grads);
        let stats = unit.stats();
        let sigma = sigma_hat(stats.grad_abs_sum, stats.processed as usize);
        fifo.observe(determine_threshold(sigma, target_sparsity));

        println!(
            "{batch:>5} | {sw_density:>16.3} | {:>16.3} | {tau_hat:>11.5}",
            stats.density()
        );
    }

    println!(
        "\nboth paths warm up after {fifo_depth} batches and land at the same \
         density;\nthe hardware path never stores an unpruned gradient and adds \
         zero cycles\n(one value/cycle through the PPU it already traverses) — \
         the 'almost no\noverhead' claim of §III-B."
    );
}
