//! Trains an AlexNet-style CNN on the CIFAR-10-like synthetic dataset,
//! dense vs pruned at several rates — a miniature of the paper's Table II
//! workflow showing that accuracy holds while gradient density collapses.
//!
//! Run with: `cargo run --release --example train_sparse_cnn`
//!
//! Pass a registered engine name (or set `SPARSETRAIN_ENGINE`) to execute
//! the convolutions on the sparse row-dataflow engine layer instead of
//! dense im2row:
//! `cargo run --release --example train_sparse_cnn -- parallel:simd`
//! `SPARSETRAIN_ENGINE=fixed:q4.12 cargo run --release --example train_sparse_cnn`
//! (registered engines: `scalar`, `parallel`, `simd`, `parallel:simd`,
//! `im2row`, `parallel:im2row`, `fixed`, parameterized `fixed:qI.F`
//! formats, plus anything added through
//! `sparsetrain::sparse::registry::register`).
//!
//! Set `SPARSETRAIN_CHECKPOINT_DIR=/some/dir` to snapshot each run after
//! every epoch (atomic write + keep-3 rotation); per-epoch metrics stream
//! to `target/train-metrics-<label>.jsonl` either way.

use sparsetrain::core::prune::PruneConfig;
use sparsetrain::nn::data::SyntheticSpec;
use sparsetrain::nn::metrics::{MetricStore, Patience, StopCondition};
use sparsetrain::nn::models::ModelKind;
use sparsetrain::nn::train::{TrainConfig, Trainer};
use sparsetrain::sparse::registry;

fn main() {
    // CLI argument wins; otherwise the SPARSETRAIN_ENGINE env override.
    let engine = match std::env::args().nth(1) {
        Some(name) => match registry::lookup(&name) {
            Some(handle) => Some(handle),
            None => {
                let known: Vec<_> = registry::registry().iter().map(|h| h.name()).collect();
                eprintln!(
                    "unknown engine {name:?} (registered: {}); using im2row",
                    known.join(", ")
                );
                None
            }
        },
        None => registry::env_override().unwrap_or_else(|e| panic!("{e}")),
    };
    if let Some(handle) = engine {
        println!(
            "executing convolutions on the {} sparse row-dataflow engine ({})",
            handle.name(),
            handle.summary()
        );
    }
    let mut spec = SyntheticSpec::cifar10_like();
    spec.size = 16; // keep the example snappy on CPU
    spec.train_samples = 400;
    spec.test_samples = 100;
    let (train, test) = spec.generate();

    println!(
        "model=alexnet dataset=cifar10-like train={} test={}",
        train.len(),
        test.len()
    );
    println!("{:<10} {:>8} {:>10} {:>8}", "p", "acc%", "rho_nnz", "epochs");

    for p in [None, Some(0.7), Some(0.9), Some(0.99)] {
        let prune = p.map(|p| PruneConfig::new(p, 4));
        let net = ModelKind::Alexnet.build(spec.channels, spec.size, spec.classes, prune, 7);
        let label = p.map_or("dense".to_string(), |p| format!("{p}"));
        let base = TrainConfig {
            batch_size: 16,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 3,
            engine,
            checkpoint: None,
            shard: None,
        };
        // With SPARSETRAIN_CHECKPOINT_DIR set, each epoch ends with an
        // atomically-written snapshot any later run can resume bitwise.
        let mut trainer = Trainer::new(net, base.with_env_checkpoint_dir());
        let mut metrics =
            MetricStore::with_jsonl(format!("target/train-metrics-{label}.jsonl")).with_latency();
        let mut stops: Vec<Box<dyn StopCondition>> = vec![Box::new(Patience::new(3))];
        // Two segments implement the step LR schedule (0.01 for four
        // epochs, then 0.002); epoch numbering continues across them.
        let first = trainer.train(&train, Some(&test), 4, &mut metrics, &mut stops);
        let mut epochs_run = first.epochs_run;
        if first.stopped.is_none() {
            trainer.set_learning_rate(0.002);
            let second = trainer.train(&train, Some(&test), 2, &mut metrics, &mut stops);
            epochs_run += second.epochs_run;
            if let Some(reason) = second.stopped {
                eprintln!("{label}: stopped early: {reason}");
            }
        } else if let Some(reason) = first.stopped {
            eprintln!("{label}: stopped early: {reason}");
        }
        let acc = trainer.evaluate(&test);
        let density = trainer.mean_grad_density().unwrap_or(1.0);
        println!("{label:<10} {:>8.1} {density:>10.3} {epochs_run:>8}", acc * 100.0);
    }
    println!("\nexpected shape (paper Table II): accuracy roughly flat, density falling with p");
}
