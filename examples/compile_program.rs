//! Inspects the compiled instruction program of one training step — the
//! artifact the paper's "simple compiler" produces to drive the
//! accelerator.
//!
//! Run with: `cargo run --release --example compile_program`

use sparsetrain::core::dataflow::{compile, StepKind};
use sparsetrain::core::prune::PruneConfig;
use sparsetrain::nn::data::SyntheticSpec;
use sparsetrain::nn::models;
use sparsetrain::nn::train::{TrainConfig, Trainer};

fn main() {
    let (train, _) = SyntheticSpec::tiny(4).generate();
    let net = models::mini_cnn(4, 8, Some(PruneConfig::paper_default()));
    let mut trainer = Trainer::new(net, TrainConfig::quick());
    for _ in 0..3 {
        trainer.train_epoch(&train);
    }
    let trace = trainer.capture_trace(&train, "mini_cnn", "tiny");
    let program = compile(&trace);

    println!(
        "compiled {} instructions over {} tasks",
        program.len(),
        program.task_count()
    );
    let [fwd, gta, gtw] = program.instrs_per_step();
    println!("  forward: {fwd} SRC instructions");
    println!("  gta:     {gta} MSRC instructions");
    println!("  gtw:     {gtw} OSRC instructions");
    println!(
        "  total streamed operand values: {}",
        program.total_stream_values()
    );

    println!("\nfirst instructions of each stage:");
    for step in [StepKind::Forward, StepKind::Gta, StepKind::Gtw] {
        if let Some(i) = program.instrs.iter().find(|i| i.step == step) {
            println!(
                "  {:<8} layer {} task {:>3}: K={} stride={} port1_nnz={} port2_nnz={} mask_nnz={}",
                step.name(),
                i.layer,
                i.task,
                i.kernel,
                i.stride,
                i.port1_nnz,
                i.port2_nnz,
                i.mask_nnz
            );
        }
    }
}
