//! Inspects the compiled instruction program of one training step — the
//! artifact the paper's "simple compiler" produces to drive the
//! accelerator — and then lowers an execution plan over the same trace
//! into the binary `STPLAN` program that `SPARSETRAIN_PLAN` and the plan
//! VM replay.
//!
//! Run with: `cargo run --release --example compile_program`

use sparsetrain::core::dataflow::{compile, compile_plan, LayerTrace, StepKind};
use sparsetrain::core::prune::PruneConfig;
use sparsetrain::nn::data::SyntheticSpec;
use sparsetrain::nn::models;
use sparsetrain::nn::train::{TrainConfig, Trainer};
use sparsetrain::sparse::planner::{batch_density, heuristic_handle};
use sparsetrain::sparse::{registry, ExecutionProgram, Plan, Stage};

fn main() {
    let (train, _) = SyntheticSpec::tiny(4).generate();
    let net = models::mini_cnn(4, 8, Some(PruneConfig::paper_default()));
    let mut trainer = Trainer::new(net, TrainConfig::quick());
    for _ in 0..3 {
        trainer.train_epoch(&train);
    }
    let trace = trainer.capture_trace(&train, "mini_cnn", "tiny");
    let program = compile(&trace);

    println!(
        "compiled {} instructions over {} tasks",
        program.len(),
        program.task_count()
    );
    let [fwd, gta, gtw] = program.instrs_per_step();
    println!("  forward: {fwd} SRC instructions");
    println!("  gta:     {gta} MSRC instructions");
    println!("  gtw:     {gtw} OSRC instructions");
    println!(
        "  total streamed operand values: {}",
        program.total_stream_values()
    );

    println!("\nfirst instructions of each stage:");
    for step in [StepKind::Forward, StepKind::Gta, StepKind::Gtw] {
        if let Some(i) = program.instrs.iter().find(|i| i.step == step) {
            println!(
                "  {:<8} layer {} task {:>3}: K={} stride={} port1_nnz={} port2_nnz={} mask_nnz={}",
                step.name(),
                i.layer,
                i.task,
                i.kernel,
                i.stride,
                i.port1_nnz,
                i.port2_nnz,
                i.mask_nnz
            );
        }
    }

    // Lower a per-(layer, stage) execution plan over the same trace into
    // the binary STPLAN program — the artifact `SPARSETRAIN_PLAN` accepts
    // and the plan VM replays.
    let mut plan = Plan::new(registry::lookup("scalar").expect("scalar is always registered"));
    for layer in &trace.layers {
        if let LayerTrace::Conv(conv) = layer {
            let din = batch_density(std::slice::from_ref(&conv.input));
            let dgrad = batch_density(std::slice::from_ref(&conv.dout));
            plan.set(&conv.name, Stage::Forward, heuristic_handle(Stage::Forward, din));
            plan.set(
                &conv.name,
                Stage::InputGrad,
                heuristic_handle(Stage::InputGrad, dgrad),
            );
            plan.set(
                &conv.name,
                Stage::WeightGrad,
                heuristic_handle(Stage::WeightGrad, dgrad),
            );
        }
    }
    let compiled = compile_plan(&plan, &trace, &program);
    let bytes = compiled.encode().expect("frozen plans always encode");
    println!(
        "\ncompiled execution program: {} bytes, {} cells, {} workspace hints, {} prune points",
        bytes.len(),
        compiled.cells().len(),
        compiled.workspace_hints().len(),
        compiled.prune_points().len()
    );
    for (layer, stage, engine) in compiled.cell_names() {
        let hint = compiled.workspace_hint(layer, stage).unwrap_or(0);
        println!(
            "  {layer:<8} {:<11} -> {engine:<15} (workspace hint {hint} elements)",
            stage.name()
        );
    }

    let decoded = ExecutionProgram::decode(&bytes).expect("own encoding always decodes");
    assert_eq!(decoded, compiled, "binary round-trip must be lossless");
    assert_eq!(
        Plan::from_program(&decoded).expect("engines resolve"),
        plan,
        "plan survives the program form"
    );
    println!("round-trip: decode(encode(program)) is lossless");
}
