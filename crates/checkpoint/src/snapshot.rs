//! Plain-data model of a training snapshot.
//!
//! Everything in here is engine-agnostic: the trainer gathers these values from the live
//! network/optimizer/pruner state and the codec serializes them bit-exactly (floats travel as
//! their IEEE-754 bit patterns, never through a decimal representation).

/// Position of a run inside the deterministic stream ladder.
///
/// `seed`/`epoch`/`step` mirror `StreamSeeds`; `steps_into_epoch` counts optimizer steps taken
/// since the current epoch's shuffle, so a mid-epoch snapshot can skip already-consumed batches
/// on resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPosition {
    pub seed: u64,
    pub epoch: u64,
    pub step: u64,
    pub steps_into_epoch: u64,
}

/// Optimizer (SGD-with-momentum) state: learning rate plus one velocity buffer per parameter
/// tensor, in `visit_params` order.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerState {
    pub lr: f32,
    pub velocities: Vec<Vec<f32>>,
}

/// Serialized `LayerPruner` state: config echo (validated on restore), FIFO contents, and the
/// running outcome statistics that feed `mean_density` / tau reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunerState {
    pub target_sparsity: f64,
    pub fifo_depth: u64,
    pub fifo: Vec<f64>,
    pub batches: u64,
    /// `(kept, snapped, zeroed)` of the most recent prune, if any.
    pub last_outcome: Option<[u64; 3]>,
    pub last_density: Option<f64>,
    pub density_sum: f64,
    pub density_count: u64,
    pub last_predicted_tau: Option<f64>,
    pub last_determined_tau: Option<f64>,
}

/// One unit of per-layer state. A layer may contribute several entries (e.g. a conv layer
/// contributes its parameters and its gradient-density counters).
#[derive(Debug, Clone, PartialEq)]
pub enum LayerState {
    /// Parameter tensors (weights, biases, batch-norm gammas/running stats, ...) as flat
    /// buffers in the layer's own order.
    Params { layer: String, tensors: Vec<Vec<f32>> },
    /// An embedded xoshiro256++ RNG (dropout mask stream).
    Rng { layer: String, state: [u64; 4] },
    /// Gradient-density accumulators (sum of per-batch densities and batch count).
    Density { layer: String, sum: f64, count: u64 },
    /// An Algorithm-1 `LayerPruner` attached to the layer.
    Pruner { layer: String, state: Box<PrunerState> },
}

impl LayerState {
    /// Name of the layer this entry belongs to.
    pub fn layer(&self) -> &str {
        match self {
            LayerState::Params { layer, .. }
            | LayerState::Rng { layer, .. }
            | LayerState::Density { layer, .. }
            | LayerState::Pruner { layer, .. } => layer,
        }
    }

    /// Human-readable kind tag, used in mismatch diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            LayerState::Params { .. } => "params",
            LayerState::Rng { .. } => "rng",
            LayerState::Density { .. } => "density",
            LayerState::Pruner { .. } => "pruner",
        }
    }
}

/// A frozen execution plan embedded in a snapshot, in either of the planner's serialized forms.
/// The bytes are opaque here — this crate stores and round-trips them bit-exactly; the trainer
/// resolves them through the planner's parsers on resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanPayload {
    /// The line-oriented text format (`Plan::to_text`) — what snapshots before the binary
    /// program format carried.
    Text(String),
    /// A compiled `STPLAN` binary execution program (`ExecutionProgram::encode`).
    Program(Vec<u8>),
}

/// A complete, resumable training snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Stream-ladder position (seed/epoch/step) plus mid-epoch offset.
    pub position: RunPosition,
    /// Shuffling `StdRng` (xoshiro256++) state as captured at the start of the current epoch.
    pub shuffle_rng: [u64; 4],
    /// Frozen execution plan, if the run used the `auto` engine.
    pub plan: Option<PlanPayload>,
    /// Optimizer state.
    pub optimizer: OptimizerState,
    /// Per-layer state entries in network traversal order.
    pub layers: Vec<LayerState>,
}
