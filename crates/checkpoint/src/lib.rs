//! Bitwise-resumable training snapshots.
//!
//! Because pruning randomness is counter-based (the Philox stream ladder in
//! `sparsetrain_core::prune::stream`), a training run's entire trajectory is a pure function of
//! its recorded state: model parameters, optimizer velocities, pruner accumulators, the
//! `StreamSeeds` ladder position, the shuffling RNG, and the frozen execution plan. This crate
//! captures all of that in a [`Snapshot`], serializes it with a derive-free versioned binary
//! codec (no external serde — see [`codec`]), and persists it atomically with keep-K rotation
//! (see [`policy`]). A run killed at any step and resumed from a snapshot is **bitwise
//! identical** to the uninterrupted run.
//!
//! The trainer-facing integration (`Trainer::snapshot` / `Trainer::resume`) lives in
//! `sparsetrain-nn`; this crate is deliberately dependency-free plain data + IO.

pub mod codec;
pub mod policy;
pub mod snapshot;

pub use codec::{decode_snapshot, encode_snapshot, DecodeError, EncodeError, Section};
pub use policy::{latest_in, load, CheckpointManager, CheckpointPolicy, LoadError, CHECKPOINT_DIR_ENV};
pub use snapshot::{LayerState, OptimizerState, PlanPayload, PrunerState, RunPosition, Snapshot};
