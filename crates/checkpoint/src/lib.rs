//! Bitwise-resumable training snapshots.
//!
//! Because pruning randomness is counter-based (the Philox stream ladder in
//! `sparsetrain_core::prune::stream`), a training run's entire trajectory is a pure function of
//! its recorded state: model parameters, optimizer velocities, pruner accumulators, the
//! `StreamSeeds` ladder position, the shuffling RNG, and the frozen execution plan. This crate
//! captures all of that in a [`Snapshot`], serializes it with a derive-free versioned binary
//! codec (no external serde — see [`codec`]), and persists it atomically with keep-K rotation
//! (see [`policy`]). A run killed at any step and resumed from a snapshot is **bitwise
//! identical** to the uninterrupted run.
//!
//! The trainer-facing integration (`Trainer::snapshot` / `Trainer::resume`) lives in
//! `sparsetrain-nn`; this crate is deliberately plain data + IO (its only dependency is the
//! zero-cost `sparsetrain-faults` injection seams threaded through save and load).
//!
//! Recovery support: [`policy::scan_latest_valid`] walks a run directory newest-first and
//! returns the newest snapshot that actually decodes, reporting (not aborting on) corrupt or
//! truncated files via [`LoadError`]s that name the offending file.
//!
//! # The `.stck` container
//!
//! On disk a snapshot is a tagged-section container (magic `STCKPT`, version 1; all integers
//! little-endian, floats as raw IEEE-754 bit patterns):
//!
//! | Tag | Section | Presence | Contents |
//! |---|---|---|---|
//! | 1 | `position` | mandatory | run seed + epoch/step/steps-into-epoch counters |
//! | 2 | `shuffle-rng` | mandatory | the dataset-shuffle RNG's four `u64` state words |
//! | 3 | `plan` | optional¹ | the frozen execution plan as legacy text |
//! | 4 | `optimizer` | mandatory | learning rate + per-tensor momentum velocity buffers |
//! | 5 | `layers` | mandatory | per-layer params / RNG / density / pruner state entries |
//! | 6 | `plan-program` | optional¹ | the frozen plan as a compiled binary `STPLAN` program |
//!
//! ¹ A snapshot carries its plan in exactly one of the two forms; a container holding both is
//! rejected as a duplicate section. The normative byte-level layout (including the per-kind
//! `layers` bodies) is `docs/FORMATS.md` at the repository root; the implementation is
//! [`codec`], whose golden-byte tests pin the layout — any change there is a wire-format
//! break and must bump [`codec::VERSION`].

pub mod codec;
pub mod policy;
pub mod snapshot;

pub use codec::{decode_snapshot, encode_snapshot, DecodeError, EncodeError, Section};
pub use policy::{
    latest_in, load, scan_latest_valid, snapshot_files_in, CheckpointManager, CheckpointPolicy, LoadError,
    ScanOutcome, CHECKPOINT_DIR_ENV,
};
pub use snapshot::{LayerState, OptimizerState, PlanPayload, PrunerState, RunPosition, Snapshot};
