//! Bitwise-resumable training snapshots.
//!
//! Because pruning randomness is counter-based (the Philox stream ladder in
//! `sparsetrain_core::prune::stream`), a training run's entire trajectory is a pure function of
//! its recorded state: model parameters, optimizer velocities, pruner accumulators, the
//! `StreamSeeds` ladder position, the shuffling RNG, and the frozen execution plan. This crate
//! captures all of that in a [`Snapshot`], serializes it with a derive-free versioned binary
//! codec (no external serde — see [`codec`]), and persists it atomically with keep-K rotation
//! (see [`policy`]). A run killed at any step and resumed from a snapshot is **bitwise
//! identical** to the uninterrupted run.
//!
//! The trainer-facing integration (`Trainer::snapshot` / `Trainer::resume`) lives in
//! `sparsetrain-nn`; this crate is deliberately plain data + IO (its only dependency is the
//! zero-cost `sparsetrain-faults` injection seams threaded through save and load).
//!
//! Recovery support: [`policy::scan_latest_valid`] walks a run directory newest-first and
//! returns the newest snapshot that actually decodes, reporting (not aborting on) corrupt or
//! truncated files via [`LoadError`]s that name the offending file.

pub mod codec;
pub mod policy;
pub mod snapshot;

pub use codec::{decode_snapshot, encode_snapshot, DecodeError, EncodeError, Section};
pub use policy::{
    latest_in, load, scan_latest_valid, snapshot_files_in, CheckpointManager, CheckpointPolicy, LoadError,
    ScanOutcome, CHECKPOINT_DIR_ENV,
};
pub use snapshot::{LayerState, OptimizerState, PlanPayload, PrunerState, RunPosition, Snapshot};
