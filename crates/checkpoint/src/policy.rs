//! Checkpoint cadence, atomic persistence, and keep-K rotation.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::codec::DecodeError;
use crate::snapshot::Snapshot;

/// Environment variable naming the checkpoint run directory, consistent with
/// `SPARSETRAIN_ENGINE` / `SPARSETRAIN_PLAN`.
pub const CHECKPOINT_DIR_ENV: &str = "SPARSETRAIN_CHECKPOINT_DIR";

/// File extension for snapshot files.
pub const SNAPSHOT_EXT: &str = "stck";

/// When and where to write checkpoints.
///
/// Cadence is expressed in optimizer steps and/or completed epochs; either (or both) may be
/// set. `keep` bounds how many snapshot files survive rotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Run directory snapshots are written into (created on first use).
    pub dir: PathBuf,
    /// Write a snapshot every N optimizer steps.
    pub every_steps: Option<u64>,
    /// Write a snapshot every N completed epochs.
    pub every_epochs: Option<u64>,
    /// Keep at most this many snapshot files (oldest deleted first). 0 means keep all.
    pub keep: usize,
}

impl CheckpointPolicy {
    /// Snapshot after every `n` completed epochs into `dir`, keeping the 3 most recent files.
    pub fn every_epochs(dir: impl Into<PathBuf>, n: u64) -> Self {
        assert!(n > 0, "epoch cadence must be positive");
        CheckpointPolicy {
            dir: dir.into(),
            every_steps: None,
            every_epochs: Some(n),
            keep: 3,
        }
    }

    /// Snapshot after every `n` optimizer steps into `dir`, keeping the 3 most recent files.
    pub fn every_steps(dir: impl Into<PathBuf>, n: u64) -> Self {
        assert!(n > 0, "step cadence must be positive");
        CheckpointPolicy {
            dir: dir.into(),
            every_steps: Some(n),
            every_epochs: None,
            keep: 3,
        }
    }

    /// Override the keep-K rotation bound.
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }

    /// Build a per-epoch policy from [`CHECKPOINT_DIR_ENV`], if set (empty value = unset).
    pub fn from_env() -> Option<Self> {
        match std::env::var(CHECKPOINT_DIR_ENV) {
            Ok(dir) if !dir.is_empty() => Some(CheckpointPolicy::every_epochs(dir, 1)),
            _ => None,
        }
    }

    /// Whether a snapshot is due after `steps` total optimizer steps.
    pub fn step_due(&self, steps: u64) -> bool {
        matches!(self.every_steps, Some(n) if steps > 0 && steps.is_multiple_of(n))
    }

    /// Whether a snapshot is due after `epochs` completed epochs.
    pub fn epoch_due(&self, epochs: u64) -> bool {
        matches!(self.every_epochs, Some(n) if epochs > 0 && epochs.is_multiple_of(n))
    }
}

/// Errors raised while loading a snapshot file. Both variants name the
/// offending file, so a recovery scan can report exactly which snapshot it
/// skipped and why.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io {
        /// The snapshot file that failed to read.
        path: PathBuf,
        /// The underlying I/O error.
        error: io::Error,
    },
    /// The bytes did not parse as a snapshot.
    Decode {
        /// The snapshot file that failed to decode.
        path: PathBuf,
        /// The typed decode failure.
        error: DecodeError,
    },
}

impl LoadError {
    /// The snapshot file this error is about.
    pub fn path(&self) -> &Path {
        match self {
            LoadError::Io { path, .. } | LoadError::Decode { path, .. } => path,
        }
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io { path, error } => {
                write!(f, "checkpoint read failed for {}: {error}", path.display())
            }
            LoadError::Decode { path, error } => {
                write!(f, "checkpoint decode failed for {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Writes snapshots atomically (write `.tmp`, fsync, rename) and rotates old files.
///
/// ```
/// use sparsetrain_checkpoint::{
///     CheckpointManager, CheckpointPolicy, OptimizerState, RunPosition, Snapshot,
/// };
///
/// let dir = std::env::temp_dir().join(format!("stck-doctest-{}", std::process::id()));
/// let mut mgr = CheckpointManager::new(CheckpointPolicy::every_steps(&dir, 1).with_keep(2))?;
/// let snap = Snapshot {
///     position: RunPosition { seed: 1, epoch: 0, step: 0, steps_into_epoch: 0 },
///     shuffle_rng: [0; 4],
///     plan: None,
///     optimizer: OptimizerState { lr: 0.1, velocities: vec![] },
///     layers: vec![],
/// };
/// let path = mgr.save(&snap)?;
/// assert_eq!(sparsetrain_checkpoint::load(&path)?.position.seed, 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CheckpointManager {
    policy: CheckpointPolicy,
    written: Vec<PathBuf>,
}

impl CheckpointManager {
    /// Create the run directory if needed, sweep any `.tmp` files a crashed predecessor left
    /// between write and rename, and adopt the snapshot files already present (so rotation
    /// keeps working across resumed processes).
    pub fn new(policy: CheckpointPolicy) -> io::Result<Self> {
        fs::create_dir_all(&policy.dir)?;
        sweep_orphaned_tmp(&policy.dir)?;
        let mut written = snapshot_files(&policy.dir)?;
        sort_chronologically(&mut written);
        Ok(CheckpointManager { policy, written })
    }

    /// The policy this manager enforces.
    pub fn policy(&self) -> &CheckpointPolicy {
        &self.policy
    }

    /// Encode and persist `snap` atomically, then rotate down to `keep` files.
    /// Returns the final snapshot path.
    pub fn save(&mut self, snap: &Snapshot) -> io::Result<PathBuf> {
        let mut bytes = snap
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // Fault seams: a write-error fault fails the save before anything hits
        // disk (an ENOSPC-style transient); a torn-write fault persists only a
        // prefix but still completes the rename, leaving a corrupt final file
        // for recovery scans to detect and skip.
        match sparsetrain_faults::on_checkpoint_write() {
            Some(sparsetrain_faults::WriteFault::Error) => {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected checkpoint write failure (ENOSPC)",
                ));
            }
            Some(sparsetrain_faults::WriteFault::Torn) => {
                let half = bytes.len() / 2;
                bytes.truncate(half);
            }
            None => {}
        }
        let name = format!(
            "ckpt-e{:05}-s{:09}.{SNAPSHOT_EXT}",
            snap.position.epoch, snap.position.step
        );
        let path = self.policy.dir.join(&name);
        let tmp = self.policy.dir.join(format!("{name}.tmp"));
        {
            let mut file = fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, &bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        // The rename is only durable once the directory entry itself is on disk.
        sync_dir(&self.policy.dir)?;
        if !self.written.contains(&path) {
            self.written.push(path.clone());
        }
        self.rotate()?;
        Ok(path)
    }

    fn rotate(&mut self) -> io::Result<()> {
        if self.policy.keep == 0 {
            return Ok(());
        }
        while self.written.len() > self.policy.keep {
            let old = self.written.remove(0);
            match fs::remove_file(&old) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Paths of the snapshot files this manager currently tracks, oldest first.
    pub fn files(&self) -> &[PathBuf] {
        &self.written
    }
}

/// Most recent snapshot file in `dir`, by numeric `(epoch, step)` position, if any.
pub fn latest_in(dir: &Path) -> io::Result<Option<PathBuf>> {
    let mut files = snapshot_files(dir)?;
    sort_chronologically(&mut files);
    Ok(files.pop())
}

/// Read and decode a snapshot file.
pub fn load(path: &Path) -> Result<Snapshot, LoadError> {
    let mut bytes = fs::read(path).map_err(|error| LoadError::Io {
        path: path.to_path_buf(),
        error,
    })?;
    // Fault seams: a short-read fault drops the second half of the bytes; a
    // bit-flip fault corrupts one seeded bit. Both must surface as typed
    // decode errors, never panics.
    match sparsetrain_faults::on_checkpoint_read() {
        Some(sparsetrain_faults::ReadFault::Short) => {
            let half = bytes.len() / 2;
            bytes.truncate(half);
        }
        Some(sparsetrain_faults::ReadFault::BitFlip { salt }) => {
            sparsetrain_faults::flip_bit(&mut bytes, salt);
        }
        None => {}
    }
    Snapshot::decode(&bytes).map_err(|error| LoadError::Decode {
        path: path.to_path_buf(),
        error,
    })
}

/// Result of [`scan_latest_valid`]: the newest snapshot that actually
/// decodes, plus a typed record of every newer file the scan had to skip.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Newest decodable snapshot, with its path; `None` when the directory
    /// holds no valid snapshot at all.
    pub latest_valid: Option<(PathBuf, Snapshot)>,
    /// Load failures for the newer files skipped on the way (newest first),
    /// each naming its file.
    pub skipped: Vec<LoadError>,
}

/// Scan `dir` newest-first for a snapshot that loads, skipping corrupt,
/// truncated, or unreadable files instead of aborting — a crashed run's
/// torn final write must not block resuming from the older valid snapshot
/// behind it. Only directory enumeration itself can fail.
pub fn scan_latest_valid(dir: &Path) -> io::Result<ScanOutcome> {
    let mut skipped = Vec::new();
    for path in snapshot_files_in(dir)?.into_iter().rev() {
        match load(&path) {
            Ok(snap) => {
                return Ok(ScanOutcome {
                    latest_valid: Some((path, snap)),
                    skipped,
                })
            }
            Err(e) => skipped.push(e),
        }
    }
    Ok(ScanOutcome {
        latest_valid: None,
        skipped,
    })
}

/// Numeric `(epoch, step)` of a `ckpt-e{epoch}-s{step}.stck` path, if it matches the scheme.
fn parse_position(path: &Path) -> Option<(u64, u64)> {
    let stem = path.file_stem()?.to_str()?;
    let rest = stem.strip_prefix("ckpt-e")?;
    let (epoch, step) = rest.split_once("-s")?;
    Some((epoch.parse().ok()?, step.parse().ok()?))
}

/// Oldest-first by numeric `(epoch, step)` — NOT lexicographically: once a step outgrows the
/// zero-padded `{:09}` width, `1_000_000_000` sorts before `999_999_999` as a string. Files
/// outside the naming scheme sort first (no position), ties fall back to the path.
fn sort_chronologically(files: &mut [PathBuf]) {
    files.sort_by(|a, b| (parse_position(a), a).cmp(&(parse_position(b), b)));
}

/// Remove `*.{SNAPSHOT_EXT}.tmp` files a crashed process left between write and rename. Only
/// this manager's own naming scheme is touched; a concurrent writer renaming a swept file away
/// is tolerated.
fn sweep_orphaned_tmp(dir: &Path) -> io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    let suffix = format!(".{SNAPSHOT_EXT}.tmp");
    for entry in entries {
        let path = entry?.path();
        let is_orphan = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(&suffix));
        if is_orphan {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(())
}

/// Flush a directory's entry table so a preceding rename survives power loss.
#[cfg(unix)]
fn sync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// Directories cannot be opened for syncing on this platform; renames stay
/// atomic-but-not-durable, as before.
#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> io::Result<()> {
    Ok(())
}

/// Snapshot files in `dir`, oldest first by numeric `(epoch, step)`.
pub fn snapshot_files_in(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = snapshot_files(dir)?;
    sort_chronologically(&mut files);
    Ok(files)
}

fn snapshot_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some(SNAPSHOT_EXT) {
            out.push(path);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{OptimizerState, RunPosition};

    fn tiny_snapshot(epoch: u64, step: u64) -> Snapshot {
        Snapshot {
            position: RunPosition {
                seed: 1,
                epoch,
                step,
                steps_into_epoch: 0,
            },
            shuffle_rng: [1, 2, 3, 4],
            plan: None,
            optimizer: OptimizerState {
                lr: 0.1,
                velocities: vec![],
            },
            layers: vec![],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sparsetrain-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Tests that install a fault plan share process-global state with each
    /// other; serialize them (tolerating poison from an unrelated panic).
    fn fault_test_guard() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn cadence_checks() {
        let p = CheckpointPolicy::every_steps("/tmp/x", 10);
        assert!(!p.step_due(0));
        assert!(!p.step_due(9));
        assert!(p.step_due(10));
        assert!(p.step_due(20));
        assert!(!p.epoch_due(1));

        let p = CheckpointPolicy::every_epochs("/tmp/x", 2);
        assert!(!p.epoch_due(0));
        assert!(!p.epoch_due(1));
        assert!(p.epoch_due(2));
        assert!(!p.step_due(2));
    }

    #[test]
    #[should_panic(expected = "cadence must be positive")]
    fn zero_cadence_panics() {
        let _ = CheckpointPolicy::every_epochs("/tmp/x", 0);
    }

    #[test]
    fn save_rotate_and_reload() {
        let dir = temp_dir("rotate");
        let mut mgr = CheckpointManager::new(CheckpointPolicy::every_epochs(&dir, 1).with_keep(2)).unwrap();
        for epoch in 1..=4 {
            mgr.save(&tiny_snapshot(epoch, epoch * 10)).unwrap();
        }
        assert_eq!(mgr.files().len(), 2, "rotation should keep only 2 files");
        let latest = latest_in(&dir).unwrap().expect("a snapshot should exist");
        assert!(latest.to_string_lossy().contains("e00004"));
        let snap = load(&latest).unwrap();
        assert_eq!(snap.position.epoch, 4);
        // No .tmp leftovers after atomic renames.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manager_adopts_existing_files() {
        let dir = temp_dir("adopt");
        let mut mgr = CheckpointManager::new(CheckpointPolicy::every_epochs(&dir, 1).with_keep(2)).unwrap();
        mgr.save(&tiny_snapshot(1, 10)).unwrap();
        mgr.save(&tiny_snapshot(2, 20)).unwrap();
        drop(mgr);
        // A fresh manager (simulating a resumed process) must rotate the old files too.
        let mut mgr = CheckpointManager::new(CheckpointPolicy::every_epochs(&dir, 1).with_keep(2)).unwrap();
        assert_eq!(mgr.files().len(), 2);
        mgr.save(&tiny_snapshot(3, 30)).unwrap();
        assert_eq!(mgr.files().len(), 2);
        let names: Vec<_> = mgr
            .files()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert!(
            names[0].contains("e00002") && names[1].contains("e00003"),
            "kept: {names:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_in_orders_numerically_across_padding_overflow() {
        // Regression: step 1_000_000_000 outgrows the `{:09}` zero padding, so a
        // lexicographic sort ranked it *before* 999_999_999 and resume picked the older file.
        let dir = temp_dir("overflow");
        let mut mgr = CheckpointManager::new(CheckpointPolicy::every_steps(&dir, 1).with_keep(0)).unwrap();
        mgr.save(&tiny_snapshot(1, 999_999_999)).unwrap();
        mgr.save(&tiny_snapshot(1, 1_000_000_000)).unwrap();
        let latest = latest_in(&dir).unwrap().expect("snapshots exist");
        assert_eq!(load(&latest).unwrap().position.step, 1_000_000_000);

        // Epoch overflow across the `{:05}` width, same story.
        mgr.save(&tiny_snapshot(99_999, 5)).unwrap();
        mgr.save(&tiny_snapshot(100_000, 1)).unwrap();
        let latest = latest_in(&dir).unwrap().expect("snapshots exist");
        assert_eq!(load(&latest).unwrap().position.epoch, 100_000);

        // Rotation on a fresh manager must also drop the numerically-oldest file first.
        let mgr = CheckpointManager::new(CheckpointPolicy::every_steps(&dir, 1).with_keep(2)).unwrap();
        let first = mgr.files().first().and_then(|p| parse_position(p)).unwrap();
        assert_eq!(
            first,
            (1, 999_999_999),
            "oldest must sort first: {:?}",
            mgr.files()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manager_sweeps_orphaned_tmp_files() {
        // Regression: a crash between write and rename stranded `*.stck.tmp` files forever.
        let dir = temp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        let orphan = dir.join(format!("ckpt-e00001-s000000010.{SNAPSHOT_EXT}.tmp"));
        fs::write(&orphan, b"half-written").unwrap();
        let unrelated = dir.join("notes.tmp");
        fs::write(&unrelated, b"keep me").unwrap();

        let mgr = CheckpointManager::new(CheckpointPolicy::every_epochs(&dir, 1)).unwrap();
        assert!(!orphan.exists(), "orphaned snapshot tmp must be swept");
        assert!(unrelated.exists(), "files outside the naming scheme must survive");
        assert!(mgr.files().is_empty(), "a tmp file is not a snapshot");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_reports_typed_errors_naming_the_file() {
        let dir = temp_dir("load-errors");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.stck");
        fs::write(&path, b"not a checkpoint").unwrap();
        match load(&path) {
            Err(
                e @ LoadError::Decode {
                    error: DecodeError::BadMagic,
                    ..
                },
            ) => {
                assert_eq!(e.path(), path.as_path());
                assert!(e.to_string().contains("bad.stck"), "{e}");
            }
            other => panic!("expected BadMagic, got {other:?}"),
        }
        match load(&dir.join("absent.stck")) {
            Err(e @ LoadError::Io { .. }) => {
                assert!(e.to_string().contains("absent.stck"), "{e}");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_skips_truncated_newest_and_resumes_from_older_valid() {
        // Regression: a torn final write must not block recovery — the scan
        // has to report the corrupt newest file by name and fall back to the
        // valid snapshot behind it.
        let dir = temp_dir("scan-truncated");
        let mut mgr = CheckpointManager::new(CheckpointPolicy::every_steps(&dir, 1).with_keep(0)).unwrap();
        mgr.save(&tiny_snapshot(1, 10)).unwrap();
        let newest = mgr.save(&tiny_snapshot(2, 20)).unwrap();
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let outcome = scan_latest_valid(&dir).unwrap();
        let (path, snap) = outcome.latest_valid.expect("older snapshot is valid");
        assert_eq!(snap.position.epoch, 1);
        assert!(path.to_string_lossy().contains("e00001"));
        assert_eq!(outcome.skipped.len(), 1);
        assert_eq!(outcome.skipped[0].path(), newest.as_path());
        assert!(
            matches!(outcome.skipped[0], LoadError::Decode { .. }),
            "truncation must surface as a typed decode error: {:?}",
            outcome.skipped[0]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_skips_zero_length_newest() {
        let dir = temp_dir("scan-empty");
        let mut mgr = CheckpointManager::new(CheckpointPolicy::every_steps(&dir, 1).with_keep(0)).unwrap();
        mgr.save(&tiny_snapshot(1, 10)).unwrap();
        fs::write(dir.join("ckpt-e00002-s000000020.stck"), b"").unwrap();

        let outcome = scan_latest_valid(&dir).unwrap();
        let (_, snap) = outcome.latest_valid.expect("older snapshot is valid");
        assert_eq!(snap.position.epoch, 1);
        assert_eq!(outcome.skipped.len(), 1);
        assert!(outcome.skipped[0].path().to_string_lossy().contains("e00002"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_with_no_valid_snapshot_reports_every_skip() {
        let dir = temp_dir("scan-none");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("ckpt-e00001-s000000010.stck"), b"garbage").unwrap();
        fs::write(dir.join("ckpt-e00002-s000000020.stck"), b"").unwrap();
        let outcome = scan_latest_valid(&dir).unwrap();
        assert!(outcome.latest_valid.is_none());
        assert_eq!(outcome.skipped.len(), 2, "{:?}", outcome.skipped);
        // An empty directory scans clean.
        let empty = temp_dir("scan-void");
        let outcome = scan_latest_valid(&empty).unwrap();
        assert!(outcome.latest_valid.is_none() && outcome.skipped.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_write_faults_tear_and_fail_saves() {
        let _g = fault_test_guard();
        let dir = temp_dir("fault-write");
        let mut mgr = CheckpointManager::new(CheckpointPolicy::every_steps(&dir, 1).with_keep(0)).unwrap();
        sparsetrain_faults::install(
            sparsetrain_faults::FaultPlan::new(5)
                .with(
                    sparsetrain_faults::Site::CkptWriteError,
                    sparsetrain_faults::Trigger::At(0),
                )
                .with(
                    sparsetrain_faults::Site::CkptWriteTorn,
                    sparsetrain_faults::Trigger::At(1),
                ),
        );
        let err = mgr
            .save(&tiny_snapshot(1, 10))
            .expect_err("write-error fault fails the save");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(latest_in(&dir).unwrap().is_none(), "nothing hit disk");

        let torn = mgr
            .save(&tiny_snapshot(2, 20))
            .expect("torn write still renames into place");
        assert!(matches!(load(&torn), Err(LoadError::Decode { .. })));

        let good = mgr.save(&tiny_snapshot(3, 30)).expect("faults exhausted");
        sparsetrain_faults::clear();
        assert_eq!(load(&good).unwrap().position.epoch, 3);
        // The recovery scan rides over the torn file.
        let outcome = scan_latest_valid(&dir).unwrap();
        assert_eq!(outcome.latest_valid.unwrap().1.position.epoch, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_read_faults_surface_as_decode_errors() {
        let _g = fault_test_guard();
        let dir = temp_dir("fault-read");
        let mut mgr = CheckpointManager::new(CheckpointPolicy::every_steps(&dir, 1).with_keep(0)).unwrap();
        let path = mgr.save(&tiny_snapshot(1, 10)).unwrap();
        sparsetrain_faults::install(
            sparsetrain_faults::FaultPlan::new(6)
                .with(
                    sparsetrain_faults::Site::CkptReadShort,
                    sparsetrain_faults::Trigger::At(0),
                )
                .with(
                    sparsetrain_faults::Site::CkptReadFlip,
                    sparsetrain_faults::Trigger::At(1),
                ),
        );
        assert!(matches!(load(&path), Err(LoadError::Decode { .. })), "short read");
        // The format has no checksum, so a flipped bit either fails to decode
        // or decodes to a *different* snapshot — never silently round-trips.
        match load(&path) {
            Err(LoadError::Decode { .. }) => {}
            Ok(snap) => assert_ne!(snap, tiny_snapshot(1, 10), "flip must corrupt something"),
            other => panic!("unexpected: {other:?}"),
        }
        sparsetrain_faults::clear();
        assert_eq!(load(&path).unwrap().position.epoch, 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
