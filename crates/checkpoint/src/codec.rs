//! Derive-free binary codec for [`Snapshot`].
//!
//! Wire format (all integers little-endian, floats as IEEE-754 bit patterns):
//!
//! ```text
//! header:   magic [u8; 8] | version u16 | reserved u16 | section_count u32
//! section:  tag u16 | reserved u16 | payload_len u64 | payload [u8; payload_len]
//! ```
//!
//! Sections appear at most once each; `Position`, `ShuffleRng`, `Optimizer`, and `Layers` are
//! mandatory, `Plan` and `PlanProgram` are optional (and mutually exclusive: a snapshot carries
//! its frozen plan either as legacy text or as a compiled `STPLAN` binary program, never both).
//! Decoding is strict: unknown tags, duplicate or missing
//! sections, short payloads, and trailing bytes are all typed [`DecodeError`]s that name the
//! offending section — corrupt snapshots must never panic.

use std::error::Error;
use std::fmt;

use crate::snapshot::{LayerState, OptimizerState, PlanPayload, PrunerState, RunPosition, Snapshot};

/// File magic: "STCKPT" + format epoch byte + NUL.
pub const MAGIC: [u8; 8] = *b"STCKPT\x01\x00";
/// Current snapshot format version.
pub const VERSION: u16 = 1;

const TAG_POSITION: u16 = 1;
const TAG_SHUFFLE_RNG: u16 = 2;
const TAG_PLAN: u16 = 3;
const TAG_OPTIMIZER: u16 = 4;
const TAG_LAYERS: u16 = 5;
const TAG_PLAN_PROGRAM: u16 = 6;

const KIND_PARAMS: u8 = 1;
const KIND_RNG: u8 = 2;
const KIND_DENSITY: u8 = 3;
const KIND_PRUNER: u8 = 4;

/// The named sections of the snapshot container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    Position,
    ShuffleRng,
    Plan,
    Optimizer,
    Layers,
    PlanProgram,
}

impl Section {
    fn from_tag(tag: u16) -> Option<Self> {
        match tag {
            TAG_POSITION => Some(Section::Position),
            TAG_SHUFFLE_RNG => Some(Section::ShuffleRng),
            TAG_PLAN => Some(Section::Plan),
            TAG_OPTIMIZER => Some(Section::Optimizer),
            TAG_LAYERS => Some(Section::Layers),
            TAG_PLAN_PROGRAM => Some(Section::PlanProgram),
            _ => None,
        }
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Section::Position => "position",
            Section::ShuffleRng => "shuffle-rng",
            Section::Plan => "plan",
            Section::Optimizer => "optimizer",
            Section::Layers => "layers",
            Section::PlanProgram => "plan-program",
        };
        f.write_str(name)
    }
}

/// Errors raised while encoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A count or length exceeded the width reserved for it on the wire.
    FieldOverflow {
        section: Section,
        field: &'static str,
        value: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::FieldOverflow {
                section,
                field,
                value,
            } => {
                write!(
                    f,
                    "section {section}: field {field} value {value} exceeds wire width"
                )
            }
        }
    }
}

impl Error for EncodeError {}

/// Errors raised while decoding a snapshot. Every variant names the region at fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the fixed header.
    TruncatedHeader,
    /// Header magic does not match [`MAGIC`].
    BadMagic,
    /// Header version is not [`VERSION`].
    UnsupportedVersion(u16),
    /// A section body ended before its declared content did.
    TruncatedSection { section: Section },
    /// A section header declared a tag this version does not know.
    UnknownSection { tag: u16 },
    /// The same section appeared twice.
    DuplicateSection { section: Section },
    /// A mandatory section was absent.
    MissingSection { section: Section },
    /// Bytes remained after the last declared section.
    TrailingBytes { extra: usize },
    /// A field inside a section held an invalid value.
    InvalidField { section: Section, field: &'static str },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedHeader => write!(f, "snapshot shorter than its header"),
            DecodeError::BadMagic => write!(f, "bad snapshot magic (not a sparsetrain checkpoint)"),
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {VERSION})")
            }
            DecodeError::TruncatedSection { section } => {
                write!(f, "section {section} is truncated")
            }
            DecodeError::UnknownSection { tag } => write!(f, "unknown section tag {tag}"),
            DecodeError::DuplicateSection { section } => {
                write!(f, "section {section} appears more than once")
            }
            DecodeError::MissingSection { section } => {
                write!(f, "mandatory section {section} is missing")
            }
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the last section")
            }
            DecodeError::InvalidField { section, field } => {
                write!(f, "section {section}: invalid value for field {field}")
            }
        }
    }
}

impl Error for DecodeError {}

// ---------------------------------------------------------------------------
// Writer / Reader helpers
// ---------------------------------------------------------------------------

struct Writer {
    section: Section,
    buf: Vec<u8>,
}

impl Writer {
    fn new(section: Section) -> Self {
        Writer {
            section,
            buf: Vec::new(),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32_bits(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn f64_bits(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn count(&mut self, field: &'static str, n: usize) -> Result<(), EncodeError> {
        let v = u32::try_from(n).map_err(|_| EncodeError::FieldOverflow {
            section: self.section,
            field,
            value: n,
        })?;
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn str(&mut self, field: &'static str, s: &str) -> Result<(), EncodeError> {
        self.count(field, s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    fn bytes(&mut self, field: &'static str, xs: &[u8]) -> Result<(), EncodeError> {
        self.count(field, xs.len())?;
        self.buf.extend_from_slice(xs);
        Ok(())
    }

    fn f32_slice(&mut self, field: &'static str, xs: &[f32]) -> Result<(), EncodeError> {
        self.count(field, xs.len())?;
        for &x in xs {
            self.f32_bits(x);
        }
        Ok(())
    }

    fn f64_slice(&mut self, field: &'static str, xs: &[f64]) -> Result<(), EncodeError> {
        self.count(field, xs.len())?;
        for &x in xs {
            self.f64_bits(x);
        }
        Ok(())
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64_bits(x);
            }
            None => self.u8(0),
        }
    }
}

struct Reader<'a> {
    section: Section,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(section: Section, bytes: &'a [u8]) -> Self {
        Reader {
            section,
            bytes,
            pos: 0,
        }
    }

    fn truncated(&self) -> DecodeError {
        DecodeError::TruncatedSection {
            section: self.section,
        }
    }

    fn invalid(&self, field: &'static str) -> DecodeError {
        DecodeError::InvalidField {
            section: self.section,
            field,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        if end > self.bytes.len() {
            return Err(self.truncated());
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn f32_bits(&mut self) -> Result<f32, DecodeError> {
        let b = self.take(4)?;
        Ok(f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
    }

    fn f64_bits(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn count(&mut self) -> Result<usize, DecodeError> {
        Ok(self.u32()? as usize)
    }

    fn str(&mut self, field: &'static str) -> Result<String, DecodeError> {
        let n = self.count()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| self.invalid(field))
    }

    fn byte_vec(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.count()?;
        Ok(self.take(n)?.to_vec())
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, DecodeError> {
        let n = self.count()?;
        let mut out = Vec::with_capacity(n.min(self.bytes.len() / 4 + 1));
        for _ in 0..n {
            out.push(self.f32_bits()?);
        }
        Ok(out)
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.count()?;
        let mut out = Vec::with_capacity(n.min(self.bytes.len() / 8 + 1));
        for _ in 0..n {
            out.push(self.f64_bits()?);
        }
        Ok(out)
    }

    fn opt_f64(&mut self, field: &'static str) -> Result<Option<f64>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64_bits()?)),
            _ => Err(self.invalid(field)),
        }
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.bytes.len() {
            return Err(DecodeError::InvalidField {
                section: self.section,
                field: "section length",
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serialize a snapshot into the versioned container format.
pub fn encode_snapshot(snap: &Snapshot) -> Result<Vec<u8>, EncodeError> {
    let mut sections: Vec<(u16, Vec<u8>)> = Vec::with_capacity(5);

    let mut w = Writer::new(Section::Position);
    w.u64(snap.position.seed);
    w.u64(snap.position.epoch);
    w.u64(snap.position.step);
    w.u64(snap.position.steps_into_epoch);
    sections.push((TAG_POSITION, w.buf));

    let mut w = Writer::new(Section::ShuffleRng);
    for &word in &snap.shuffle_rng {
        w.u64(word);
    }
    sections.push((TAG_SHUFFLE_RNG, w.buf));

    match &snap.plan {
        Some(PlanPayload::Text(text)) => {
            let mut w = Writer::new(Section::Plan);
            w.str("plan text", text)?;
            sections.push((TAG_PLAN, w.buf));
        }
        Some(PlanPayload::Program(bytes)) => {
            let mut w = Writer::new(Section::PlanProgram);
            w.bytes("plan program bytes", bytes)?;
            sections.push((TAG_PLAN_PROGRAM, w.buf));
        }
        None => {}
    }

    let mut w = Writer::new(Section::Optimizer);
    w.f32_bits(snap.optimizer.lr);
    w.count("velocity buffers", snap.optimizer.velocities.len())?;
    for vel in &snap.optimizer.velocities {
        w.f32_slice("velocity values", vel)?;
    }
    sections.push((TAG_OPTIMIZER, w.buf));

    let mut w = Writer::new(Section::Layers);
    w.count("layer entries", snap.layers.len())?;
    for entry in &snap.layers {
        encode_layer_state(&mut w, entry)?;
    }
    sections.push((TAG_LAYERS, w.buf));

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in sections {
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    Ok(out)
}

fn encode_layer_state(w: &mut Writer, entry: &LayerState) -> Result<(), EncodeError> {
    match entry {
        LayerState::Params { layer, tensors } => {
            w.u8(KIND_PARAMS);
            w.str("layer name", layer)?;
            w.count("param tensors", tensors.len())?;
            for t in tensors {
                w.f32_slice("param values", t)?;
            }
        }
        LayerState::Rng { layer, state } => {
            w.u8(KIND_RNG);
            w.str("layer name", layer)?;
            for &word in state {
                w.u64(word);
            }
        }
        LayerState::Density { layer, sum, count } => {
            w.u8(KIND_DENSITY);
            w.str("layer name", layer)?;
            w.f64_bits(*sum);
            w.u64(*count);
        }
        LayerState::Pruner { layer, state } => {
            w.u8(KIND_PRUNER);
            w.str("layer name", layer)?;
            w.f64_bits(state.target_sparsity);
            w.u64(state.fifo_depth);
            w.f64_slice("fifo values", &state.fifo)?;
            w.u64(state.batches);
            match &state.last_outcome {
                Some([kept, snapped, zeroed]) => {
                    w.u8(1);
                    w.u64(*kept);
                    w.u64(*snapped);
                    w.u64(*zeroed);
                }
                None => w.u8(0),
            }
            w.opt_f64(state.last_density);
            w.f64_bits(state.density_sum);
            w.u64(state.density_count);
            w.opt_f64(state.last_predicted_tau);
            w.opt_f64(state.last_determined_tau);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Parse a snapshot from the versioned container format.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, DecodeError> {
    if bytes.len() < 16 {
        return Err(DecodeError::TruncatedHeader);
    }
    if bytes[..8] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let section_count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;

    let mut position: Option<RunPosition> = None;
    let mut shuffle_rng: Option<[u64; 4]> = None;
    let mut plan: Option<PlanPayload> = None;
    let mut optimizer: Option<OptimizerState> = None;
    let mut layers: Option<Vec<LayerState>> = None;

    let mut pos = 16usize;
    for _ in 0..section_count {
        if bytes.len() < pos + 12 {
            // We cannot know which section the short header belonged to.
            return Err(DecodeError::TruncatedHeader);
        }
        let tag = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]);
        let section = Section::from_tag(tag).ok_or(DecodeError::UnknownSection { tag })?;
        let mut raw_len = [0u8; 8];
        raw_len.copy_from_slice(&bytes[pos + 4..pos + 12]);
        let len = u64::from_le_bytes(raw_len) as usize;
        pos += 12;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or(DecodeError::TruncatedSection { section })?;
        let payload = &bytes[pos..end];
        pos = end;

        match section {
            Section::Position => {
                if position.is_some() {
                    return Err(DecodeError::DuplicateSection { section });
                }
                let mut r = Reader::new(section, payload);
                let parsed = RunPosition {
                    seed: r.u64()?,
                    epoch: r.u64()?,
                    step: r.u64()?,
                    steps_into_epoch: r.u64()?,
                };
                r.finish()?;
                position = Some(parsed);
            }
            Section::ShuffleRng => {
                if shuffle_rng.is_some() {
                    return Err(DecodeError::DuplicateSection { section });
                }
                let mut r = Reader::new(section, payload);
                let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
                r.finish()?;
                shuffle_rng = Some(state);
            }
            Section::Plan => {
                // Shares the plan slot with PlanProgram: a snapshot carries one frozen plan.
                if plan.is_some() {
                    return Err(DecodeError::DuplicateSection { section });
                }
                let mut r = Reader::new(section, payload);
                let text = r.str("plan text")?;
                r.finish()?;
                plan = Some(PlanPayload::Text(text));
            }
            Section::PlanProgram => {
                if plan.is_some() {
                    return Err(DecodeError::DuplicateSection { section });
                }
                let mut r = Reader::new(section, payload);
                let bytes = r.byte_vec()?;
                r.finish()?;
                plan = Some(PlanPayload::Program(bytes));
            }
            Section::Optimizer => {
                if optimizer.is_some() {
                    return Err(DecodeError::DuplicateSection { section });
                }
                let mut r = Reader::new(section, payload);
                let lr = r.f32_bits()?;
                let n = r.count()?;
                let mut velocities = Vec::with_capacity(n.min(payload.len() / 4 + 1));
                for _ in 0..n {
                    velocities.push(r.f32_vec()?);
                }
                r.finish()?;
                optimizer = Some(OptimizerState { lr, velocities });
            }
            Section::Layers => {
                if layers.is_some() {
                    return Err(DecodeError::DuplicateSection { section });
                }
                let mut r = Reader::new(section, payload);
                let n = r.count()?;
                let mut entries = Vec::with_capacity(n.min(payload.len() + 1));
                for _ in 0..n {
                    entries.push(decode_layer_state(&mut r)?);
                }
                r.finish()?;
                layers = Some(entries);
            }
        }
    }

    if pos != bytes.len() {
        return Err(DecodeError::TrailingBytes {
            extra: bytes.len() - pos,
        });
    }

    Ok(Snapshot {
        position: position.ok_or(DecodeError::MissingSection {
            section: Section::Position,
        })?,
        shuffle_rng: shuffle_rng.ok_or(DecodeError::MissingSection {
            section: Section::ShuffleRng,
        })?,
        plan,
        optimizer: optimizer.ok_or(DecodeError::MissingSection {
            section: Section::Optimizer,
        })?,
        layers: layers.ok_or(DecodeError::MissingSection {
            section: Section::Layers,
        })?,
    })
}

fn decode_layer_state(r: &mut Reader<'_>) -> Result<LayerState, DecodeError> {
    let kind = r.u8()?;
    let layer = r.str("layer name")?;
    match kind {
        KIND_PARAMS => {
            let n = r.count()?;
            let mut tensors = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                tensors.push(r.f32_vec()?);
            }
            Ok(LayerState::Params { layer, tensors })
        }
        KIND_RNG => {
            let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            Ok(LayerState::Rng { layer, state })
        }
        KIND_DENSITY => {
            let sum = r.f64_bits()?;
            let count = r.u64()?;
            Ok(LayerState::Density { layer, sum, count })
        }
        KIND_PRUNER => {
            let target_sparsity = r.f64_bits()?;
            let fifo_depth = r.u64()?;
            let fifo = r.f64_vec()?;
            let batches = r.u64()?;
            let last_outcome = match r.u8()? {
                0 => None,
                1 => Some([r.u64()?, r.u64()?, r.u64()?]),
                _ => return Err(r.invalid("pruner outcome tag")),
            };
            let last_density = r.opt_f64("pruner last density")?;
            let density_sum = r.f64_bits()?;
            let density_count = r.u64()?;
            let last_predicted_tau = r.opt_f64("pruner predicted tau")?;
            let last_determined_tau = r.opt_f64("pruner determined tau")?;
            Ok(LayerState::Pruner {
                layer,
                state: Box::new(PrunerState {
                    target_sparsity,
                    fifo_depth,
                    fifo,
                    batches,
                    last_outcome,
                    last_density,
                    density_sum,
                    density_count,
                    last_predicted_tau,
                    last_determined_tau,
                }),
            })
        }
        _ => Err(r.invalid("layer state kind")),
    }
}

impl Snapshot {
    /// Serialize this snapshot; see [`encode_snapshot`].
    pub fn encode(&self) -> Result<Vec<u8>, EncodeError> {
        encode_snapshot(self)
    }

    /// Parse a snapshot; see [`decode_snapshot`].
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        decode_snapshot(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            position: RunPosition {
                seed: 3,
                epoch: 2,
                step: 57,
                steps_into_epoch: 7,
            },
            shuffle_rng: [0x1111, 0x2222, 0x3333, 0x4444],
            plan: Some(PlanPayload::Text(
                "# sparsetrain execution plan v1\ndefault scalar\n".to_string(),
            )),
            optimizer: OptimizerState {
                lr: 0.01,
                velocities: vec![vec![0.5, -0.25, f32::MIN_POSITIVE], vec![], vec![1.0e-30]],
            },
            layers: vec![
                LayerState::Params {
                    layer: "conv1".to_string(),
                    tensors: vec![vec![1.0, -2.0, 0.0, -0.0], vec![3.5]],
                },
                LayerState::Rng {
                    layer: "drop_fc1".to_string(),
                    state: [9, 8, 7, 6],
                },
                LayerState::Density {
                    layer: "conv1".to_string(),
                    sum: 1.75,
                    count: 4,
                },
                LayerState::Pruner {
                    layer: "prune_conv1".to_string(),
                    state: Box::new(PrunerState {
                        target_sparsity: 0.9,
                        fifo_depth: 5,
                        fifo: vec![0.125, 0.25],
                        batches: 11,
                        last_outcome: Some([10, 3, 87]),
                        last_density: Some(0.13),
                        density_sum: 1.43,
                        density_count: 11,
                        last_predicted_tau: Some(0.21),
                        last_determined_tau: None,
                    }),
                },
            ],
        }
    }

    #[test]
    fn roundtrips() {
        let snap = sample_snapshot();
        let bytes = snap.encode().unwrap();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn roundtrips_without_plan() {
        let mut snap = sample_snapshot();
        snap.plan = None;
        let bytes = snap.encode().unwrap();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn roundtrips_with_binary_plan_program() {
        let mut snap = sample_snapshot();
        snap.plan = Some(PlanPayload::Program(vec![0x53, 0x54, 0x00, 0xFF, 0x01]));
        let bytes = snap.encode().unwrap();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn plan_program_section_golden_bytes() {
        // The tag-6 payload layout is pinned: count u32 (LE) + raw bytes. A change here is a
        // wire-format break and must bump VERSION.
        let mut snap = sample_snapshot();
        snap.plan = Some(PlanPayload::Program(vec![1, 2, 3]));
        let bytes = snap.encode().unwrap();
        // Locate the tag-6 section by walking the container.
        let mut pos = 16usize;
        let mut found = None;
        while pos + 12 <= bytes.len() {
            let tag = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]);
            let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
            if tag == TAG_PLAN_PROGRAM {
                found = Some(&bytes[pos + 12..pos + 12 + len]);
                break;
            }
            pos += 12 + len;
        }
        assert_eq!(
            found.expect("tag-6 section present"),
            &[0x03, 0x00, 0x00, 0x00, 1, 2, 3]
        );
    }

    #[test]
    fn text_and_program_plan_sections_are_mutually_exclusive() {
        // Hand-build a container carrying both plan forms; the decoder must reject it as a
        // duplicate of the (single) plan slot.
        let text_snap = sample_snapshot();
        let text_bytes = text_snap.encode().unwrap();
        let mut program_snap = sample_snapshot();
        program_snap.plan = Some(PlanPayload::Program(vec![9, 9]));
        let program_bytes = program_snap.encode().unwrap();

        let section = |bytes: &[u8], want: u16| -> Vec<u8> {
            let mut pos = 16usize;
            loop {
                let tag = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]);
                let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
                if tag == want {
                    return bytes[pos..pos + 12 + len].to_vec();
                }
                pos += 12 + len;
            }
        };

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 2]);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&section(&text_bytes, TAG_PLAN));
        bytes.extend_from_slice(&section(&program_bytes, TAG_PLAN_PROGRAM));
        assert_eq!(
            Snapshot::decode(&bytes),
            Err(DecodeError::DuplicateSection {
                section: Section::PlanProgram
            })
        );
    }

    #[test]
    fn float_bits_survive_exactly() {
        let mut snap = sample_snapshot();
        snap.optimizer.velocities[0] = vec![f32::NAN, -0.0, f32::INFINITY];
        let bytes = snap.encode().unwrap();
        let back = Snapshot::decode(&bytes).unwrap();
        let got = match &back.optimizer.velocities[0][..] {
            [a, b, c] => [a.to_bits(), b.to_bits(), c.to_bits()],
            other => panic!("wrong arity: {other:?}"),
        };
        assert_eq!(
            got,
            [f32::NAN.to_bits(), (-0.0f32).to_bits(), f32::INFINITY.to_bits()],
            "IEEE bit patterns must be preserved exactly"
        );
    }

    #[test]
    fn flipped_magic_is_rejected() {
        let mut bytes = sample_snapshot().encode().unwrap();
        bytes[0] ^= 0xFF;
        assert_eq!(Snapshot::decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = sample_snapshot().encode().unwrap();
        bytes[8] = 0x7F;
        assert_eq!(
            Snapshot::decode(&bytes),
            Err(DecodeError::UnsupportedVersion(0x7F))
        );
    }

    #[test]
    fn short_header_is_rejected() {
        assert_eq!(Snapshot::decode(&[]), Err(DecodeError::TruncatedHeader));
        let bytes = sample_snapshot().encode().unwrap();
        assert_eq!(Snapshot::decode(&bytes[..10]), Err(DecodeError::TruncatedHeader));
    }

    #[test]
    fn truncated_section_names_the_section() {
        let bytes = sample_snapshot().encode().unwrap();
        // Cut into the first section's payload (position starts right after the 16-byte
        // header and its own 12-byte section header).
        let err = Snapshot::decode(&bytes[..16 + 12 + 3]).unwrap_err();
        assert_eq!(
            err,
            DecodeError::TruncatedSection {
                section: Section::Position
            }
        );
        assert!(
            err.to_string().contains("position"),
            "error should name the section: {err}"
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_snapshot().encode().unwrap();
        bytes.extend_from_slice(b"junk");
        assert_eq!(
            Snapshot::decode(&bytes),
            Err(DecodeError::TrailingBytes { extra: 4 })
        );
    }

    #[test]
    fn unknown_section_is_rejected() {
        let mut bytes = sample_snapshot().encode().unwrap();
        // First section tag lives at offset 16.
        bytes[16] = 0xEE;
        bytes[17] = 0xEE;
        assert_eq!(
            Snapshot::decode(&bytes),
            Err(DecodeError::UnknownSection { tag: 0xEEEE })
        );
    }

    #[test]
    fn missing_section_is_rejected() {
        // Hand-build a container with only the position section.
        let full = sample_snapshot().encode().unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 2]);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        // Copy the position section (12-byte header + 32-byte payload) from a real encode.
        bytes.extend_from_slice(&full[16..16 + 12 + 32]);
        assert_eq!(
            Snapshot::decode(&bytes),
            Err(DecodeError::MissingSection {
                section: Section::ShuffleRng
            })
        );
    }

    #[test]
    fn duplicate_section_is_rejected() {
        let full = sample_snapshot().encode().unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 2]);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        let position = &full[16..16 + 12 + 32];
        bytes.extend_from_slice(position);
        bytes.extend_from_slice(position);
        assert_eq!(
            Snapshot::decode(&bytes),
            Err(DecodeError::DuplicateSection {
                section: Section::Position
            })
        );
    }

    #[test]
    fn error_messages_are_nonempty() {
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(EncodeError::FieldOverflow {
                section: Section::Layers,
                field: "param tensors",
                value: usize::MAX,
            }),
            Box::new(DecodeError::TruncatedHeader),
            Box::new(DecodeError::BadMagic),
            Box::new(DecodeError::UnsupportedVersion(9)),
            Box::new(DecodeError::TruncatedSection {
                section: Section::Optimizer,
            }),
            Box::new(DecodeError::UnknownSection { tag: 99 }),
            Box::new(DecodeError::DuplicateSection {
                section: Section::Plan,
            }),
            Box::new(DecodeError::MissingSection {
                section: Section::Layers,
            }),
            Box::new(DecodeError::TrailingBytes { extra: 1 }),
            Box::new(DecodeError::InvalidField {
                section: Section::Layers,
                field: "layer name",
            }),
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }
}
