//! Property and corruption tests for the binary `.stck` snapshot format,
//! mirroring the `STPLAN` suite in `crates/sparse/tests/plan_program.rs`:
//! arbitrary snapshots round-trip losslessly through `encode` → `decode`,
//! encoding is canonical (encode∘decode is the identity on bytes), and
//! corrupted input — flipped magic, bad version, random truncation, random
//! byte mutation, trailing garbage — returns a typed [`DecodeError`],
//! never panics.

use proptest::prelude::*;
use sparsetrain_checkpoint::{
    DecodeError, LayerState, OptimizerState, PlanPayload, PrunerState, RunPosition, Snapshot,
};

/// Exact-in-f32 finite values (small dyadic rationals), so the derived
/// `PartialEq` round-trip comparison never meets NaN.
fn arb_f32() -> impl Strategy<Value = f32> {
    (-(1i32 << 20)..(1i32 << 20)).prop_map(|i| i as f32 / 64.0)
}

fn arb_f64() -> impl Strategy<Value = f64> {
    (-(1i64 << 40)..(1i64 << 40)).prop_map(|i| i as f64 / 4096.0)
}

fn arb_opt_f64() -> impl Strategy<Value = Option<f64>> {
    (any::<bool>(), arb_f64()).prop_map(|(some, v)| some.then_some(v))
}

/// Layer names: non-empty printable ASCII identifiers.
fn arb_layer() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..38, 1..10).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                0..=25 => (b'a' + c) as char,
                26..=35 => (b'0' + (c - 26)) as char,
                36 => '_',
                _ => '.',
            })
            .collect()
    })
}

fn arb_rng_state() -> impl Strategy<Value = [u64; 4]> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, c, d)| [a, b, c, d])
}

fn arb_pruner() -> impl Strategy<Value = PrunerState> {
    (
        (0.0f64..=1.0).prop_map(|s| (s * 256.0).round() / 256.0),
        1u64..64,
        prop::collection::vec(arb_f64(), 0..6),
        any::<u64>(),
        (any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(some, k, s, z)| some.then_some([k, s, z])),
        arb_opt_f64(),
        arb_f64(),
        any::<u64>(),
        arb_opt_f64(),
        arb_opt_f64(),
    )
        .prop_map(
            |(
                target_sparsity,
                fifo_depth,
                fifo,
                batches,
                last_outcome,
                last_density,
                density_sum,
                density_count,
                last_predicted_tau,
                last_determined_tau,
            )| PrunerState {
                target_sparsity,
                fifo_depth,
                fifo,
                batches,
                last_outcome,
                last_density,
                density_sum,
                density_count,
                last_predicted_tau,
                last_determined_tau,
            },
        )
}

fn arb_layer_state() -> impl Strategy<Value = LayerState> {
    prop_oneof![
        (
            arb_layer(),
            prop::collection::vec(prop::collection::vec(arb_f32(), 0..12), 0..4),
        )
            .prop_map(|(layer, tensors)| LayerState::Params { layer, tensors }),
        (arb_layer(), arb_rng_state()).prop_map(|(layer, state)| LayerState::Rng { layer, state }),
        (arb_layer(), arb_f64(), any::<u64>()).prop_map(|(layer, sum, count)| LayerState::Density {
            layer,
            sum,
            count
        }),
        (arb_layer(), arb_pruner()).prop_map(|(layer, state)| LayerState::Pruner {
            layer,
            state: Box::new(state)
        }),
    ]
}

fn arb_plan_payload() -> impl Strategy<Value = Option<PlanPayload>> {
    prop_oneof![
        Just(None),
        arb_layer().prop_map(|t| Some(PlanPayload::Text(format!("default scalar\n{t} forward simd\n")))),
        prop::collection::vec(any::<u8>(), 0..48).prop_map(|b| Some(PlanPayload::Program(b))),
    ]
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), 0u64..512).prop_map(
            |(seed, epoch, step, steps_into_epoch)| RunPosition {
                seed,
                epoch,
                step,
                steps_into_epoch,
            },
        ),
        arb_rng_state(),
        arb_plan_payload(),
        (
            arb_f32(),
            prop::collection::vec(prop::collection::vec(arb_f32(), 0..12), 0..4),
        )
            .prop_map(|(lr, velocities)| OptimizerState { lr, velocities }),
        prop::collection::vec(arb_layer_state(), 0..6),
    )
        .prop_map(|(position, shuffle_rng, plan, optimizer, layers)| Snapshot {
            position,
            shuffle_rng,
            plan,
            optimizer,
            layers,
        })
}

proptest! {
    #[test]
    fn arbitrary_snapshots_roundtrip_losslessly(snap in arb_snapshot()) {
        let bytes = snap.encode().expect("snapshots encode");
        let decoded = Snapshot::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, snap);
    }

    #[test]
    fn encoding_is_canonical(snap in arb_snapshot()) {
        let bytes = snap.encode().expect("snapshots encode");
        let decoded = Snapshot::decode(&bytes).expect("own encoding decodes");
        // encode ∘ decode is the identity on bytes: one canonical
        // serialization per snapshot.
        prop_assert_eq!(decoded.encode().expect("re-encodes"), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error(snap in arb_snapshot(), cut in 0.0f64..1.0) {
        let bytes = snap.encode().expect("snapshots encode");
        let len = (cut * bytes.len() as f64) as usize;
        prop_assume!(len < bytes.len());
        // Every strict prefix fails with a typed error — the header's
        // section count and the mandatory-section check make partial
        // documents unrepresentable. Never panics, never half-decodes.
        prop_assert!(Snapshot::decode(&bytes[..len]).is_err());
    }

    #[test]
    fn single_byte_mutations_never_panic(
        snap in arb_snapshot(),
        pos in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let mut bytes = snap.encode().expect("snapshots encode");
        let i = (pos * bytes.len() as f64) as usize % bytes.len();
        bytes[i] = bytes[i].wrapping_add(delta);
        // A flipped byte either still decodes (it hit a don't-care value
        // like a float payload bit) or returns a typed error; the decoder
        // must never panic or loop.
        let _ = Snapshot::decode(&bytes);
    }

    #[test]
    fn trailing_garbage_is_a_typed_error(snap in arb_snapshot(), tail in 1usize..16) {
        let mut bytes = snap.encode().expect("snapshots encode");
        bytes.extend(std::iter::repeat_n(0xAB, tail));
        let trailing = matches!(
            Snapshot::decode(&bytes),
            Err(DecodeError::TrailingBytes { extra }) if extra == tail
        );
        prop_assert!(trailing);
    }
}

#[test]
fn flipped_magic_is_a_typed_error() {
    let snap = Snapshot {
        position: RunPosition {
            seed: 1,
            epoch: 2,
            step: 3,
            steps_into_epoch: 0,
        },
        shuffle_rng: [1, 2, 3, 4],
        plan: None,
        optimizer: OptimizerState {
            lr: 0.1,
            velocities: vec![],
        },
        layers: vec![],
    };
    let mut bytes = snap.encode().unwrap();
    bytes[0] ^= 0xFF;
    assert!(matches!(Snapshot::decode(&bytes), Err(DecodeError::BadMagic)));

    let mut versioned = snap.encode().unwrap();
    versioned[8] = 0xFF; // version u16 LE sits right after the 8-byte magic
    assert!(matches!(
        Snapshot::decode(&versioned),
        Err(DecodeError::UnsupportedVersion(v)) if v != 1
    ));
}
