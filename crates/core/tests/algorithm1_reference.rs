//! Validates the streaming `LayerPruner` (single-pass, FIFO-predicted
//! thresholds) against a literal two-pass reference implementation of the
//! paper's Algorithm 1 semantics.

use rand::rngs::StdRng;
use rand::stream::StreamKey;
use rand::{Rng, SeedableRng};
use sparsetrain_core::prune::{
    determine_threshold, sigma_hat, BatchStream, LayerPruner, PruneConfig, ThresholdFifo,
};
use sparsetrain_tensor::init::sample_standard_normal;

/// Two-pass reference state: the FIFO of determined thresholds. Pruning is
/// spelled out literally (Algorithm 1 lines 7–16) inside [`run_both`], with
/// `Σ|g|` taken from the original batch exactly as the hardware does (the
/// PPU taps the stream before the pruning stage).
struct ReferencePruner {
    fifo: ThresholdFifo,
}

impl ReferencePruner {
    fn new(depth: usize) -> Self {
        Self {
            fifo: ThresholdFifo::new(depth),
        }
    }
}

/// Drives both implementations over the same batch stream and compares the
/// determined thresholds and output densities.
fn run_both(p: f64, depth: usize, batches: usize, n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut data_rng = StdRng::seed_from_u64(42);
    let stream: Vec<Vec<f32>> = (0..batches)
        .map(|i| {
            let sigma = 0.05 * (1.0 + i as f32 * 0.05);
            (0..n)
                .map(|_| sample_standard_normal(&mut data_rng) * sigma)
                .collect()
        })
        .collect();

    let mut streaming = LayerPruner::new(PruneConfig::new(p, depth));
    let mut reference = ReferencePruner::new(depth);
    let mut s_densities = Vec::new();
    let mut r_densities = Vec::new();
    // Separate randomness (counter-based streams vs a sequential RNG):
    // stochastic choices differ draw-by-draw, so we compare aggregates,
    // not bit patterns.
    let key_s = StreamKey::new(1);
    let mut rng_r = StdRng::seed_from_u64(2);
    for (step, batch) in stream.iter().enumerate() {
        let mut a = batch.clone();
        streaming.prune_batch(&mut a, &BatchStream::contiguous(key_s.derive(step as u64)));
        s_densities.push(density(&a));

        // Reference accumulates Σ|g| from the original batch, as the
        // hardware does (PPU taps the stream before the pruning stage).
        let mut b = batch.clone();
        let predicted = reference.fifo.predict();
        if let Some(tau) = predicted {
            if tau > 0.0 {
                for g in b.iter_mut() {
                    let aa = g.abs() as f64;
                    if *g != 0.0 && aa < tau {
                        let r: f64 = rng_r.gen();
                        *g = if aa > tau * r {
                            if *g > 0.0 {
                                tau as f32
                            } else {
                                -(tau as f32)
                            }
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
        let abs_sum: f64 = batch.iter().map(|&g| (g as f64).abs()).sum();
        let tau = determine_threshold(sigma_hat(abs_sum, batch.len()), p);
        reference.fifo.push(tau);
        r_densities.push(density(&b));
    }
    (s_densities, r_densities)
}

fn density(g: &[f32]) -> f64 {
    g.iter().filter(|&&v| v != 0.0).count() as f64 / g.len().max(1) as f64
}

#[test]
fn streaming_matches_reference_densities() {
    let (s, r) = run_both(0.9, 4, 16, 20_000);
    for (i, (a, b)) in s.iter().zip(&r).enumerate() {
        assert!(
            (a - b).abs() < 0.02,
            "batch {i}: streaming density {a} vs reference {b}"
        );
    }
}

#[test]
fn warmup_length_matches_fifo_depth() {
    for depth in [1usize, 3, 6] {
        let (s, _) = run_both(0.9, depth, depth + 3, 5_000);
        // Before warm-up, nothing is pruned: density 1.0 (normal data has
        // no exact zeros).
        for d in s.iter().take(depth) {
            assert!((*d - 1.0).abs() < 1e-12, "pruned during warm-up (depth {depth})");
        }
        // After warm-up, pruning bites.
        assert!(s[depth] < 0.7, "no pruning after warm-up (depth {depth})");
    }
}

#[test]
fn thresholds_agree_between_implementations() {
    let mut streaming = LayerPruner::new(PruneConfig::new(0.8, 3));
    let mut fifo = ThresholdFifo::new(3);
    let key = StreamKey::new(8);
    let mut data_rng = StdRng::seed_from_u64(9);
    for step in 0..10u64 {
        let batch: Vec<f32> = (0..10_000)
            .map(|_| sample_standard_normal(&mut data_rng) * 0.07)
            .collect();
        let mut a = batch.clone();
        streaming.prune_batch(&mut a, &BatchStream::contiguous(key.derive(step)));
        let abs_sum: f64 = batch.iter().map(|&g| (g as f64).abs()).sum();
        fifo.push(determine_threshold(sigma_hat(abs_sum, batch.len()), 0.8));
    }
    let s_tau = streaming.stats().last_determined_tau.unwrap();
    // The reference's last determined threshold is the last pushed value;
    // reconstruct by re-determining from the same final batch statistics.
    assert!(s_tau > 0.0);
    let predicted_s = streaming.predicted_threshold().unwrap();
    let predicted_r = fifo.predict().unwrap();
    assert!(
        (predicted_s - predicted_r).abs() < 1e-12,
        "FIFO predictions diverged: {predicted_s} vs {predicted_r}"
    );
}
