//! Property tests of the trace text format: arbitrary traces round-trip
//! losslessly and the parser rejects corrupted input without panicking.

use proptest::prelude::*;
use sparsetrain_core::dataflow::{trace_io, ConvLayerTrace, FcLayerTrace, LayerTrace, NetworkTrace};
use sparsetrain_sparse::rowconv::SparseFeatureMap;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::Tensor3;

fn arb_feature_map(c: usize, h: usize, w: usize) -> impl Strategy<Value = SparseFeatureMap> {
    proptest::collection::vec(
        prop_oneof![
            55u32 => Just(0.0f32),
            45u32 => (-2.0f32..2.0).prop_filter("non-zero", |v| *v != 0.0),
        ],
        c * h * w,
    )
    .prop_map(move |data| SparseFeatureMap::from_tensor(&Tensor3::from_vec(c, h, w, data)))
}

fn arb_conv_layer() -> impl Strategy<Value = ConvLayerTrace> {
    (arb_feature_map(2, 5, 6), any::<bool>()).prop_map(|(input, needs_input_grad)| {
        let geom = ConvGeometry::new(3, 1, 1);
        let dout_dense = Tensor3::from_fn(
            3,
            5,
            6,
            |c, y, x| {
                if (c + 2 * y + x) % 3 == 0 {
                    0.75
                } else {
                    0.0
                }
            },
        );
        let input_masks = if needs_input_grad {
            input.masks()
        } else {
            Vec::new()
        };
        ConvLayerTrace {
            name: "pconv".into(),
            geom,
            filters: 3,
            input,
            input_masks,
            dout: SparseFeatureMap::from_tensor(&dout_dense),
            needs_input_grad,
        }
    })
}

fn arb_fc_layer() -> impl Strategy<Value = FcLayerTrace> {
    (1usize..64, 1usize..16, any::<bool>()).prop_map(|(inf, outf, nig)| FcLayerTrace {
        name: "pfc".into(),
        in_features: inf,
        out_features: outf,
        input_nnz: inf / 2,
        dout_nnz: outf,
        mask_nnz: inf / 2,
        needs_input_grad: nig,
    })
}

fn arb_trace() -> impl Strategy<Value = NetworkTrace> {
    proptest::collection::vec(
        prop_oneof![
            arb_conv_layer().prop_map(LayerTrace::Conv),
            arb_fc_layer().prop_map(LayerTrace::Fc),
        ],
        0..4,
    )
    .prop_map(|layers| {
        let mut t = NetworkTrace::new("prop-model", "prop-data");
        t.layers = layers;
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_is_lossless(trace in arb_trace()) {
        let text = trace_io::to_text(&trace);
        let parsed = trace_io::from_text(&text).expect("parse back");
        prop_assert_eq!(parsed.layers.len(), trace.layers.len());
        prop_assert_eq!(parsed.dense_macs(), trace.dense_macs());
        prop_assert!(parsed.validate().is_ok());
        // Second serialization is byte-identical (canonical form).
        prop_assert_eq!(trace_io::to_text(&parsed), text);
    }

    #[test]
    fn parser_never_panics_on_corruption(trace in arb_trace(), cut in 0usize..400, flip in 0usize..400) {
        let mut text = trace_io::to_text(&trace);
        // Truncate somewhere.
        let cut = cut.min(text.len());
        text.truncate(cut);
        let _ = trace_io::from_text(&text); // must return Err or Ok, not panic
        // Corrupt a byte (keep UTF-8 validity by using an ASCII substitute).
        let mut bytes = text.into_bytes();
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] = b'?';
        }
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = trace_io::from_text(&s);
        }
    }
}
