//! The stream-slicing invariant the shard coordinator relies on.
//!
//! A sharded trainer hands each worker a contiguous slice of the global
//! batch plus the slice's starting position, and the worker rebuilds its
//! pruning streams with [`BatchStream::with_base`] /
//! [`StepStreams::with_sample_base`]. For the aggregate step to be
//! bitwise-identical to the 1-worker run, every sliced draw must equal
//! the whole-batch draw at the same global coordinates — for **any**
//! partition into N workers, any batch size, and any ragged tail. These
//! properties pin that invariant at the stream layer, independently of
//! the sharder built on top of it.

use proptest::prelude::*;
use rand::stream::StreamKey;
use sparsetrain_core::prune::{
    shard_prune_parts_on, BatchStream, LayerPruner, PruneConfig, SiteStats, StepStreams,
};
use sparsetrain_sparse::ScalarEngine;

/// Deterministically generated gradient batch spanning the keep/snap/zero
/// regimes (proptest shrinks the *shape*, the values are seed-derived).
fn batch_values(seed: u64, samples: usize, len: usize) -> Vec<Vec<f32>> {
    let key = StreamKey::new(seed).derive(0x51_1C_E5);
    (0..samples)
        .map(|s| {
            (0..len)
                .map(|i| {
                    let w = key.derive(s as u64).word_at(i as u64);
                    match w % 10 {
                        0 | 1 => 0.0,
                        2..=7 => ((w >> 8) % 2000) as f32 * 2e-5 - 0.02,
                        _ => ((w >> 8) % 2000) as f32 * 1e-3 - 1.0,
                    }
                })
                .collect()
        })
        .collect()
}

/// Splits `0..total` into `workers` contiguous ranges the way a
/// coordinator would: near-even, in rank order, optionally dropping a
/// ragged tail of `drop_tail` samples entirely (simulating a short final
/// batch that leaves trailing workers idle).
fn contiguous_ranges(total: usize, workers: usize, drop_tail: usize) -> Vec<(usize, usize)> {
    let covered = total.saturating_sub(drop_tail);
    let per = covered / workers;
    let extra = covered % workers;
    let mut out = Vec::new();
    let mut start = 0usize;
    for rank in 0..workers {
        let n = per + usize::from(rank < extra);
        out.push((start, start + n));
        start += n;
    }
    out
}

proptest! {
    /// Per-sample layout: pruning a slice `[start, end)` of the batch on a
    /// `with_sample_base(start)` stream produces exactly the whole-batch
    /// prune of those samples — for every worker of every partition.
    #[test]
    fn per_sample_slices_reproduce_the_whole_batch_prune(
        seed in 0u64..1000,
        samples in 1usize..=12,
        len in 1usize..=300,
        workers in 1usize..=5,
        drop_tail in 0usize..=2,
        tau in 1e-3f64..0.1,
    ) {
        let batch = batch_values(seed, samples, len);
        let step = StepStreams::new(seed, 1, 2);
        let site = step.site("conv1");

        let mut want = batch.clone();
        {
            let mut parts: Vec<&mut [f32]> = want.iter_mut().map(|v| v.as_mut_slice()).collect();
            shard_prune_parts_on(Some(tau), &mut parts, &site, &ScalarEngine);
        }

        for (start, end) in contiguous_ranges(samples, workers, drop_tail.min(samples - 1)) {
            let mut slice: Vec<Vec<f32>> = batch[start..end].to_vec();
            let sliced_site = step.with_sample_base(start as u64).site("conv1");
            let mut parts: Vec<&mut [f32]> =
                slice.iter_mut().map(|v| v.as_mut_slice()).collect();
            shard_prune_parts_on(Some(tau), &mut parts, &sliced_site, &ScalarEngine);
            prop_assert_eq!(
                &slice[..],
                &want[start..end],
                "worker slice [{}..{}) diverged from the whole-batch prune",
                start,
                end
            );
        }
    }

    /// Contiguous layout: splitting one logical vector at arbitrary
    /// worker boundaries and re-basing each piece by its element offset
    /// reproduces the unsliced draws bitwise.
    #[test]
    fn contiguous_slices_reproduce_the_whole_vector_prune(
        seed in 0u64..1000,
        len in 1usize..=2000,
        workers in 1usize..=5,
        tau in 1e-3f64..0.1,
    ) {
        let flat: Vec<f32> = batch_values(seed, 1, len).remove(0);
        let stream = BatchStream::contiguous(StreamKey::new(seed).derive(7));

        let mut want = flat.clone();
        shard_prune_parts_on(Some(tau), &mut [want.as_mut_slice()], &stream, &ScalarEngine);

        for (start, end) in contiguous_ranges(len, workers, 0) {
            let mut piece = flat[start..end].to_vec();
            let based = stream.with_base(start as u64);
            shard_prune_parts_on(Some(tau), &mut [piece.as_mut_slice()], &based, &ScalarEngine);
            prop_assert_eq!(
                &piece[..],
                &want[start..end],
                "element slice [{}..{}) diverged",
                start,
                end
            );
        }
    }

    /// The full coordinator round-trip over arbitrary partitions: workers
    /// prune their slices statelessly under the coordinator's prediction,
    /// the coordinator reduces the returned [`SiteStats`] in rank order
    /// and absorbs them — and the resulting pruner state (FIFO and all)
    /// is bitwise the 1-worker pruner's, for N∈{1..5} over several steps.
    #[test]
    fn rank_ordered_reduction_is_worker_count_invariant(
        seed in 0u64..500,
        samples in 2usize..=10,
        len in 16usize..=200,
        workers in 2usize..=5,
    ) {
        let mut single = LayerPruner::new(PruneConfig::new(0.9, 2));
        let mut sharded = LayerPruner::new(PruneConfig::new(0.9, 2));
        let mut seeds_single = sparsetrain_core::prune::StreamSeeds::new(seed);
        let mut seeds_sharded = sparsetrain_core::prune::StreamSeeds::new(seed);

        for step in 0..4u64 {
            let batch = batch_values(seed ^ step, samples, len);

            // 1-worker reference: granule = 1 sample, reduced in order.
            let tau = single.predicted_threshold();
            let mut want = batch.clone();
            let mut reduced = SiteStats::default();
            for (s, sample) in want.iter_mut().enumerate() {
                let site = seeds_single.streams().with_sample_base(s as u64).site("fc");
                reduced.accumulate(&shard_prune_parts_on(
                    tau,
                    &mut [sample.as_mut_slice()],
                    &site,
                    &ScalarEngine,
                ));
            }
            single.absorb_batch(&reduced);
            seeds_single.advance_step();

            // N workers: each prunes its contiguous sample range; the
            // coordinator reduces per-granule stats in global order.
            let tau = sharded.predicted_threshold();
            let mut got = batch.clone();
            let mut stats: Vec<(usize, SiteStats)> = Vec::new();
            for (start, end) in contiguous_ranges(samples, workers, 0) {
                for s in start..end {
                    let site = seeds_sharded.streams().with_sample_base(s as u64).site("fc");
                    let st = shard_prune_parts_on(
                        tau,
                        &mut [got[s].as_mut_slice()],
                        &site,
                        &ScalarEngine,
                    );
                    stats.push((s, st));
                }
            }
            stats.sort_by_key(|&(s, _)| s);
            let mut reduced = SiteStats::default();
            for (_, st) in &stats {
                reduced.accumulate(st);
            }
            sharded.absorb_batch(&reduced);
            seeds_sharded.advance_step();

            prop_assert_eq!(got, want, "step {}: sharded prune diverged", step);
        }
        prop_assert_eq!(sharded.snapshot_state(), single.snapshot_state());
    }
}
