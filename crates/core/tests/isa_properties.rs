//! Property tests for the instruction-set serialization paths.
//!
//! For any in-range instruction sequence, the binary encoding and the
//! textual assembly must both be lossless inverses, and every corrupted
//! header must be rejected rather than mis-decoded.

use proptest::prelude::*;
use sparsetrain_core::dataflow::asm::{assemble, disassemble};
use sparsetrain_core::dataflow::encoding::{
    decode_program, encode_program, MAX_FIELD24, MAX_KERNEL, MAX_LAYER, MAX_STRIDE,
};
use sparsetrain_core::dataflow::{Instr, Program, StepKind};

fn arb_step() -> impl Strategy<Value = StepKind> {
    prop_oneof![Just(StepKind::Forward), Just(StepKind::Gta), Just(StepKind::Gtw)]
}

prop_compose! {
    fn arb_instr()(
        step in arb_step(),
        layer in 0..=MAX_LAYER,
        task in 0..=MAX_FIELD24,
        kernel in 1..=MAX_KERNEL,
        stride in 1..=MAX_STRIDE,
        p1 in 0..=MAX_FIELD24,
        p2 in 0..=MAX_FIELD24,
        mask in 0..=MAX_FIELD24,
    ) -> Instr {
        Instr {
            layer,
            step,
            task,
            kernel,
            stride,
            port1_nnz: p1,
            port2_nnz: p2,
            mask_nnz: mask,
        }
    }
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_instr(), 0..64).prop_map(|instrs| Program { instrs })
}

proptest! {
    #[test]
    fn binary_roundtrip_is_lossless(program in arb_program()) {
        let bytes = encode_program(&program).expect("in-range instrs encode");
        let back = decode_program(&bytes).expect("encoded bytes decode");
        prop_assert_eq!(back.instrs, program.instrs);
    }

    #[test]
    fn assembly_roundtrip_is_lossless(program in arb_program()) {
        let text = disassemble(&program);
        let back = assemble(&text).expect("disassembly re-assembles");
        prop_assert_eq!(back.instrs, program.instrs);
    }

    #[test]
    fn encoded_size_is_exact(program in arb_program()) {
        let bytes = encode_program(&program).unwrap();
        prop_assert_eq!(bytes.len(), 16 + 16 * program.len());
    }

    #[test]
    fn single_byte_header_corruption_is_detected(
        program in arb_program(),
        byte in 0usize..8,
        flip in 1u8..=255,
    ) {
        // Magic corruption must always be caught (bytes 0..8 are magic).
        let mut bytes = encode_program(&program).unwrap();
        bytes[byte] ^= flip;
        prop_assert!(decode_program(&bytes).is_err());
    }

    #[test]
    fn truncation_is_detected(program in arb_program(), cut in 1usize..16) {
        prop_assume!(!program.is_empty());
        let mut bytes = encode_program(&program).unwrap();
        let len = bytes.len();
        bytes.truncate(len - cut);
        prop_assert!(decode_program(&bytes).is_err());
    }

    #[test]
    fn assembled_programs_preserve_step_counts(program in arb_program()) {
        let text = disassemble(&program);
        let back = assemble(&text).unwrap();
        prop_assert_eq!(back.instrs_per_step(), program.instrs_per_step());
        prop_assert_eq!(back.total_stream_values(), program.total_stream_values());
    }
}
