//! Determinism properties of stream-keyed stochastic pruning.
//!
//! These tests pin the contract that makes batch-parallel pruning safe:
//! Algorithm 1's stochastic keep/snap decisions are a pure function of
//! each element's `(stream key, position)` coordinates, so the pruned
//! gradients are bitwise-identical
//!
//! * across thread counts (1 vs 4 worker bands, and auto),
//! * across sequential vs engine-banded execution on every registered
//!   engine (`scalar`, `parallel`, `fixed`, …),
//! * across the split points of a contiguous batch
//!   (`prune_batch_parts` over any partition == the whole-slice prune),
//!
//! while the stochastic rule itself still matches the paper's expected
//! keep/snap rates (`E[ĝ] = g`, `P[snap] = |g|/τ`).

use proptest::prelude::*;
use rand::stream::StreamKey;
use sparsetrain_core::prune::{prune_slice_at, BatchStream, LayerPruner, PruneConfig, PruneOutcome};
use sparsetrain_sparse::{registry, ParallelEngine};

/// Sparse-ish gradient values spanning the keep/snap/zero regimes for the
/// thresholds the tests use.
fn arb_grads(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        prop_oneof![
            2u32 => Just(0.0f32),
            5u32 => (-0.02f32..0.02).prop_filter("non-zero", |v| *v != 0.0),
            3u32 => (-1.0f32..1.0).prop_filter("large", |v| v.abs() >= 0.05),
        ],
        1..=max_len,
    )
}

/// A batch of same-shape per-sample gradient tensors.
fn arb_batch() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (1usize..=6, 1usize..=400, 0u64..1000).prop_map(|(samples, len, seed)| {
        let key = StreamKey::new(seed).derive(0xDA7A);
        (0..samples)
            .map(|s| {
                (0..len)
                    .map(|i| {
                        let w = key.derive(s as u64).word_at(i as u64);
                        match w % 10 {
                            0 | 1 => 0.0,
                            2..=7 => ((w >> 8) % 2000) as f32 * 2e-5 - 0.02,
                            _ => ((w >> 8) % 2000) as f32 * 1e-3 - 1.0,
                        }
                    })
                    .collect()
            })
            .collect()
    })
}

/// Warms a fresh pruner on `warm` (so the next batch is actually pruned)
/// and returns it.
fn warmed(p: f64, warm: &[f32]) -> LayerPruner {
    let mut pruner = LayerPruner::new(PruneConfig::new(p, 1));
    let mut batch = warm.to_vec();
    pruner.prune_batch(&mut batch, &BatchStream::contiguous(StreamKey::new(99).derive(0)));
    pruner
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `prune_batch_parts` over ANY partition of a contiguous gradient
    /// vector is bitwise-identical to the whole-slice prune — outcome
    /// counts included.
    #[test]
    fn partition_invariance(
        grads in arb_grads(600),
        warm in arb_grads(600),
        cut_a in 0usize..600,
        cut_b in 0usize..600,
    ) {
        let stream = BatchStream::contiguous(StreamKey::new(7).derive(1));
        let mut whole = grads.clone();
        let want = warmed(0.9, &warm).prune_batch(&mut whole, &stream);

        let n = grads.len();
        let (a, b) = (cut_a.min(n), cut_b.min(n));
        let (lo, hi) = (a.min(b), a.max(b));
        let mut split = grads.clone();
        let (head, rest) = split.split_at_mut(lo);
        let (mid, tail) = rest.split_at_mut(hi - lo);
        let mut parts: Vec<&mut [f32]> = vec![head, mid, tail];
        let got = warmed(0.9, &warm).prune_batch_parts(&mut parts, &stream);

        prop_assert_eq!(&split, &whole, "partition ({}, {}) diverged", lo, hi);
        prop_assert_eq!(got, want);
    }

    /// Banding across 1 vs 4 worker threads (and auto sizing) is
    /// bitwise-identical to the sequential prune.
    #[test]
    fn thread_count_invariance(batch in arb_batch(), warm in arb_grads(400)) {
        let stream = BatchStream::per_sample(StreamKey::new(3).derive(1));
        let mut want_data = batch.clone();
        let want_out = {
            let mut parts: Vec<&mut [f32]> = want_data.iter_mut().map(|v| v.as_mut_slice()).collect();
            warmed(0.9, &warm).prune_batch_parts(&mut parts, &stream)
        };
        for threads in [1usize, 4, 0] {
            let engine = if threads == 0 {
                ParallelEngine::auto()
            } else {
                ParallelEngine::with_threads(threads)
            };
            let mut data = batch.clone();
            let mut parts: Vec<&mut [f32]> = data.iter_mut().map(|v| v.as_mut_slice()).collect();
            let out = warmed(0.9, &warm).prune_batch_parts_on(&mut parts, &stream, &engine);
            prop_assert_eq!(&data, &want_data, "threads {} diverged", threads);
            prop_assert_eq!(out, want_out, "threads {} outcome diverged", threads);
        }
    }

    /// Every registered engine's banded prune path equals the sequential
    /// golden, bitwise — including backends whose *convolution* datapath
    /// differs (the fixed-point engine), because pruning is position-keyed
    /// element work, not arithmetic the engine may re-model.
    #[test]
    fn engine_invariance(batch in arb_batch(), warm in arb_grads(400)) {
        let stream = BatchStream::per_sample(StreamKey::new(5).derive(2));
        let mut want = batch.clone();
        {
            let mut parts: Vec<&mut [f32]> = want.iter_mut().map(|v| v.as_mut_slice()).collect();
            warmed(0.9, &warm).prune_batch_parts(&mut parts, &stream);
        }
        for handle in registry::registry() {
            let mut data = batch.clone();
            let mut parts: Vec<&mut [f32]> = data.iter_mut().map(|v| v.as_mut_slice()).collect();
            warmed(0.9, &warm).prune_batch_parts_on(&mut parts, &stream, handle.engine());
            prop_assert_eq!(&data, &want, "engine {} diverged", handle.name());
        }
    }

    /// Per-sample streams: dropping trailing samples never changes the
    /// surviving samples' pruning (threshold held fixed by identical
    /// warm-up).
    #[test]
    fn sample_drop_independence(batch in arb_batch(), warm in arb_grads(400)) {
        prop_assume!(batch.len() >= 2);
        let stream = BatchStream::per_sample(StreamKey::new(11).derive(4));
        let mut full = batch.clone();
        {
            let mut parts: Vec<&mut [f32]> = full.iter_mut().map(|v| v.as_mut_slice()).collect();
            warmed(0.9, &warm).prune_batch_parts(&mut parts, &stream);
        }
        let keep = batch.len() - 1;
        let mut dropped = batch[..keep].to_vec();
        {
            let mut parts: Vec<&mut [f32]> = dropped.iter_mut().map(|v| v.as_mut_slice()).collect();
            warmed(0.9, &warm).prune_batch_parts(&mut parts, &stream);
        }
        prop_assert_eq!(&full[..keep], &dropped[..]);
    }

    /// The rule's outputs stay in the ternary set {0, ±τ, untouched} under
    /// the stream-keyed draws.
    #[test]
    fn outputs_stay_ternary(grads in arb_grads(300), seed in 0u64..500) {
        let tau = 0.01f64;
        let mut g = grads.clone();
        prune_slice_at(&mut g, tau, StreamKey::new(seed), 0);
        for (before, after) in grads.iter().zip(&g) {
            if (before.abs() as f64) >= tau {
                prop_assert_eq!(before, after);
            } else {
                prop_assert!(
                    *after == 0.0 || ((after.abs() as f64) - tau).abs() < 1e-6,
                    "small value {} became {}", before, after
                );
            }
        }
    }
}

/// The paper's expected keep/snap rates survive the stream-keyed rewrite:
/// a value `|g| < τ` snaps with probability `|g|/τ` (so `E[kept]` per
/// element is `|g|/τ` of the sub-threshold population), and the pruned
/// estimator stays unbiased.
#[test]
fn keep_snap_rates_match_expectation() {
    let tau = 0.01f64;
    let n = 120_000;
    for &g0 in &[0.002f32, 0.0055, 0.009] {
        let key = StreamKey::new(0xEE).derive(g0.to_bits() as u64);
        let mut g = vec![g0; n];
        let out = prune_slice_at(&mut g, tau, key, 0);
        let snap_frac = out.snapped as f64 / n as f64;
        let want = g0 as f64 / tau;
        assert!(
            (snap_frac - want).abs() < 0.01,
            "P[snap | g={g0}] = {snap_frac}, want {want}"
        );
        // Unbiasedness: E[pruned] = g0 (snapped values are ±τ).
        let mean = g.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        assert!((mean - g0 as f64).abs() < 3e-4, "E[pruned({g0})] = {mean}");
    }
}

/// End-to-end repeatability: the same stream coordinates and data give the
/// same pruner trajectory — across fresh pruner instances, not just calls.
#[test]
fn trajectory_is_reproducible() {
    let run = || -> (Vec<Vec<f32>>, Vec<PruneOutcome>) {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 2));
        let key = StreamKey::new(21);
        let mut outs = Vec::new();
        let mut all = Vec::new();
        for step in 0..6u64 {
            let mut g: Vec<f32> = (0..2000)
                .map(|i| {
                    let w = key.derive(0x0DD).derive(step).word_at(i as u64);
                    (w % 4000) as f32 * 1e-5 - 0.02
                })
                .collect();
            outs.push(pruner.prune_batch(&mut g, &BatchStream::contiguous(key.derive(step))));
            all.push(g);
        }
        (all, outs)
    };
    let (a_data, a_outs) = run();
    let (b_data, b_outs) = run();
    assert_eq!(a_data, b_data);
    assert_eq!(a_outs, b_outs);
}
