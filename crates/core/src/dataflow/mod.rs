//! The sparse training dataflow (§IV) and its "simple compiler".
//!
//! The paper drives its architecture simulator from PyTorch models through a
//! small compiler that lowers each CONV layer's three training stages into
//! streams of 1-D row-convolution instructions. Here the equivalent
//! pipeline is:
//!
//! 1. The training framework (`sparsetrain-nn`) captures a [`trace::NetworkTrace`]
//!    — per-layer sparsity patterns of the input activations `I`, the
//!    (pruned) output gradients `dO`, and the forward non-zero masks.
//! 2. [`ops`] enumerates the SRC / MSRC / OSRC row operations of each stage
//!    from the trace, grouped into *tasks* (all operations accumulating
//!    into one output row run back-to-back on one PE, so partial sums never
//!    leave the PE register file).
//! 3. The simulator (`sparsetrain-sim`) schedules tasks onto PE groups and
//!    costs them with either the cycle-exact PE model or the analytic work
//!    model.

pub mod analysis;
pub mod asm;
pub mod compiler;
pub mod encoding;
pub mod execute;
pub mod ops;
pub mod plan_program;
pub mod synth;
pub mod trace;
pub mod trace_io;

pub use compiler::{compile, Instr, Program};
pub use execute::{execute_conv, ExecutedConv};
pub use ops::{
    for_each_forward_op, for_each_gta_op, for_each_gtw_op, MsrcOp, OsrcOp, SrcOp, StepKind, TaskId,
};
pub use plan_program::{compile_plan, stage_of};
pub use trace::{ConvLayerTrace, FcLayerTrace, LayerTrace, NetworkTrace};
