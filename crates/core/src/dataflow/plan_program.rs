//! Lowering a planner [`Plan`] into a binary [`ExecutionProgram`].
//!
//! The container format, codec, and VM live with the planner in
//! `sparsetrain_sparse::plan_program` (the dependency points core →
//! sparse); this module is the **compiler back half**: it walks a compiled
//! instruction [`Program`] alongside its [`NetworkTrace`] and folds the
//! per-instruction operand populations into the program's workspace hints
//! and each conv layer's pruned-gradient population into its prune points.
//! The result is the self-contained artifact the `sparsetrain-bench plan
//! --emit`/`--replay` flow and `SPARSETRAIN_PLAN` ship across processes.

use super::compiler::Program;
use super::ops::StepKind;
use super::trace::{LayerTrace, NetworkTrace};
use sparsetrain_sparse::plan_program::ExecutionProgram;
use sparsetrain_sparse::planner::{Plan, Stage};

/// The planner stage a compiled instruction step executes in.
pub fn stage_of(step: StepKind) -> Stage {
    match step {
        StepKind::Forward => Stage::Forward,
        StepKind::Gta => Stage::InputGrad,
        StepKind::Gtw => Stage::WeightGrad,
    }
}

/// Lowers `plan` into a binary [`ExecutionProgram`], enriched with the
/// workspace hints and prune points of the compiled instruction `program`
/// (whose `layer` indices resolve through `trace.layers`).
///
/// The lowering is **lossless** on the plan: the program's cell table and
/// default engine round-trip back to an identical [`Plan`] through
/// [`Plan::from_program`]. The metadata is advisory — workspace hints
/// record the largest single-instruction operand population per
/// `(layer, stage)` cell (what one row op streams through scratch), prune
/// points the total pruned output-gradient population per conv layer (the
/// density regime the plan's decisions were made for).
pub fn compile_plan(plan: &Plan, trace: &NetworkTrace, program: &Program) -> ExecutionProgram {
    let mut out = plan.to_program();
    for instr in &program.instrs {
        let Some(layer) = trace.layers.get(instr.layer as usize) else {
            continue;
        };
        let elements = u64::from(instr.port1_nnz) + u64::from(instr.port2_nnz) + u64::from(instr.mask_nnz);
        out.note_workspace(layer.name(), stage_of(instr.step), elements);
    }
    for layer in &trace.layers {
        if let LayerTrace::Conv(conv) = layer {
            out.note_prune_point(&conv.name, conv.dout.nnz() as u64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::compiler::compile;
    use crate::dataflow::trace::ConvLayerTrace;
    use sparsetrain_sparse::registry::lookup;
    use sparsetrain_sparse::rowconv::SparseFeatureMap;
    use sparsetrain_tensor::conv::ConvGeometry;
    use sparsetrain_tensor::Tensor3;

    fn conv_trace(name: &str) -> ConvLayerTrace {
        let geom = ConvGeometry::new(3, 1, 1);
        let input = SparseFeatureMap::from_tensor(&Tensor3::from_fn(2, 6, 6, |c, y, x| {
            if (c + 2 * y + x) % 3 == 0 {
                0.5
            } else {
                0.0
            }
        }));
        let dout = SparseFeatureMap::from_tensor(&Tensor3::from_fn(3, 6, 6, |c, y, x| {
            if (c + y + x) % 4 == 0 {
                0.25
            } else {
                0.0
            }
        }));
        let input_masks = input.masks();
        ConvLayerTrace {
            name: name.to_string(),
            geom,
            filters: 3,
            input,
            input_masks,
            dout,
            needs_input_grad: true,
        }
    }

    #[test]
    fn compile_plan_is_lossless_and_carries_trace_metadata() {
        let mut trace = NetworkTrace::default();
        trace.layers.push(LayerTrace::Conv(conv_trace("conv1")));
        trace.layers.push(LayerTrace::Conv(conv_trace("conv2")));
        let program = compile(&trace);
        assert!(!program.instrs.is_empty());

        let mut plan = Plan::new(lookup("scalar").unwrap());
        plan.set("conv1", Stage::Forward, lookup("im2row").unwrap());
        plan.set("conv2", Stage::WeightGrad, lookup("simd").unwrap());

        let compiled = compile_plan(&plan, &trace, &program);
        // Lossless on the plan itself.
        assert_eq!(Plan::from_program(&compiled).unwrap(), plan);
        let bytes = compiled.encode().unwrap();
        assert_eq!(ExecutionProgram::decode(&bytes).unwrap(), compiled);

        // Every (conv layer, stage) the instruction stream touches has a
        // workspace hint; every conv layer has its prune point.
        for name in ["conv1", "conv2"] {
            for stage in Stage::ALL {
                assert!(
                    compiled.workspace_hint(name, stage).is_some(),
                    "missing hint for ({name}, {stage})"
                );
            }
            let conv = conv_trace(name);
            assert_eq!(compiled.prune_point(name), Some(conv.dout.nnz() as u64));
        }

        // The hint is the max per-instruction operand population.
        let expect: u64 = program
            .instrs
            .iter()
            .filter(|i| i.layer == 0 && i.step == StepKind::Forward)
            .map(|i| u64::from(i.port1_nnz) + u64::from(i.port2_nnz) + u64::from(i.mask_nnz))
            .max()
            .unwrap();
        assert_eq!(compiled.workspace_hint("conv1", Stage::Forward), Some(expect));
    }

    #[test]
    fn stage_mapping_covers_every_step() {
        assert_eq!(stage_of(StepKind::Forward), Stage::Forward);
        assert_eq!(stage_of(StepKind::Gta), Stage::InputGrad);
        assert_eq!(stage_of(StepKind::Gtw), Stage::WeightGrad);
    }
}
