//! Plain-text serialization of network traces.
//!
//! Traces captured from a training run can be saved and re-simulated later
//! (or shared) without re-running training. The format is a line-oriented
//! text format — human-inspectable, dependency-free, and stable:
//!
//! ```text
//! sparsetrain-trace v1
//! model <name>
//! dataset <name>
//! conv <name> <k> <stride> <pad> <filters> <C> <H> <W> <needs_input_grad>
//! row <nnz> <off:val> <off:val> ...     # C*H input rows
//! dout <F> <Ho> <Wo>
//! row <nnz> ...                          # F*Ho gradient rows
//! fc <name> <in> <out> <in_nnz> <dout_nnz> <mask_nnz> <needs_input_grad>
//! end
//! ```
//!
//! Masks are not stored separately: they are reconstructed from the input
//! rows' offsets (which is exactly how the hardware treats them).

use super::trace::{ConvLayerTrace, FcLayerTrace, LayerTrace, NetworkTrace};
use sparsetrain_sparse::rowconv::SparseFeatureMap;
use sparsetrain_sparse::SparseVec;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::Tensor3;
use std::fmt::Write as _;

/// Serializes a trace to the text format.
pub fn to_text(trace: &NetworkTrace) -> String {
    let mut out = String::new();
    out.push_str("sparsetrain-trace v1\n");
    let _ = writeln!(out, "model {}", trace.model);
    let _ = writeln!(out, "dataset {}", trace.dataset);
    for layer in &trace.layers {
        match layer {
            LayerTrace::Conv(c) => {
                let _ = writeln!(
                    out,
                    "conv {} {} {} {} {} {} {} {} {}",
                    c.name,
                    c.geom.kernel,
                    c.geom.stride,
                    c.geom.pad,
                    c.filters,
                    c.input.channels(),
                    c.input.height(),
                    c.input.width(),
                    c.needs_input_grad as u8
                );
                for ci in 0..c.input.channels() {
                    for y in 0..c.input.height() {
                        write_row(&mut out, c.input.row(ci, y));
                    }
                }
                let _ = writeln!(
                    out,
                    "dout {} {} {}",
                    c.dout.channels(),
                    c.dout.height(),
                    c.dout.width()
                );
                for fi in 0..c.dout.channels() {
                    for y in 0..c.dout.height() {
                        write_row(&mut out, c.dout.row(fi, y));
                    }
                }
            }
            LayerTrace::Fc(f) => {
                let _ = writeln!(
                    out,
                    "fc {} {} {} {} {} {} {}",
                    f.name,
                    f.in_features,
                    f.out_features,
                    f.input_nnz,
                    f.dout_nnz,
                    f.mask_nnz,
                    f.needs_input_grad as u8
                );
            }
        }
    }
    out.push_str("end\n");
    out
}

fn write_row(out: &mut String, row: &SparseVec) {
    let _ = write!(out, "row {}", row.nnz());
    for (o, v) in row.iter() {
        let _ = write!(out, " {o}:{v}");
    }
    out.push('\n');
}

/// Parses a trace from the text format.
///
/// # Errors
///
/// Returns a message describing the first malformed line.
pub fn from_text(text: &str) -> Result<NetworkTrace, String> {
    let mut lines = text.lines().peekable();
    let header = lines.next().ok_or("empty input")?;
    if header != "sparsetrain-trace v1" {
        return Err(format!("unrecognized header: {header}"));
    }
    let model = parse_kv(lines.next(), "model")?;
    let dataset = parse_kv(lines.next(), "dataset")?;
    let mut trace = NetworkTrace::new(model, dataset);

    while let Some(line) = lines.next() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("end") => return Ok(trace),
            Some("conv") => {
                let name = parts.next().ok_or("conv: missing name")?.to_string();
                let nums: Vec<usize> = parts
                    .map(|p| p.parse().map_err(|_| format!("conv: bad number {p}")))
                    .collect::<Result<_, _>>()?;
                if nums.len() != 8 {
                    return Err(format!("conv {name}: expected 8 numbers, got {}", nums.len()));
                }
                let [k, stride, pad, filters, c, h, w, nig] = [
                    nums[0], nums[1], nums[2], nums[3], nums[4], nums[5], nums[6], nums[7],
                ];
                let input = read_map(&mut lines, c, h, w)?;
                let dout_header = lines.next().ok_or("missing dout header")?;
                let mut dp = dout_header.split_whitespace();
                if dp.next() != Some("dout") {
                    return Err(format!("expected dout header, got {dout_header}"));
                }
                let dnums: Vec<usize> = dp
                    .map(|p| p.parse().map_err(|_| format!("dout: bad number {p}")))
                    .collect::<Result<_, _>>()?;
                if dnums.len() != 3 {
                    return Err("dout: expected 3 numbers".to_string());
                }
                let dout = read_map(&mut lines, dnums[0], dnums[1], dnums[2])?;
                let needs_input_grad = nig != 0;
                let input_masks = if needs_input_grad {
                    input.masks()
                } else {
                    Vec::new()
                };
                trace.layers.push(LayerTrace::Conv(ConvLayerTrace {
                    name,
                    geom: ConvGeometry::new(k, stride, pad),
                    filters,
                    input,
                    input_masks,
                    dout,
                    needs_input_grad,
                }));
            }
            Some("fc") => {
                let name = parts.next().ok_or("fc: missing name")?.to_string();
                let nums: Vec<usize> = parts
                    .map(|p| p.parse().map_err(|_| format!("fc: bad number {p}")))
                    .collect::<Result<_, _>>()?;
                if nums.len() != 6 {
                    return Err(format!("fc {name}: expected 6 numbers"));
                }
                trace.layers.push(LayerTrace::Fc(FcLayerTrace {
                    name,
                    in_features: nums[0],
                    out_features: nums[1],
                    input_nnz: nums[2],
                    dout_nnz: nums[3],
                    mask_nnz: nums[4],
                    needs_input_grad: nums[5] != 0,
                }));
            }
            Some(other) => return Err(format!("unexpected directive: {other}")),
            None => continue,
        }
    }
    Err("missing end directive".to_string())
}

fn parse_kv(line: Option<&str>, key: &str) -> Result<String, String> {
    let line = line.ok_or_else(|| format!("missing {key} line"))?;
    line.strip_prefix(key)
        .map(|rest| rest.trim().to_string())
        .ok_or_else(|| format!("expected {key} line, got: {line}"))
}

fn read_map<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
    c: usize,
    h: usize,
    w: usize,
) -> Result<SparseFeatureMap, String> {
    let mut dense = Tensor3::zeros(c, h, w);
    for ci in 0..c {
        for y in 0..h {
            let line = lines.next().ok_or("unexpected end of rows")?;
            let mut parts = line.split_whitespace();
            if parts.next() != Some("row") {
                return Err(format!("expected row line, got: {line}"));
            }
            let nnz: usize = parts
                .next()
                .ok_or("row: missing nnz")?
                .parse()
                .map_err(|_| "row: bad nnz".to_string())?;
            let mut seen = 0usize;
            for pair in parts {
                let (o, v) = pair.split_once(':').ok_or_else(|| format!("bad pair {pair}"))?;
                let o: usize = o.parse().map_err(|_| format!("bad offset {o}"))?;
                let v: f32 = v.parse().map_err(|_| format!("bad value {v}"))?;
                if o >= w {
                    return Err(format!("offset {o} out of range {w}"));
                }
                dense.set(ci, y, o, v);
                seen += 1;
            }
            if seen != nnz {
                return Err(format!("row declared {nnz} non-zeros but listed {seen}"));
            }
        }
    }
    Ok(SparseFeatureMap::from_tensor(&dense))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> NetworkTrace {
        let input = Tensor3::from_fn(2, 3, 4, |c, y, x| {
            if (c + y + x) % 2 == 0 {
                (c + y) as f32 + 0.5
            } else {
                0.0
            }
        });
        let dout = Tensor3::from_fn(2, 3, 4, |c, y, x| if (c * y + x) % 3 == 0 { -1.25 } else { 0.0 });
        let fm = SparseFeatureMap::from_tensor(&input);
        let masks = fm.masks();
        let mut t = NetworkTrace::new("testnet", "testdata");
        t.layers.push(LayerTrace::Conv(ConvLayerTrace {
            name: "c1".into(),
            geom: ConvGeometry::new(3, 1, 1),
            filters: 2,
            input: fm,
            input_masks: masks,
            dout: SparseFeatureMap::from_tensor(&dout),
            needs_input_grad: true,
        }));
        t.layers.push(LayerTrace::Fc(FcLayerTrace {
            name: "fc".into(),
            in_features: 24,
            out_features: 10,
            input_nnz: 12,
            dout_nnz: 10,
            mask_nnz: 12,
            needs_input_grad: true,
        }));
        t
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let orig = sample_trace();
        let text = to_text(&orig);
        let parsed = from_text(&text).expect("parse");
        assert_eq!(parsed.model, orig.model);
        assert_eq!(parsed.dataset, orig.dataset);
        assert_eq!(parsed.layers.len(), orig.layers.len());
        assert_eq!(parsed.dense_macs(), orig.dense_macs());
        assert!(parsed.validate().is_ok());
        // Round-trip again: text form must be stable.
        assert_eq!(to_text(&parsed), text);
    }

    #[test]
    fn roundtrip_preserves_sparsity_exactly() {
        let orig = sample_trace();
        let parsed = from_text(&to_text(&orig)).unwrap();
        let (LayerTrace::Conv(a), LayerTrace::Conv(b)) = (&orig.layers[0], &parsed.layers[0]) else {
            panic!("expected conv layers");
        };
        assert_eq!(a.input.nnz(), b.input.nnz());
        assert_eq!(a.dout.nnz(), b.dout.nnz());
        assert_eq!(a.input.to_tensor(), b.input.to_tensor());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_text("not-a-trace\n").is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let text = to_text(&sample_trace());
        let truncated = &text[..text.len() / 2];
        assert!(from_text(truncated).is_err());
    }

    #[test]
    fn rejects_nnz_mismatch() {
        let text = "sparsetrain-trace v1\nmodel m\ndataset d\nconv c 1 1 0 1 1 1 2 1\nrow 2 0:1.0\ndout 1 1 2\nrow 0\nrow 0\nend\n";
        let err = from_text(text).unwrap_err();
        assert!(err.contains("declared"), "unexpected error: {err}");
    }

    #[test]
    fn empty_network_roundtrips() {
        let t = NetworkTrace::new("empty", "none");
        let parsed = from_text(&to_text(&t)).unwrap();
        assert!(parsed.layers.is_empty());
    }
}
