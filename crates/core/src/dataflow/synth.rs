//! Synthetic trace generation for architecture sweeps.
//!
//! Capturing a [`NetworkTrace`] from a real training
//! run is the faithful path, but sweeping dozens of architecture points
//! (PE counts, buffer sizes, scheduler policies) only needs traces with
//! *controlled* shapes and densities. This module fabricates such traces:
//! every layer is given Bernoulli-sparse activations and gradients at
//! requested densities, with values drawn from a zero-mean normal — the
//! distribution the pruning analysis of §III assumes.
//!
//! The generated trace passes [`NetworkTrace::validate`] and is accepted
//! by every simulator entry point, the compiler and the work analysis.
//!
//! # Example
//!
//! ```
//! use sparsetrain_core::dataflow::synth::{SynthLayer, SynthNet};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let net = SynthNet::new("toy", "sweep")
//!     .conv(SynthLayer::conv(3, 16, 8, 3).input_density(0.4).dout_density(0.2));
//! let mut rng = StdRng::seed_from_u64(7);
//! let trace = net.generate(&mut rng);
//! assert_eq!(trace.layers.len(), 1);
//! trace.validate().unwrap();
//! ```

use super::trace::{ConvLayerTrace, FcLayerTrace, LayerTrace, NetworkTrace};
use rand::Rng;
use sparsetrain_sparse::rowconv::SparseFeatureMap;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::Tensor3;

/// Specification of one synthetic CONV layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthLayer {
    /// Input channels.
    pub channels: usize,
    /// Output channels (filters).
    pub filters: usize,
    /// Input height = width (square maps, as in the evaluated models).
    pub size: usize,
    /// Kernel size `K`.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Target density of the input activations (natural ReLU sparsity).
    pub input_density: f64,
    /// Target density of the output activation gradients (after pruning).
    pub dout_density: f64,
    /// Whether the GTA stage runs for this layer (false for the first
    /// layer of a network).
    pub needs_input_grad: bool,
}

impl SynthLayer {
    /// A conv layer spec with dense operands; refine with the builder
    /// methods.
    pub fn conv(channels: usize, filters: usize, size: usize, kernel: usize) -> Self {
        Self {
            channels,
            filters,
            size,
            kernel,
            stride: 1,
            input_density: 1.0,
            dout_density: 1.0,
            needs_input_grad: true,
        }
    }

    /// Sets the stride.
    pub fn stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the input-activation density in `[0, 1]`.
    pub fn input_density(mut self, d: f64) -> Self {
        self.input_density = d;
        self
    }

    /// Sets the output-gradient density in `[0, 1]`.
    pub fn dout_density(mut self, d: f64) -> Self {
        self.dout_density = d;
        self
    }

    /// Marks the layer as the network input (GTA skipped).
    pub fn first_layer(mut self) -> Self {
        self.needs_input_grad = false;
        self
    }

    /// Output map height/width under `kernel`/`stride` with same-row
    /// padding semantics used throughout the dataflow (padding K/2).
    pub fn out_size(&self) -> usize {
        let pad = self.kernel / 2;
        (self.size + 2 * pad - self.kernel) / self.stride + 1
    }

    /// Checks the specification for degenerate values.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.filters == 0 {
            return Err("channel counts must be positive".into());
        }
        if self.size == 0 {
            return Err("map size must be positive".into());
        }
        if self.kernel == 0 || self.kernel > self.size {
            return Err(format!("kernel {} invalid for size {}", self.kernel, self.size));
        }
        if self.stride == 0 {
            return Err("stride must be positive".into());
        }
        for (name, d) in [
            ("input_density", self.input_density),
            ("dout_density", self.dout_density),
        ] {
            if !(0.0..=1.0).contains(&d) {
                return Err(format!("{name} {d} outside [0, 1]"));
            }
        }
        Ok(())
    }

    fn generate<R: Rng + ?Sized>(&self, index: usize, rng: &mut R) -> ConvLayerTrace {
        let geom = ConvGeometry::new(self.kernel, self.stride, self.kernel / 2);
        let input = bernoulli_tensor(self.channels, self.size, self.size, self.input_density, rng);
        let out = self.out_size();
        let dout = bernoulli_tensor(self.filters, out, out, self.dout_density, rng);
        let input = SparseFeatureMap::from_tensor(&input);
        let input_masks = if self.needs_input_grad {
            input.masks()
        } else {
            Vec::new()
        };
        ConvLayerTrace {
            name: format!("synth_conv{index}"),
            geom,
            filters: self.filters,
            input,
            input_masks,
            dout: SparseFeatureMap::from_tensor(&dout),
            needs_input_grad: self.needs_input_grad,
        }
    }
}

/// Specification of one synthetic FC layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthFc {
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Density of the input vector.
    pub input_density: f64,
    /// Density of the output-gradient vector.
    pub dout_density: f64,
}

impl SynthFc {
    /// An FC spec with dense operands.
    pub fn new(in_features: usize, out_features: usize) -> Self {
        Self {
            in_features,
            out_features,
            input_density: 1.0,
            dout_density: 1.0,
        }
    }

    /// Sets the input density in `[0, 1]`.
    pub fn input_density(mut self, d: f64) -> Self {
        self.input_density = d;
        self
    }

    /// Sets the gradient density in `[0, 1]`.
    pub fn dout_density(mut self, d: f64) -> Self {
        self.dout_density = d;
        self
    }

    fn generate(&self, index: usize) -> FcLayerTrace {
        let clamp = |n: f64, cap: usize| -> usize { (n.round() as usize).min(cap) };
        let input_nnz = clamp(self.in_features as f64 * self.input_density, self.in_features);
        FcLayerTrace {
            name: format!("synth_fc{index}"),
            in_features: self.in_features,
            out_features: self.out_features,
            input_nnz,
            dout_nnz: clamp(self.out_features as f64 * self.dout_density, self.out_features),
            mask_nnz: input_nnz,
            needs_input_grad: true,
        }
    }
}

/// Builder for a whole synthetic network trace.
#[derive(Debug, Clone, Default)]
pub struct SynthNet {
    model: String,
    dataset: String,
    convs: Vec<SynthLayer>,
    fcs: Vec<SynthFc>,
}

impl SynthNet {
    /// Starts an empty network with the given labels.
    pub fn new(model: impl Into<String>, dataset: impl Into<String>) -> Self {
        Self {
            model: model.into(),
            dataset: dataset.into(),
            convs: Vec::new(),
            fcs: Vec::new(),
        }
    }

    /// Appends a CONV layer spec.
    pub fn conv(mut self, layer: SynthLayer) -> Self {
        self.convs.push(layer);
        self
    }

    /// Appends an FC layer spec (FC layers always follow the convs).
    pub fn fc(mut self, fc: SynthFc) -> Self {
        self.fcs.push(fc);
        self
    }

    /// Number of layers specified so far.
    pub fn len(&self) -> usize {
        self.convs.len() + self.fcs.len()
    }

    /// Whether no layers are specified.
    pub fn is_empty(&self) -> bool {
        self.convs.is_empty() && self.fcs.is_empty()
    }

    /// Materializes the trace, sampling sparsity patterns from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if any layer spec fails validation — specs are programmer
    /// input, not data.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> NetworkTrace {
        let mut trace = NetworkTrace::new(self.model.clone(), self.dataset.clone());
        for (i, spec) in self.convs.iter().enumerate() {
            spec.validate().expect("invalid synthetic conv spec");
            trace.layers.push(LayerTrace::Conv(spec.generate(i, rng)));
        }
        for (i, spec) in self.fcs.iter().enumerate() {
            trace.layers.push(LayerTrace::Fc(spec.generate(i)));
        }
        trace
    }
}

/// A ready-made AlexNet-shaped synthetic network at CIFAR scale, with the
/// given natural input sparsity and pruned gradient density applied
/// uniformly.
pub fn alexnet_shape(input_density: f64, dout_density: f64) -> SynthNet {
    SynthNet::new("alexnet-synth", "sweep")
        .conv(
            SynthLayer::conv(3, 64, 32, 3)
                .first_layer()
                .input_density(1.0)
                .dout_density(dout_density),
        )
        .conv(
            SynthLayer::conv(64, 192, 16, 3)
                .input_density(input_density)
                .dout_density(dout_density),
        )
        .conv(
            SynthLayer::conv(192, 384, 8, 3)
                .input_density(input_density)
                .dout_density(dout_density),
        )
        .conv(
            SynthLayer::conv(384, 256, 8, 3)
                .input_density(input_density)
                .dout_density(dout_density),
        )
        .conv(
            SynthLayer::conv(256, 256, 8, 3)
                .input_density(input_density)
                .dout_density(dout_density),
        )
        .fc(SynthFc::new(256 * 4 * 4, 10).input_density(input_density))
}

/// A ready-made ResNet-18-shaped synthetic network (the four stages of
/// basic blocks, without the identity shortcuts which carry no MACs).
pub fn resnet18_shape(input_density: f64, dout_density: f64) -> SynthNet {
    let mut net = SynthNet::new("resnet18-synth", "sweep").conv(
        SynthLayer::conv(3, 64, 32, 3)
            .first_layer()
            .input_density(1.0)
            .dout_density(dout_density),
    );
    let stages: [(usize, usize, usize); 4] = [(64, 32, 4), (128, 16, 4), (256, 8, 4), (512, 4, 4)];
    let mut in_ch = 64;
    for (ch, size, blocks) in stages {
        for _ in 0..blocks {
            net = net.conv(
                SynthLayer::conv(in_ch, ch, size, 3)
                    .input_density(input_density)
                    .dout_density(dout_density),
            );
            in_ch = ch;
        }
    }
    net.fc(SynthFc::new(512, 10).input_density(input_density))
}

/// Samples a `c × h × w` tensor whose elements are non-zero with
/// probability `density`; non-zero values are standard-normal (via a
/// Box–Muller pair on `rng`'s uniforms).
pub fn bernoulli_tensor<R: Rng + ?Sized>(c: usize, h: usize, w: usize, density: f64, rng: &mut R) -> Tensor3 {
    Tensor3::from_fn(c, h, w, |_, _, _| {
        if rng.gen_bool(density.clamp(0.0, 1.0)) {
            // Box–Muller: two uniforms → one standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen();
            ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_trace_validates() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = SynthNet::new("m", "d")
            .conv(SynthLayer::conv(4, 8, 12, 3).input_density(0.3).dout_density(0.2))
            .conv(SynthLayer::conv(8, 8, 12, 5).stride(2))
            .fc(SynthFc::new(128, 10).input_density(0.5));
        let trace = net.generate(&mut rng);
        assert_eq!(trace.layers.len(), 3);
        trace.validate().unwrap();
    }

    #[test]
    fn densities_land_near_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = SynthNet::new("m", "d").conv(SynthLayer::conv(8, 8, 32, 3).input_density(0.25));
        let trace = net.generate(&mut rng);
        let LayerTrace::Conv(conv) = &trace.layers[0] else {
            panic!("expected conv")
        };
        let d = conv.input_density();
        assert!((d - 0.25).abs() < 0.05, "density {d} far from 0.25");
    }

    #[test]
    fn first_layer_skips_gta() {
        let mut rng = StdRng::seed_from_u64(3);
        let trace = SynthNet::new("m", "d")
            .conv(SynthLayer::conv(3, 4, 8, 3).first_layer())
            .generate(&mut rng);
        let LayerTrace::Conv(conv) = &trace.layers[0] else {
            panic!("expected conv")
        };
        assert!(!conv.needs_input_grad);
        assert!(conv.input_masks.is_empty());
    }

    #[test]
    fn zero_density_yields_empty_maps() {
        let mut rng = StdRng::seed_from_u64(4);
        let trace = SynthNet::new("m", "d")
            .conv(SynthLayer::conv(2, 2, 6, 3).input_density(0.0).dout_density(0.0))
            .generate(&mut rng);
        let LayerTrace::Conv(conv) = &trace.layers[0] else {
            panic!("expected conv")
        };
        assert_eq!(conv.input.nnz(), 0);
        assert_eq!(conv.dout.nnz(), 0);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let net = alexnet_shape(0.4, 0.2);
        let a = net.generate(&mut StdRng::seed_from_u64(9));
        let b = net.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a.dense_macs(), b.dense_macs());
        assert_eq!(a.mean_input_density(), b.mean_input_density());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(SynthLayer::conv(0, 1, 8, 3).validate().is_err());
        assert!(SynthLayer::conv(1, 1, 8, 9).validate().is_err());
        assert!(SynthLayer::conv(1, 1, 8, 3).stride(0).validate().is_err());
        assert!(SynthLayer::conv(1, 1, 8, 3)
            .input_density(1.5)
            .validate()
            .is_err());
    }

    #[test]
    fn shapes_compile_and_analyze() {
        let mut rng = StdRng::seed_from_u64(5);
        for net in [alexnet_shape(0.4, 0.15), resnet18_shape(0.5, 0.35)] {
            let trace = net.generate(&mut rng);
            trace.validate().unwrap();
            assert!(trace.dense_macs() > 0);
            let p = crate::dataflow::compile(&trace);
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn fc_nnz_is_capped() {
        let fc = SynthFc::new(10, 5).input_density(1.0).generate(0);
        assert_eq!(fc.input_nnz, 10);
        assert!(fc.dout_nnz <= 5);
    }

    #[test]
    fn out_size_accounts_for_stride_and_padding() {
        let l = SynthLayer::conv(1, 1, 32, 3);
        assert_eq!(l.out_size(), 32); // same padding, stride 1
        assert_eq!(l.clone().stride(2).out_size(), 16);
    }
}
