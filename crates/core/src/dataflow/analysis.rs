//! Static trace analysis: work counts and ideal-speedup bounds.
//!
//! Before simulating, a trace already determines how much arithmetic each
//! architecture must perform. This module computes those static quantities
//! — dense vs sparse MAC counts per stage — and the resulting *ideal*
//! (compute-bound, perfectly balanced) speedup. The simulator's measured
//! speedup can never exceed the ideal bound; the gap between them is
//! scheduling/bandwidth/overhead loss, a useful architecture diagnostic
//! that the tests here pin down.

use super::ops::{self, StepKind};
use super::trace::{ConvLayerTrace, LayerTrace, NetworkTrace};
use sparsetrain_sparse::work::{msrc_work, osrc_work, src_work};

/// Static work counts of one trace, by stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkSummary {
    /// Dense MACs a baseline must perform (Forward; GTA and GTW have the
    /// same dense count for CONV layers).
    pub dense_macs: [u64; 3],
    /// MACs SparseTrain performs after all skipping.
    pub sparse_macs: [u64; 3],
    /// SparseTrain PE cycles (work-model, before scheduling).
    pub sparse_cycles: [u64; 3],
}

impl WorkSummary {
    /// Total dense MACs.
    pub fn total_dense_macs(&self) -> u64 {
        self.dense_macs.iter().sum()
    }

    /// Total sparse MACs.
    pub fn total_sparse_macs(&self) -> u64 {
        self.sparse_macs.iter().sum()
    }

    /// Ideal compute-bound speedup: dense work over sparse work (1.0 when
    /// no work exists).
    pub fn ideal_speedup(&self) -> f64 {
        let sparse = self.total_sparse_macs();
        if sparse == 0 {
            return 1.0;
        }
        self.total_dense_macs() as f64 / sparse as f64
    }

    /// Per-stage MAC reduction factors (dense/sparse; 1.0 for idle stages).
    pub fn stage_reduction(&self, kind: StepKind) -> f64 {
        let idx = stage_index(kind);
        if self.sparse_macs[idx] == 0 {
            return 1.0;
        }
        self.dense_macs[idx] as f64 / self.sparse_macs[idx] as f64
    }
}

fn stage_index(kind: StepKind) -> usize {
    match kind {
        StepKind::Forward => 0,
        StepKind::Gta => 1,
        StepKind::Gtw => 2,
    }
}

/// Computes the static work summary of a conv layer.
pub fn analyze_conv(conv: &ConvLayerTrace) -> WorkSummary {
    let mut s = WorkSummary::default();
    let dense = conv.dense_macs();
    s.dense_macs[0] = dense;
    s.dense_macs[1] = if conv.needs_input_grad { dense } else { 0 };
    s.dense_macs[2] = dense;

    ops::for_each_forward_op(conv, |_, op| {
        let w = src_work(op.input, op.geom);
        s.sparse_macs[0] += w.macs;
        s.sparse_cycles[0] += w.cycles;
    });
    ops::for_each_gta_op(conv, |_, op| {
        let w = msrc_work(op.grad, op.geom, op.mask);
        s.sparse_macs[1] += w.macs;
        s.sparse_cycles[1] += w.cycles;
    });
    ops::for_each_gtw_op(conv, |_, op| {
        let w = osrc_work(op.input, op.grad, op.geom);
        s.sparse_macs[2] += w.macs;
        s.sparse_cycles[2] += w.cycles;
    });
    s
}

/// Element operations of the Weight Update stage: one multiply–add per
/// parameter (SGD). The paper excludes this stage from acceleration
/// because it is "not a performance bottleneck" (§II) —
/// the `weight_update_is_negligible` unit test quantifies that claim against
/// the trace's training MACs.
pub fn weight_update_ops(trace: &NetworkTrace) -> u64 {
    trace
        .layers
        .iter()
        .map(|l| match l {
            LayerTrace::Conv(c) => {
                (c.filters * c.input.channels() * c.geom.kernel * c.geom.kernel + c.filters) as u64
            }
            LayerTrace::Fc(f) => f.dense_macs() + f.out_features as u64,
        })
        .sum()
}

/// Computes the static work summary of a whole trace (CONV layers only —
/// FC layers are costed by the simulator's analytic path).
pub fn analyze(trace: &NetworkTrace) -> WorkSummary {
    let mut total = WorkSummary::default();
    for layer in &trace.layers {
        if let LayerTrace::Conv(conv) = layer {
            let s = analyze_conv(conv);
            for i in 0..3 {
                total.dense_macs[i] += s.dense_macs[i];
                total.sparse_macs[i] += s.sparse_macs[i];
                total.sparse_cycles[i] += s.sparse_cycles[i];
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetrain_sparse::rowconv::SparseFeatureMap;
    use sparsetrain_tensor::conv::ConvGeometry;
    use sparsetrain_tensor::Tensor3;

    fn conv_trace(density_mod: usize) -> ConvLayerTrace {
        let geom = ConvGeometry::new(3, 1, 1);
        let input = Tensor3::from_fn(
            2,
            6,
            6,
            |c, y, x| {
                if (c + y + x) % density_mod == 0 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let dout = Tensor3::from_fn(
            3,
            6,
            6,
            |c, y, x| {
                if (c + y * x) % density_mod == 0 {
                    0.5
                } else {
                    0.0
                }
            },
        );
        let fm = SparseFeatureMap::from_tensor(&input);
        let masks = fm.masks();
        ConvLayerTrace {
            name: "a".into(),
            geom,
            filters: 3,
            input: fm,
            input_masks: masks,
            dout: SparseFeatureMap::from_tensor(&dout),
            needs_input_grad: true,
        }
    }

    #[test]
    fn dense_trace_has_near_unit_ideal_speedup() {
        // Fully dense operands: sparse MACs equal dense MACs for the
        // Forward step (edge taps differ only through padding handling).
        let s = analyze_conv(&conv_trace(1));
        assert_eq!(s.dense_macs[0], conv_trace(1).dense_macs());
        let ratio = s.dense_macs[0] as f64 / s.sparse_macs[0] as f64;
        assert!(
            (0.9..=1.35).contains(&ratio),
            "dense forward ratio {ratio} should be ~1 (padding edge effects only)"
        );
    }

    #[test]
    fn sparser_trace_has_higher_ideal_speedup() {
        let dense = analyze_conv(&conv_trace(1));
        let sparse = analyze_conv(&conv_trace(3));
        assert!(sparse.ideal_speedup() > dense.ideal_speedup());
        assert!(sparse.ideal_speedup() > 2.0, "got {}", sparse.ideal_speedup());
    }

    #[test]
    fn gta_skipped_when_no_input_grad() {
        let mut t = conv_trace(2);
        t.needs_input_grad = false;
        t.input_masks = Vec::new();
        let s = analyze_conv(&t);
        assert_eq!(s.dense_macs[1], 0);
        assert_eq!(s.sparse_macs[1], 0);
    }

    #[test]
    fn network_analysis_sums_layers() {
        let mut trace = NetworkTrace::new("m", "d");
        trace.layers.push(LayerTrace::Conv(conv_trace(2)));
        trace.layers.push(LayerTrace::Conv(conv_trace(2)));
        let one = analyze_conv(&conv_trace(2));
        let both = analyze(&trace);
        assert_eq!(both.total_dense_macs(), 2 * one.total_dense_macs());
        assert_eq!(both.total_sparse_macs(), 2 * one.total_sparse_macs());
    }

    #[test]
    fn weight_update_is_negligible() {
        // The paper's §II justification for ignoring the Weight Update
        // stage: its element ops are a tiny fraction of the training MACs
        // (here <2% even for this small layer; real networks are far
        // lower because MACs scale with spatial size and update does not).
        let mut trace = NetworkTrace::new("m", "d");
        trace.layers.push(LayerTrace::Conv(conv_trace(2)));
        let update = weight_update_ops(&trace);
        let training = 3 * trace.dense_macs();
        assert!(
            (update as f64) < 0.02 * training as f64,
            "weight update {update} not negligible vs {training}"
        );
    }

    #[test]
    fn stage_reductions_reflect_operand_sparsity() {
        let s = analyze_conv(&conv_trace(3));
        // GTW multiplies two sparse operands — its reduction should be the
        // strongest of the three stages.
        let f = s.stage_reduction(StepKind::Forward);
        let gtw = s.stage_reduction(StepKind::Gtw);
        assert!(gtw > f, "GTW reduction {gtw} should exceed Forward {f}");
    }
}
