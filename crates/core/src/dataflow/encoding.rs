//! Binary encoding of compiled instruction programs.
//!
//! The paper's controller consumes "internal instructions" produced by its
//! compiler. This module pins that interface down to the bit: every
//! [`Instr`] packs into one 128-bit little-endian word, and a [`Program`]
//! serializes as a small header followed by the packed words. The format is
//! what a host driver would DMA into the accelerator's instruction queue,
//! and its field widths document the hardware limits of the design (kernel
//! ≤ 15, stride ≤ 7, 24-bit row populations).
//!
//! # Word layout (least-significant bit first)
//!
//! | bits    | field       | width | meaning                                   |
//! |---------|-------------|-------|-------------------------------------------|
//! | 0–1     | opcode      | 2     | 0 = SRC, 1 = MSRC, 2 = OSRC               |
//! | 2–5     | kernel      | 4     | kernel size `K` (1–15)                    |
//! | 6–8     | stride      | 3     | stride (1–7)                              |
//! | 9–15    | reserved    | 7     | must be zero                              |
//! | 16–31   | layer       | 16    | layer index                               |
//! | 32–55   | task        | 24    | scheduling task id                        |
//! | 56–79   | port1_nnz   | 24    | Port-1 stream population                  |
//! | 80–103  | port2_nnz   | 24    | Port-2 stream population (OSRC only)      |
//! | 104–127 | mask_nnz    | 24    | Port-3 mask population (MSRC only)        |
//!
//! # Example
//!
//! ```
//! use sparsetrain_core::dataflow::{compile, NetworkTrace};
//! use sparsetrain_core::dataflow::encoding::{encode_program, decode_program};
//!
//! let program = compile(&NetworkTrace::new("empty", "none"));
//! let bytes = encode_program(&program).unwrap();
//! let back = decode_program(&bytes).unwrap();
//! assert_eq!(back.instrs, program.instrs);
//! ```

use super::compiler::{Instr, Program};
use super::ops::StepKind;
use std::error::Error;
use std::fmt;

/// Magic bytes that open a serialized program.
pub const MAGIC: [u8; 8] = *b"STPROG\x01\x00";

/// Format version written into the header.
pub const VERSION: u16 = 1;

/// Size of one encoded instruction, in bytes.
pub const INSTR_BYTES: usize = 16;

/// Size of the program header, in bytes.
pub const HEADER_BYTES: usize = 16;

/// Widest kernel the 4-bit field can carry.
pub const MAX_KERNEL: u8 = 15;

/// Largest stride the 3-bit field can carry.
pub const MAX_STRIDE: u8 = 7;

/// Largest layer index the 16-bit field can carry.
pub const MAX_LAYER: u32 = 0xFFFF;

/// Largest value a 24-bit population/task field can carry.
pub const MAX_FIELD24: u32 = 0xFF_FFFF;

/// A field of [`Instr`] that can overflow its encoded width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// The layer index (16 bits).
    Layer,
    /// The task id (24 bits).
    Task,
    /// The kernel size (4 bits, non-zero).
    Kernel,
    /// The stride (3 bits, non-zero).
    Stride,
    /// The Port-1 population (24 bits).
    Port1,
    /// The Port-2 population (24 bits).
    Port2,
    /// The Port-3 mask population (24 bits).
    Mask,
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Field::Layer => "layer",
            Field::Task => "task",
            Field::Kernel => "kernel",
            Field::Stride => "stride",
            Field::Port1 => "port1_nnz",
            Field::Port2 => "port2_nnz",
            Field::Mask => "mask_nnz",
        };
        f.write_str(name)
    }
}

/// Error encoding a program into bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An instruction field does not fit its encoded width.
    FieldOverflow {
        /// Index of the offending instruction.
        index: usize,
        /// The field that overflowed.
        field: Field,
        /// The value that did not fit.
        value: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::FieldOverflow { index, field, value } => write!(
                f,
                "instruction {index}: {field} value {value} exceeds its encoded width"
            ),
        }
    }
}

impl Error for EncodeError {}

/// Error decoding bytes into a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than a header.
    TruncatedHeader,
    /// The magic bytes do not match [`MAGIC`].
    BadMagic,
    /// The header version is not [`VERSION`].
    UnsupportedVersion(u16),
    /// The payload length disagrees with the instruction count.
    LengthMismatch {
        /// Instructions promised by the header.
        expected: u64,
        /// Whole instruction words actually present.
        actual: u64,
    },
    /// An instruction word carries an unknown opcode.
    InvalidOpcode {
        /// Index of the offending instruction.
        index: usize,
        /// The opcode value found.
        opcode: u8,
    },
    /// An instruction word has non-zero reserved bits.
    ReservedBits {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A kernel or stride field is zero (both must be ≥ 1).
    ZeroField {
        /// Index of the offending instruction.
        index: usize,
        /// The zero field.
        field: Field,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedHeader => write!(f, "buffer shorter than the program header"),
            DecodeError::BadMagic => write!(f, "magic bytes are not a SparseTrain program"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported program version {v}"),
            DecodeError::LengthMismatch { expected, actual } => write!(
                f,
                "header promises {expected} instructions but payload holds {actual}"
            ),
            DecodeError::InvalidOpcode { index, opcode } => {
                write!(f, "instruction {index}: invalid opcode {opcode}")
            }
            DecodeError::ReservedBits { index } => {
                write!(f, "instruction {index}: reserved bits are set")
            }
            DecodeError::ZeroField { index, field } => {
                write!(f, "instruction {index}: {field} must be non-zero")
            }
        }
    }
}

impl Error for DecodeError {}

fn opcode_of(step: StepKind) -> u128 {
    match step {
        StepKind::Forward => 0,
        StepKind::Gta => 1,
        StepKind::Gtw => 2,
    }
}

fn step_of(opcode: u8) -> Option<StepKind> {
    match opcode {
        0 => Some(StepKind::Forward),
        1 => Some(StepKind::Gta),
        2 => Some(StepKind::Gtw),
        _ => None,
    }
}

fn check24(index: usize, field: Field, value: u32) -> Result<u128, EncodeError> {
    if value > MAX_FIELD24 {
        return Err(EncodeError::FieldOverflow { index, field, value });
    }
    Ok(value as u128)
}

/// Packs one instruction into its 128-bit word.
///
/// # Errors
///
/// Returns [`EncodeError::FieldOverflow`] when a field exceeds its width;
/// `index` is echoed into the error for context.
pub fn encode_instr(instr: &Instr, index: usize) -> Result<[u8; INSTR_BYTES], EncodeError> {
    if instr.kernel == 0 || instr.kernel > MAX_KERNEL {
        return Err(EncodeError::FieldOverflow {
            index,
            field: Field::Kernel,
            value: instr.kernel as u32,
        });
    }
    if instr.stride == 0 || instr.stride > MAX_STRIDE {
        return Err(EncodeError::FieldOverflow {
            index,
            field: Field::Stride,
            value: instr.stride as u32,
        });
    }
    if instr.layer > MAX_LAYER {
        return Err(EncodeError::FieldOverflow {
            index,
            field: Field::Layer,
            value: instr.layer,
        });
    }
    let mut word: u128 = opcode_of(instr.step);
    word |= (instr.kernel as u128) << 2;
    word |= (instr.stride as u128) << 6;
    word |= (instr.layer as u128) << 16;
    word |= check24(index, Field::Task, instr.task)? << 32;
    word |= check24(index, Field::Port1, instr.port1_nnz)? << 56;
    word |= check24(index, Field::Port2, instr.port2_nnz)? << 80;
    word |= check24(index, Field::Mask, instr.mask_nnz)? << 104;
    Ok(word.to_le_bytes())
}

/// Unpacks one 128-bit word into an instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the first malformed field.
pub fn decode_instr(bytes: &[u8; INSTR_BYTES], index: usize) -> Result<Instr, DecodeError> {
    let word = u128::from_le_bytes(*bytes);
    let opcode = (word & 0b11) as u8;
    let step = step_of(opcode).ok_or(DecodeError::InvalidOpcode { index, opcode })?;
    if (word >> 9) & 0x7F != 0 {
        return Err(DecodeError::ReservedBits { index });
    }
    let kernel = ((word >> 2) & 0xF) as u8;
    if kernel == 0 {
        return Err(DecodeError::ZeroField {
            index,
            field: Field::Kernel,
        });
    }
    let stride = ((word >> 6) & 0x7) as u8;
    if stride == 0 {
        return Err(DecodeError::ZeroField {
            index,
            field: Field::Stride,
        });
    }
    Ok(Instr {
        layer: ((word >> 16) & 0xFFFF) as u32,
        step,
        task: ((word >> 32) & 0xFF_FFFF) as u32,
        kernel,
        stride,
        port1_nnz: ((word >> 56) & 0xFF_FFFF) as u32,
        port2_nnz: ((word >> 80) & 0xFF_FFFF) as u32,
        mask_nnz: ((word >> 104) & 0xFF_FFFF) as u32,
    })
}

/// Serializes a program: a 16-byte header ([`MAGIC`], [`VERSION`], count)
/// followed by one packed word per instruction.
///
/// # Errors
///
/// Returns [`EncodeError::FieldOverflow`] if any instruction does not fit
/// the format.
pub fn encode_program(program: &Program) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(HEADER_BYTES + program.len() * INSTR_BYTES);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]); // reserved
    out.extend_from_slice(&(program.len() as u32).to_le_bytes());
    for (index, instr) in program.instrs.iter().enumerate() {
        out.extend_from_slice(&encode_instr(instr, index)?);
    }
    Ok(out)
}

/// Deserializes a program produced by [`encode_program`].
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the first structural problem:
/// truncated or foreign headers, version or length disagreements, and
/// malformed instruction words.
pub fn decode_program(bytes: &[u8]) -> Result<Program, DecodeError> {
    if bytes.len() < HEADER_BYTES {
        return Err(DecodeError::TruncatedHeader);
    }
    if bytes[..8] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as u64;
    let payload = &bytes[HEADER_BYTES..];
    let actual = (payload.len() / INSTR_BYTES) as u64;
    if actual != count || !payload.len().is_multiple_of(INSTR_BYTES) {
        return Err(DecodeError::LengthMismatch {
            expected: count,
            actual,
        });
    }
    let mut program = Program::default();
    program.instrs.reserve(count as usize);
    for (index, chunk) in payload.chunks_exact(INSTR_BYTES).enumerate() {
        let word: [u8; INSTR_BYTES] = chunk.try_into().expect("chunks_exact yields full chunks");
        program.instrs.push(decode_instr(&word, index)?);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instr() -> Instr {
        Instr {
            layer: 7,
            step: StepKind::Gta,
            task: 1234,
            kernel: 3,
            stride: 2,
            port1_nnz: 99,
            port2_nnz: 0,
            mask_nnz: 41,
        }
    }

    #[test]
    fn instr_roundtrips() {
        let i = sample_instr();
        let bytes = encode_instr(&i, 0).unwrap();
        assert_eq!(decode_instr(&bytes, 0).unwrap(), i);
    }

    #[test]
    fn all_opcodes_roundtrip() {
        for step in StepKind::ALL {
            let mut i = sample_instr();
            i.step = step;
            let bytes = encode_instr(&i, 0).unwrap();
            assert_eq!(decode_instr(&bytes, 0).unwrap().step, step);
        }
    }

    #[test]
    fn extreme_field_values_roundtrip() {
        let i = Instr {
            layer: MAX_LAYER,
            step: StepKind::Gtw,
            task: MAX_FIELD24,
            kernel: MAX_KERNEL,
            stride: MAX_STRIDE,
            port1_nnz: MAX_FIELD24,
            port2_nnz: MAX_FIELD24,
            mask_nnz: MAX_FIELD24,
        };
        let bytes = encode_instr(&i, 0).unwrap();
        assert_eq!(decode_instr(&bytes, 0).unwrap(), i);
    }

    #[test]
    fn oversized_fields_are_rejected() {
        let mut i = sample_instr();
        i.task = MAX_FIELD24 + 1;
        assert_eq!(
            encode_instr(&i, 5),
            Err(EncodeError::FieldOverflow {
                index: 5,
                field: Field::Task,
                value: MAX_FIELD24 + 1
            })
        );
        let mut i = sample_instr();
        i.kernel = MAX_KERNEL + 1;
        assert!(matches!(
            encode_instr(&i, 0),
            Err(EncodeError::FieldOverflow {
                field: Field::Kernel,
                ..
            })
        ));
        let mut i = sample_instr();
        i.stride = 0;
        assert!(matches!(
            encode_instr(&i, 0),
            Err(EncodeError::FieldOverflow {
                field: Field::Stride,
                ..
            })
        ));
        let mut i = sample_instr();
        i.layer = MAX_LAYER + 1;
        assert!(matches!(
            encode_instr(&i, 0),
            Err(EncodeError::FieldOverflow {
                field: Field::Layer,
                ..
            })
        ));
    }

    #[test]
    fn invalid_opcode_is_rejected() {
        let word: u128 = 0b11 | (3 << 2) | (1 << 6); // opcode 3 does not exist
        let err = decode_instr(&word.to_le_bytes(), 2).unwrap_err();
        assert_eq!(err, DecodeError::InvalidOpcode { index: 2, opcode: 3 });
    }

    #[test]
    fn reserved_bits_are_rejected() {
        let i = sample_instr();
        let mut bytes = encode_instr(&i, 0).unwrap();
        bytes[1] |= 0x80; // bit 15 lives in the reserved span
        assert_eq!(
            decode_instr(&bytes, 0),
            Err(DecodeError::ReservedBits { index: 0 })
        );
    }

    #[test]
    fn zero_kernel_or_stride_is_rejected() {
        // Hand-build words with zero kernel / stride fields.
        let zero_kernel: u128 = 1 << 6; // opcode 0, kernel 0, stride 1
        assert_eq!(
            decode_instr(&zero_kernel.to_le_bytes(), 0),
            Err(DecodeError::ZeroField {
                index: 0,
                field: Field::Kernel
            })
        );
        let zero_stride: u128 = 3 << 2; // opcode 0, kernel 3, stride 0
        assert_eq!(
            decode_instr(&zero_stride.to_le_bytes(), 0),
            Err(DecodeError::ZeroField {
                index: 0,
                field: Field::Stride
            })
        );
    }

    #[test]
    fn program_roundtrips() {
        let mut p = Program::default();
        for t in 0..50u32 {
            let mut i = sample_instr();
            i.task = t;
            i.port1_nnz = t * 3 + 1;
            p.instrs.push(i);
        }
        let bytes = encode_program(&p).unwrap();
        assert_eq!(bytes.len(), HEADER_BYTES + 50 * INSTR_BYTES);
        let back = decode_program(&bytes).unwrap();
        assert_eq!(back.instrs, p.instrs);
    }

    #[test]
    fn empty_program_roundtrips() {
        let bytes = encode_program(&Program::default()).unwrap();
        assert_eq!(bytes.len(), HEADER_BYTES);
        assert!(decode_program(&bytes).unwrap().is_empty());
    }

    #[test]
    fn header_errors_are_detected() {
        assert_eq!(decode_program(&[0u8; 4]), Err(DecodeError::TruncatedHeader));

        let mut bytes = encode_program(&Program::default()).unwrap();
        bytes[0] = b'X';
        assert_eq!(decode_program(&bytes), Err(DecodeError::BadMagic));

        let mut bytes = encode_program(&Program::default()).unwrap();
        bytes[8] = 9;
        assert_eq!(decode_program(&bytes), Err(DecodeError::UnsupportedVersion(9)));
    }

    #[test]
    fn length_mismatch_is_detected() {
        let mut p = Program::default();
        p.instrs.push(sample_instr());
        let mut bytes = encode_program(&p).unwrap();
        // Claim two instructions while shipping one.
        bytes[12] = 2;
        assert_eq!(
            decode_program(&bytes),
            Err(DecodeError::LengthMismatch {
                expected: 2,
                actual: 1
            })
        );
        // Ragged payload.
        let mut p2 = Program::default();
        p2.instrs.push(sample_instr());
        let mut ragged = encode_program(&p2).unwrap();
        ragged.pop();
        assert!(matches!(
            decode_program(&ragged),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn error_messages_are_nonempty() {
        let e = EncodeError::FieldOverflow {
            index: 0,
            field: Field::Port2,
            value: 1,
        };
        assert!(!e.to_string().is_empty());
        for d in [
            DecodeError::TruncatedHeader,
            DecodeError::BadMagic,
            DecodeError::UnsupportedVersion(2),
            DecodeError::LengthMismatch {
                expected: 1,
                actual: 0,
            },
            DecodeError::InvalidOpcode { index: 0, opcode: 3 },
            DecodeError::ReservedBits { index: 0 },
            DecodeError::ZeroField {
                index: 0,
                field: Field::Kernel,
            },
        ] {
            assert!(!d.to_string().is_empty());
        }
    }
}
