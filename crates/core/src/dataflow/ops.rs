//! Enumeration of the 1-D row operations of each training stage.
//!
//! Operations are visited grouped into **tasks**: all operations that
//! accumulate into the same output row (Forward, GTA) or the same kernel
//! row of `dW` (GTW) share a task id. The controller dispatches a task to
//! one PE, so partial sums stay in the PE's registers for the task's whole
//! lifetime — this is the scheduling contract the simulator implements.

use super::trace::ConvLayerTrace;
use sparsetrain_sparse::{RowMask, SparseVec};
use sparsetrain_tensor::conv::ConvGeometry;

/// Identifies one scheduling task (one output row's worth of work).
pub type TaskId = usize;

/// Which training stage an operation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Forward propagation (SRC operations).
    Forward,
    /// Gradients to activations (MSRC operations).
    Gta,
    /// Gradients to weights (OSRC operations).
    Gtw,
}

impl StepKind {
    /// All three stages in execution order.
    pub const ALL: [StepKind; 3] = [StepKind::Forward, StepKind::Gta, StepKind::Gtw];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            StepKind::Forward => "forward",
            StepKind::Gta => "gta",
            StepKind::Gtw => "gtw",
        }
    }
}

/// One SRC operation: a sparse input row against one dense kernel row.
#[derive(Debug, Clone, Copy)]
pub struct SrcOp<'a> {
    /// The sparse input-activation row streamed through Port-1.
    pub input: &'a SparseVec,
    /// Convolution geometry of the row operation.
    pub geom: ConvGeometry,
    /// Length of the output row being accumulated.
    pub out_len: usize,
}

/// One MSRC operation: a sparse gradient row scattered under a mask.
#[derive(Debug, Clone, Copy)]
pub struct MsrcOp<'a> {
    /// The sparse output-gradient row streamed through Port-1.
    pub grad: &'a SparseVec,
    /// Non-zero mask of the forward input row being written (Port-3).
    pub mask: &'a RowMask,
    /// Convolution geometry of the row operation.
    pub geom: ConvGeometry,
    /// Length of the input-gradient row being accumulated.
    pub out_len: usize,
}

/// One OSRC operation: two sparse rows correlated into `K` taps.
#[derive(Debug, Clone, Copy)]
pub struct OsrcOp<'a> {
    /// The sparse input-activation row (Port-1).
    pub input: &'a SparseVec,
    /// The sparse output-gradient row (Port-2, cached `K` at a time).
    pub grad: &'a SparseVec,
    /// Convolution geometry of the row operation.
    pub geom: ConvGeometry,
}

/// Visits every SRC operation of the Forward step.
///
/// Task `(fi, oy)` — one output row — contains one operation per
/// `(input channel, kernel row)` pair whose input row is in bounds and
/// non-empty. `on_op(task, op)` is called in task-major order.
///
/// Returns the number of tasks (`F × Ho`, including all-skipped ones).
pub fn for_each_forward_op<'a>(trace: &'a ConvLayerTrace, mut on_op: impl FnMut(TaskId, SrcOp<'a>)) -> usize {
    let geom = trace.geom;
    let oh = trace.out_height();
    let ow = trace.out_width();
    let c = trace.input.channels();
    let h = trace.input.height();
    let mut task = 0;
    for _fi in 0..trace.filters {
        for oy in 0..oh {
            for u in 0..geom.kernel {
                let iy = (oy * geom.stride) as isize - geom.pad as isize + u as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                for ci in 0..c {
                    let row = trace.input.row(ci, iy as usize);
                    if row.nnz() == 0 {
                        continue;
                    }
                    on_op(
                        task,
                        SrcOp {
                            input: row,
                            geom,
                            out_len: ow,
                        },
                    );
                }
            }
            task += 1;
        }
    }
    task
}

/// Visits every MSRC operation of the GTA step.
///
/// Task `(ci, iy)` — one input-gradient row — contains one operation per
/// `(filter, kernel row)` pair whose gradient row reaches it. Rows whose
/// mask is empty produce no operations (the whole row is known-zero).
///
/// Returns the number of tasks (`C × H`). Returns 0 immediately if the
/// layer does not need its input gradient.
pub fn for_each_gta_op<'a>(trace: &'a ConvLayerTrace, mut on_op: impl FnMut(TaskId, MsrcOp<'a>)) -> usize {
    if !trace.needs_input_grad {
        return 0;
    }
    let geom = trace.geom;
    let h = trace.input.height();
    let w = trace.input.width();
    let c = trace.input.channels();
    let oh = trace.dout.height();
    let mut task = 0;
    for ci in 0..c {
        for iy in 0..h {
            let mask = &trace.input_masks[ci * h + iy];
            if mask.count() > 0 {
                // Gradient rows oy with oy*stride - pad + u == iy for some
                // u in [0, K): oy in [(iy + pad - K + 1), (iy + pad)] / stride.
                let lo = (iy + geom.pad).saturating_sub(geom.kernel - 1);
                let hi = iy + geom.pad;
                for fi in 0..trace.filters {
                    for t in lo..=hi {
                        if t % geom.stride != 0 {
                            continue;
                        }
                        let oy = t / geom.stride;
                        if oy >= oh {
                            continue;
                        }
                        let grow = trace.dout.row(fi, oy);
                        if grow.nnz() == 0 {
                            continue;
                        }
                        on_op(
                            task,
                            MsrcOp {
                                grad: grow,
                                mask,
                                geom,
                                out_len: w,
                            },
                        );
                    }
                }
            }
            task += 1;
        }
    }
    task
}

/// Visits every OSRC operation of the GTW step.
///
/// Task `(fi, ci, u)` — one kernel row of `dW` — contains one operation per
/// output row `oy` whose matching input row `iy = oy·s − pad + u` is in
/// bounds, with both operands non-empty.
///
/// Returns the number of tasks (`F × C × K`).
pub fn for_each_gtw_op<'a>(trace: &'a ConvLayerTrace, mut on_op: impl FnMut(TaskId, OsrcOp<'a>)) -> usize {
    let geom = trace.geom;
    let h = trace.input.height();
    let c = trace.input.channels();
    let oh = trace.dout.height();
    let mut task = 0;
    for fi in 0..trace.filters {
        for ci in 0..c {
            for u in 0..geom.kernel {
                for oy in 0..oh {
                    let iy = (oy * geom.stride) as isize - geom.pad as isize + u as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let irow = trace.input.row(ci, iy as usize);
                    let grow = trace.dout.row(fi, oy);
                    if irow.nnz() == 0 || grow.nnz() == 0 {
                        continue;
                    }
                    on_op(
                        task,
                        OsrcOp {
                            input: irow,
                            grad: grow,
                            geom,
                        },
                    );
                }
                task += 1;
            }
        }
    }
    task
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetrain_sparse::rowconv::SparseFeatureMap;
    use sparsetrain_tensor::Tensor3;

    fn trace() -> ConvLayerTrace {
        let geom = ConvGeometry::new(3, 1, 1);
        let input = Tensor3::from_fn(2, 4, 4, |c, y, x| if (c + y + x) % 2 == 0 { 1.0 } else { 0.0 });
        let dout = Tensor3::from_fn(3, 4, 4, |c, y, x| if (c + y * x) % 3 == 0 { 0.5 } else { 0.0 });
        let input_fm = SparseFeatureMap::from_tensor(&input);
        let masks = input_fm.masks();
        ConvLayerTrace {
            name: "t".into(),
            geom,
            filters: 3,
            input: input_fm,
            input_masks: masks,
            dout: SparseFeatureMap::from_tensor(&dout),
            needs_input_grad: true,
        }
    }

    #[test]
    fn forward_task_count_is_f_times_oh() {
        let t = trace();
        let tasks = for_each_forward_op(&t, |_, _| {});
        assert_eq!(tasks, 3 * 4);
    }

    #[test]
    fn forward_ops_are_task_major() {
        let t = trace();
        let mut last = 0;
        for_each_forward_op(&t, |task, _| {
            assert!(task >= last, "tasks must be non-decreasing");
            last = task;
        });
    }

    #[test]
    fn forward_op_count_bounded_by_dense() {
        let t = trace();
        let mut ops = 0;
        for_each_forward_op(&t, |_, _| ops += 1);
        // at most F * Oh * K * C ops
        assert!(ops <= 3 * 4 * 3 * 2);
        assert!(ops > 0);
    }

    #[test]
    fn gta_task_count_is_c_times_h() {
        let t = trace();
        let tasks = for_each_gta_op(&t, |_, _| {});
        assert_eq!(tasks, 2 * 4);
    }

    #[test]
    fn gta_skipped_when_not_needed() {
        let mut t = trace();
        t.needs_input_grad = false;
        let mut ops = 0;
        let tasks = for_each_gta_op(&t, |_, _| ops += 1);
        assert_eq!(tasks, 0);
        assert_eq!(ops, 0);
    }

    #[test]
    fn gtw_task_count_is_f_c_k() {
        let t = trace();
        let tasks = for_each_gtw_op(&t, |_, _| {});
        assert_eq!(tasks, 3 * 2 * 3);
    }

    #[test]
    fn gta_enumeration_covers_exactly_reachable_pairs() {
        // Cross-check the (oy, u) enumeration against a brute-force scan.
        let t = trace();
        let mut got = 0usize;
        for_each_gta_op(&t, |_, _| got += 1);
        let geom = t.geom;
        let mut want = 0usize;
        for ci in 0..t.input.channels() {
            for iy in 0..t.input.height() {
                if t.input_masks[ci * t.input.height() + iy].count() == 0 {
                    continue;
                }
                for fi in 0..t.filters {
                    for oy in 0..t.dout.height() {
                        for u in 0..geom.kernel {
                            let target = (oy * geom.stride) as isize - geom.pad as isize + u as isize;
                            if target == iy as isize && t.dout.row(fi, oy).nnz() > 0 {
                                want += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn stride_two_gta_enumeration_consistent() {
        let geom = ConvGeometry::new(3, 2, 1);
        let input = Tensor3::from_fn(1, 6, 6, |_, y, x| ((y * x) % 2) as f32);
        let oh = geom.output_extent(6);
        let dout = Tensor3::from_fn(2, oh, oh, |_, _, _| 1.0);
        let input_fm = SparseFeatureMap::from_tensor(&input);
        let masks = input_fm.masks();
        let t = ConvLayerTrace {
            name: "s2".into(),
            geom,
            filters: 2,
            input: input_fm,
            input_masks: masks,
            dout: SparseFeatureMap::from_tensor(&dout),
            needs_input_grad: true,
        };
        let mut got = 0usize;
        for_each_gta_op(&t, |_, _| got += 1);
        let mut want = 0usize;
        for ci in 0..1 {
            for iy in 0..6 {
                if t.input_masks[ci * 6 + iy].count() == 0 {
                    continue;
                }
                for _fi in 0..2 {
                    for oy in 0..oh {
                        for u in 0..3 {
                            let target = (oy * 2) as isize - 1 + u as isize;
                            if target == iy as isize {
                                want += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn step_kind_names() {
        assert_eq!(StepKind::Forward.name(), "forward");
        assert_eq!(StepKind::ALL.len(), 3);
    }
}
