//! Functional execution of captured layer traces on a kernel engine.
//!
//! The compiler ([`super::compiler`]) lowers a trace to instruction
//! *metadata*; this module runs the matching *numerics*: given a captured
//! [`ConvLayerTrace`] and the layer's weights, it executes the three
//! training stages through the engine resolved by an
//! [`ExecutionContext`] — the same accumulate-into-scratch hot paths the
//! training framework uses, with zero per-row heap allocation. It is the
//! bridge that lets a compiled program be validated end to end: identical
//! results on every float engine (scalar or parallel), identical op
//! enumeration for the simulator's engine-agnostic cycle accounting.

use super::trace::ConvLayerTrace;
use sparsetrain_sparse::ExecutionContext;
use sparsetrain_tensor::{Tensor3, Tensor4};

/// The numeric results of one conv layer's three training stages.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutedConv {
    /// Forward output (`F × Ho × Ow`).
    pub output: Tensor3,
    /// Input gradient (`C × H × W`), `None` when the layer does not need
    /// its input gradient (first layer).
    pub input_grad: Option<Tensor3>,
    /// Weight gradient (`F × C × K × K`).
    pub weight_grad: Tensor4,
}

/// Executes the Forward, GTA and GTW stages of a captured conv layer on
/// the context's resolved engine with the given `weights` and optional
/// `bias`.
///
/// The GTA stage fuses the trace's forward non-zero masks, exactly as the
/// accelerator (and `Conv2d`'s sparse-rows mode) does.
///
/// # Panics
///
/// Panics if `weights`/`bias` shapes are inconsistent with the trace.
pub fn execute_conv(
    trace: &ConvLayerTrace,
    ctx: &mut ExecutionContext,
    weights: &Tensor4,
    bias: Option<&[f32]>,
) -> ExecutedConv {
    assert_eq!(
        weights.shape(),
        (
            trace.filters,
            trace.input.channels(),
            trace.geom.kernel,
            trace.geom.kernel
        ),
        "weight shape inconsistent with trace"
    );
    // Batch-of-one planned calls: on a planned ("auto") context each stage
    // resolves its engine through the (layer, stage) plan cell keyed by the
    // trace's layer name; on any other context they are the plain
    // per-sample engine calls (the batched defaults execute sample order,
    // so the results are bitwise identical either way).
    let output = ctx
        .forward_batch_for(
            &trace.name,
            std::slice::from_ref(&trace.input),
            weights,
            bias,
            trace.geom,
        )
        .pop()
        .expect("batch of one");
    let input_grad = trace.needs_input_grad.then(|| {
        let mut dins = vec![Tensor3::zeros(
            trace.input.channels(),
            trace.input.height(),
            trace.input.width(),
        )];
        ctx.input_grad_batch_for_into(
            &trace.name,
            std::slice::from_ref(&trace.dout),
            weights,
            trace.geom,
            std::slice::from_ref(&trace.input_masks),
            &mut dins,
        );
        dins.pop().expect("batch of one")
    });
    let (f, c, k, _) = weights.shape();
    let mut weight_grad = Tensor4::zeros(f, c, k, k);
    ctx.weight_grad_batch_for(
        &trace.name,
        std::slice::from_ref(&trace.input),
        std::slice::from_ref(&trace.dout),
        trace.geom,
        &mut weight_grad,
    );
    ExecutedConv {
        output,
        input_grad,
        weight_grad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetrain_sparse::rowconv::SparseFeatureMap;
    use sparsetrain_tensor::conv::ConvGeometry;

    fn trace() -> ConvLayerTrace {
        let geom = ConvGeometry::new(3, 1, 1);
        let input = Tensor3::from_fn(2, 6, 6, |c, y, x| {
            if (c + y + x) % 3 == 0 {
                (c + y) as f32 * 0.5 - x as f32 * 0.25
            } else {
                0.0
            }
        });
        let dout = Tensor3::from_fn(3, 6, 6, |c, y, x| {
            if (c + y * x) % 4 == 0 {
                0.5 - c as f32 * 0.125
            } else {
                0.0
            }
        });
        let fm = SparseFeatureMap::from_tensor(&input);
        let masks = fm.masks();
        ConvLayerTrace {
            name: "t".into(),
            geom,
            filters: 3,
            input: fm,
            input_masks: masks,
            dout: SparseFeatureMap::from_tensor(&dout),
            needs_input_grad: true,
        }
    }

    fn weights() -> Tensor4 {
        Tensor4::from_fn(3, 2, 3, 3, |f, c, u, v| {
            ((f * 27 + c * 9 + u * 3 + v) % 5) as f32 * 0.25 - 0.5
        })
    }

    #[test]
    fn engines_agree_bitwise_on_trace_execution() {
        let t = trace();
        let w = weights();
        let bias = [0.25f32, -0.5, 0.0];
        let scalar = execute_conv(
            &t,
            &mut ExecutionContext::by_name("scalar").unwrap(),
            &w,
            Some(&bias),
        );
        let parallel = execute_conv(
            &t,
            &mut ExecutionContext::by_name("parallel").unwrap(),
            &w,
            Some(&bias),
        );
        assert_eq!(scalar, parallel);
    }

    #[test]
    fn planned_execution_probes_each_stage_and_matches_scalar() {
        let t = trace();
        let w = weights();
        let scalar = execute_conv(&t, &mut ExecutionContext::scalar(), &w, None);
        let mut auto = ExecutionContext::by_name("auto").unwrap();
        // First execution probes and freezes the plan; the second replays
        // it. Both must be bitwise equal to the scalar reference.
        let probed = execute_conv(&t, &mut auto, &w, None);
        assert_eq!(scalar, probed);
        let plan = auto.plan().expect("auto context is planned");
        assert_eq!(plan.len(), 3, "forward, GTA and GTW cells all frozen");
        let replayed = execute_conv(&t, &mut auto, &w, None);
        assert_eq!(scalar, replayed);
    }

    #[test]
    fn first_layer_skips_input_grad() {
        let mut t = trace();
        t.needs_input_grad = false;
        let out = execute_conv(&t, &mut ExecutionContext::scalar(), &weights(), None);
        assert!(out.input_grad.is_none());
        assert!(out.weight_grad.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gta_respects_masks() {
        let t = trace();
        let out = execute_conv(&t, &mut ExecutionContext::scalar(), &weights(), None);
        let din = out.input_grad.expect("input grad");
        for c in 0..2 {
            for y in 0..6 {
                for x in 0..6 {
                    if !t.input_masks[c * 6 + y].contains(x) {
                        assert_eq!(din.get(c, y, x), 0.0, "masked position written");
                    }
                }
            }
        }
    }
}
