//! The "simple compiler": lowers a network trace into an explicit
//! instruction program.
//!
//! The paper drives its simulator through a compiler that converts PyTorch
//! models into internal instructions. [`compile`] is the equivalent here:
//! it materializes the per-task instruction stream of every layer and
//! stage, with the operand sizes the controller needs for dispatch. The
//! simulator itself consumes the lazy visitors in [`super::ops`] (no
//! allocation); the compiled [`Program`] is the inspectable artifact — it
//! is what you would ship to a real device, and its instruction counts are
//! the basis for the static schedule summaries below.

use super::ops::{self, StepKind};
use super::trace::{LayerTrace, NetworkTrace};

/// One 1-D convolution instruction, with the operand metadata the
/// controller dispatches on (sizes, not data — data stays in the buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Index of the layer in the network.
    pub layer: u32,
    /// Which training stage the instruction belongs to.
    pub step: StepKind,
    /// Scheduling task this instruction contributes to (instructions of a
    /// task run back-to-back on one PE).
    pub task: u32,
    /// Kernel size `K` of the row operation.
    pub kernel: u8,
    /// Stride of the row operation.
    pub stride: u8,
    /// Non-zeros of the Port-1 (streamed) operand.
    pub port1_nnz: u32,
    /// Non-zeros of the Port-2 operand (OSRC's second stream; 0 otherwise).
    pub port2_nnz: u32,
    /// Population of the Port-3 mask (MSRC; 0 otherwise).
    pub mask_nnz: u32,
}

/// A compiled instruction program for one network training step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// All instructions, in (layer, stage, task) order.
    pub instrs: Vec<Instr>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of distinct `(layer, step, task)` scheduling tasks.
    pub fn task_count(&self) -> usize {
        let mut count = 0usize;
        let mut last: Option<(u32, StepKind, u32)> = None;
        for i in &self.instrs {
            let key = (i.layer, i.step, i.task);
            if last != Some(key) {
                count += 1;
                last = Some(key);
            }
        }
        count
    }

    /// Instruction count per training stage.
    pub fn instrs_per_step(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for i in &self.instrs {
            let idx = match i.step {
                StepKind::Forward => 0,
                StepKind::Gta => 1,
                StepKind::Gtw => 2,
            };
            counts[idx] += 1;
        }
        counts
    }

    /// Total Port-1 operand traffic (values) the program streams.
    pub fn total_stream_values(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| i.port1_nnz as u64 + i.port2_nnz as u64)
            .sum()
    }
}

/// Compiles a network trace into an instruction program.
///
/// FC layers are costed analytically by the simulator and contribute no row
/// instructions (they have no row structure); only CONV layers lower.
pub fn compile(trace: &NetworkTrace) -> Program {
    let mut program = Program::default();
    for (layer_idx, layer) in trace.layers.iter().enumerate() {
        let LayerTrace::Conv(conv) = layer else {
            continue;
        };
        let layer = layer_idx as u32;
        let kernel = conv.geom.kernel as u8;
        let stride = conv.geom.stride as u8;
        ops::for_each_forward_op(conv, |task, op| {
            program.instrs.push(Instr {
                layer,
                step: StepKind::Forward,
                task: task as u32,
                kernel,
                stride,
                port1_nnz: op.input.nnz() as u32,
                port2_nnz: 0,
                mask_nnz: 0,
            });
        });
        ops::for_each_gta_op(conv, |task, op| {
            program.instrs.push(Instr {
                layer,
                step: StepKind::Gta,
                task: task as u32,
                kernel,
                stride,
                port1_nnz: op.grad.nnz() as u32,
                port2_nnz: 0,
                mask_nnz: op.mask.count() as u32,
            });
        });
        ops::for_each_gtw_op(conv, |task, op| {
            program.instrs.push(Instr {
                layer,
                step: StepKind::Gtw,
                task: task as u32,
                kernel,
                stride,
                port1_nnz: op.input.nnz() as u32,
                port2_nnz: op.grad.nnz() as u32,
                mask_nnz: 0,
            });
        });
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::trace::ConvLayerTrace;
    use sparsetrain_sparse::rowconv::SparseFeatureMap;
    use sparsetrain_tensor::conv::ConvGeometry;
    use sparsetrain_tensor::Tensor3;

    fn trace() -> NetworkTrace {
        let geom = ConvGeometry::new(3, 1, 1);
        let input = Tensor3::from_fn(2, 4, 4, |c, y, x| ((c + y + x) % 2) as f32);
        let dout = Tensor3::from_fn(3, 4, 4, |c, y, x| ((c + y * x) % 3 == 0) as u8 as f32);
        let fm = SparseFeatureMap::from_tensor(&input);
        let masks = fm.masks();
        let mut t = NetworkTrace::new("m", "d");
        t.layers.push(LayerTrace::Conv(ConvLayerTrace {
            name: "c".into(),
            geom,
            filters: 3,
            input: fm,
            input_masks: masks,
            dout: SparseFeatureMap::from_tensor(&dout),
            needs_input_grad: true,
        }));
        t
    }

    #[test]
    fn compiles_all_three_stages() {
        let p = compile(&trace());
        let per_step = p.instrs_per_step();
        assert!(per_step[0] > 0, "no forward instructions");
        assert!(per_step[1] > 0, "no GTA instructions");
        assert!(per_step[2] > 0, "no GTW instructions");
        assert_eq!(p.len(), per_step.iter().sum::<usize>());
    }

    #[test]
    fn instruction_counts_match_visitors() {
        let t = trace();
        let p = compile(&t);
        let conv = match &t.layers[0] {
            LayerTrace::Conv(c) => c,
            _ => unreachable!(),
        };
        let mut fwd = 0usize;
        ops::for_each_forward_op(conv, |_, _| fwd += 1);
        assert_eq!(p.instrs_per_step()[0], fwd);
    }

    #[test]
    fn task_grouping_is_contiguous() {
        let p = compile(&trace());
        // Within one (layer, step), tasks must be non-decreasing — the
        // controller relies on this to keep a task on one PE.
        let mut last: Option<(u32, StepKind, u32)> = None;
        for i in &p.instrs {
            if let Some((l, s, t)) = last {
                if l == i.layer && s == i.step {
                    assert!(i.task >= t, "task order regressed");
                }
            }
            last = Some((i.layer, i.step, i.task));
        }
        assert!(p.task_count() > 0);
    }

    #[test]
    fn osrc_instrs_have_two_streams() {
        let p = compile(&trace());
        for i in p.instrs.iter().filter(|i| i.step == StepKind::Gtw) {
            assert!(i.port1_nnz > 0 && i.port2_nnz > 0);
        }
        for i in p.instrs.iter().filter(|i| i.step != StepKind::Gtw) {
            assert_eq!(i.port2_nnz, 0);
        }
    }

    #[test]
    fn empty_network_compiles_empty() {
        let p = compile(&NetworkTrace::new("e", "d"));
        assert!(p.is_empty());
        assert_eq!(p.total_stream_values(), 0);
    }
}
