//! Captured per-layer training-step traces.
//!
//! A trace records exactly the information the accelerator's behaviour
//! depends on: the sparsity patterns (with values) of each CONV layer's
//! input activations and output gradients, the forward masks, and the layer
//! geometry. Traces are captured by the training framework during a real
//! training step, so the simulated sparsity is the genuine article — both
//! the natural sparsity from ReLU/MaxPool and the artificial sparsity from
//! gradient pruning.

use sparsetrain_sparse::rowconv::SparseFeatureMap;
use sparsetrain_sparse::RowMask;
use sparsetrain_tensor::conv::ConvGeometry;

/// Trace of one convolutional layer for one training sample.
#[derive(Debug, Clone)]
pub struct ConvLayerTrace {
    /// Human-readable layer name (e.g. `"conv2"`).
    pub name: String,
    /// Convolution geometry.
    pub geom: ConvGeometry,
    /// Number of filters `F` (output channels).
    pub filters: usize,
    /// Input activations `I` (sparse after the upstream ReLU/MaxPool).
    pub input: SparseFeatureMap,
    /// Per-`(channel, row)` non-zero masks of `I`, channel-major — the
    /// masks MSRC uses in the GTA step. Empty if the layer's input gradient
    /// is never needed (first layer).
    pub input_masks: Vec<RowMask>,
    /// Output activation gradients `dO` (sparse naturally and/or after
    /// pruning).
    pub dout: SparseFeatureMap,
    /// Whether the GTA step must be executed for this layer (false for the
    /// first layer of the network, whose input gradient is unused).
    pub needs_input_grad: bool,
}

impl ConvLayerTrace {
    /// Output spatial height `Ho`.
    pub fn out_height(&self) -> usize {
        self.geom.output_extent(self.input.height())
    }

    /// Output spatial width `Wo`.
    pub fn out_width(&self) -> usize {
        self.geom.output_extent(self.input.width())
    }

    /// Density of the input activations.
    pub fn input_density(&self) -> f64 {
        self.input.density()
    }

    /// Density of the output gradients.
    pub fn dout_density(&self) -> f64 {
        self.dout.density()
    }

    /// Dense MAC count of the Forward step (also of GTA; GTW has the same
    /// asymptotic count) — the work a dense accelerator must do.
    pub fn dense_macs(&self) -> u64 {
        self.geom.dense_macs(
            self.input.channels(),
            self.input.height(),
            self.input.width(),
            self.filters,
        )
    }

    /// Checks internal consistency of the trace.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.dout.channels() != self.filters {
            return Err(format!(
                "{}: dout channels {} != filters {}",
                self.name,
                self.dout.channels(),
                self.filters
            ));
        }
        if self.dout.height() != self.out_height() || self.dout.width() != self.out_width() {
            return Err(format!(
                "{}: dout {}x{} inconsistent with geometry ({}x{})",
                self.name,
                self.dout.height(),
                self.dout.width(),
                self.out_height(),
                self.out_width()
            ));
        }
        if self.needs_input_grad && self.input_masks.len() != self.input.channels() * self.input.height() {
            return Err(format!(
                "{}: {} masks for {} (channel, row) pairs",
                self.name,
                self.input_masks.len(),
                self.input.channels() * self.input.height()
            ));
        }
        Ok(())
    }
}

/// Trace of one fully-connected layer for one training sample.
///
/// FC layers are costed analytically (a matrix–vector product has no row
/// structure to exploit); their sparsity still matters, since the input
/// vector is post-ReLU.
#[derive(Debug, Clone)]
pub struct FcLayerTrace {
    /// Human-readable layer name.
    pub name: String,
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Non-zeros of the input vector.
    pub input_nnz: usize,
    /// Non-zeros of the output-gradient vector.
    pub dout_nnz: usize,
    /// Non-zeros of the forward input mask (bounds the GTA output).
    pub mask_nnz: usize,
    /// Whether the GTA step is required.
    pub needs_input_grad: bool,
}

impl FcLayerTrace {
    /// Dense MAC count of the forward matrix–vector product.
    pub fn dense_macs(&self) -> u64 {
        self.in_features as u64 * self.out_features as u64
    }

    /// Input-vector density.
    pub fn input_density(&self) -> f64 {
        if self.in_features == 0 {
            1.0
        } else {
            self.input_nnz as f64 / self.in_features as f64
        }
    }

    /// Output-gradient density.
    pub fn dout_density(&self) -> f64 {
        if self.out_features == 0 {
            1.0
        } else {
            self.dout_nnz as f64 / self.out_features as f64
        }
    }
}

/// One layer of a network trace.
#[derive(Debug, Clone)]
pub enum LayerTrace {
    /// A convolutional layer, simulated at row-operation granularity.
    Conv(ConvLayerTrace),
    /// A fully-connected layer, costed analytically.
    Fc(FcLayerTrace),
}

impl LayerTrace {
    /// The layer's name.
    pub fn name(&self) -> &str {
        match self {
            LayerTrace::Conv(t) => &t.name,
            LayerTrace::Fc(t) => &t.name,
        }
    }

    /// Dense MAC count of the forward pass.
    pub fn dense_macs(&self) -> u64 {
        match self {
            LayerTrace::Conv(t) => t.dense_macs(),
            LayerTrace::Fc(t) => t.dense_macs(),
        }
    }
}

/// The full per-sample trace of one training step of a network.
#[derive(Debug, Clone, Default)]
pub struct NetworkTrace {
    /// Network name (e.g. `"alexnet"`).
    pub model: String,
    /// Dataset name the trace was captured on.
    pub dataset: String,
    /// Per-layer traces, in forward order.
    pub layers: Vec<LayerTrace>,
}

impl NetworkTrace {
    /// Creates an empty trace for a named model/dataset pair.
    pub fn new(model: impl Into<String>, dataset: impl Into<String>) -> Self {
        Self {
            model: model.into(),
            dataset: dataset.into(),
            layers: Vec::new(),
        }
    }

    /// Total dense forward MACs across all layers.
    pub fn dense_macs(&self) -> u64 {
        self.layers.iter().map(LayerTrace::dense_macs).sum()
    }

    /// Mean input-activation density over CONV layers (weighted by size).
    pub fn mean_input_density(&self) -> f64 {
        let mut nnz = 0usize;
        let mut total = 0usize;
        for l in &self.layers {
            if let LayerTrace::Conv(t) = l {
                nnz += t.input.nnz();
                total += t.input.channels() * t.input.height() * t.input.width();
            }
        }
        if total == 0 {
            1.0
        } else {
            nnz as f64 / total as f64
        }
    }

    /// Mean output-gradient density over CONV layers (weighted by size).
    pub fn mean_dout_density(&self) -> f64 {
        let mut nnz = 0usize;
        let mut total = 0usize;
        for l in &self.layers {
            if let LayerTrace::Conv(t) = l {
                nnz += t.dout.nnz();
                total += t.dout.channels() * t.dout.height() * t.dout.width();
            }
        }
        if total == 0 {
            1.0
        } else {
            nnz as f64 / total as f64
        }
    }

    /// Validates every CONV layer trace.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure.
    pub fn validate(&self) -> Result<(), String> {
        for l in &self.layers {
            if let LayerTrace::Conv(t) = l {
                t.validate()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetrain_tensor::Tensor3;

    pub(crate) fn tiny_conv_trace() -> ConvLayerTrace {
        let geom = ConvGeometry::new(3, 1, 1);
        let input = Tensor3::from_fn(2, 4, 4, |c, y, x| {
            if (c + y + x) % 2 == 0 {
                (c + y + x + 1) as f32
            } else {
                0.0
            }
        });
        let dout = Tensor3::from_fn(
            3,
            4,
            4,
            |c, y, x| {
                if (c + 2 * y + x) % 3 == 0 {
                    0.5
                } else {
                    0.0
                }
            },
        );
        let input_fm = SparseFeatureMap::from_tensor(&input);
        let masks = input_fm.masks();
        ConvLayerTrace {
            name: "tiny".to_string(),
            geom,
            filters: 3,
            input: input_fm,
            input_masks: masks,
            dout: SparseFeatureMap::from_tensor(&dout),
            needs_input_grad: true,
        }
    }

    #[test]
    fn conv_trace_validates() {
        let t = tiny_conv_trace();
        assert!(t.validate().is_ok());
        assert_eq!(t.out_height(), 4);
        assert_eq!(t.dense_macs(), 4 * 4 * 3 * 2 * 9);
    }

    #[test]
    fn conv_trace_detects_bad_dout() {
        let mut t = tiny_conv_trace();
        t.filters = 5;
        assert!(t.validate().is_err());
    }

    #[test]
    fn conv_trace_detects_missing_masks() {
        let mut t = tiny_conv_trace();
        t.input_masks.pop();
        assert!(t.validate().is_err());
    }

    #[test]
    fn fc_trace_densities() {
        let t = FcLayerTrace {
            name: "fc".into(),
            in_features: 100,
            out_features: 10,
            input_nnz: 40,
            dout_nnz: 10,
            mask_nnz: 40,
            needs_input_grad: true,
        };
        assert_eq!(t.input_density(), 0.4);
        assert_eq!(t.dout_density(), 1.0);
        assert_eq!(t.dense_macs(), 1000);
    }

    #[test]
    fn network_trace_aggregates() {
        let mut net = NetworkTrace::new("m", "d");
        net.layers.push(LayerTrace::Conv(tiny_conv_trace()));
        assert!(net.validate().is_ok());
        assert!(net.dense_macs() > 0);
        let d = net.mean_input_density();
        assert!(d > 0.0 && d < 1.0);
    }
}
