//! Textual assembly for instruction programs.
//!
//! The binary format in [`super::encoding`] is what a device consumes; this
//! module is what a human reads. [`disassemble`] renders a [`Program`] as
//! one mnemonic line per instruction, and [`assemble`] parses the same
//! syntax back. Round-tripping is lossless, which the test-suite and the
//! `isa_inspect` example rely on.
//!
//! # Syntax
//!
//! ```text
//! ; comment — everything after ';' is ignored
//! src   layer=0 task=12 k=3 s=1 p1=17
//! msrc  layer=0 task=13 k=3 s=1 p1=9  mask=22
//! osrc  layer=1 task=0  k=5 s=2 p1=30 p2=11
//! ```
//!
//! Fields may appear in any order; omitted populations default to zero.
//! `k` (kernel) and `s` (stride) are required and must be non-zero.
//!
//! # Example
//!
//! ```
//! use sparsetrain_core::dataflow::asm::{assemble, disassemble};
//!
//! let text = "src layer=0 task=0 k=3 s=1 p1=5\n";
//! let program = assemble(text)?;
//! let listing = disassemble(&program);
//! assert!(listing.contains("src   layer=0 task=0 k=3 s=1 p1=5"));
//! assert_eq!(assemble(&listing)?.instrs, program.instrs);
//! # Ok::<(), sparsetrain_core::dataflow::asm::AsmError>(())
//! ```

use super::compiler::{Instr, Program};
use super::ops::StepKind;
use std::error::Error;
use std::fmt;

/// Error parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong on that line.
    pub kind: AsmErrorKind,
}

/// The ways a line of assembly can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// The mnemonic is not `src`, `msrc` or `osrc`.
    UnknownMnemonic(String),
    /// A token is not of the form `key=value`.
    MalformedField(String),
    /// A field key is not recognised.
    UnknownField(String),
    /// A field value is not a valid integer or overflows its width.
    BadValue {
        /// The field key.
        key: String,
        /// The raw value text.
        value: String,
    },
    /// The same field appears twice.
    DuplicateField(String),
    /// A required field (`k` or `s`) is missing or zero.
    MissingField(&'static str),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::MalformedField(t) => write!(f, "expected key=value, found `{t}`"),
            AsmErrorKind::UnknownField(k) => write!(f, "unknown field `{k}`"),
            AsmErrorKind::BadValue { key, value } => {
                write!(f, "field `{key}` has invalid value `{value}`")
            }
            AsmErrorKind::DuplicateField(k) => write!(f, "field `{k}` given twice"),
            AsmErrorKind::MissingField(k) => write!(f, "required field `{k}` missing or zero"),
        }
    }
}

impl Error for AsmError {}

fn mnemonic(step: StepKind) -> &'static str {
    match step {
        StepKind::Forward => "src",
        StepKind::Gta => "msrc",
        StepKind::Gtw => "osrc",
    }
}

/// Renders one instruction as a line of assembly (no trailing newline).
pub fn format_instr(instr: &Instr) -> String {
    let mut line = format!(
        "{:<5} layer={} task={} k={} s={} p1={}",
        mnemonic(instr.step),
        instr.layer,
        instr.task,
        instr.kernel,
        instr.stride,
        instr.port1_nnz
    );
    if instr.port2_nnz != 0 {
        line.push_str(&format!(" p2={}", instr.port2_nnz));
    }
    if instr.mask_nnz != 0 {
        line.push_str(&format!(" mask={}", instr.mask_nnz));
    }
    line
}

/// Renders a whole program, one instruction per line, with a header
/// comment carrying the instruction count.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    if !program.is_empty() {
        out.push_str(&format!(
            "; sparsetrain program, {} instructions\n",
            program.len()
        ));
    }
    for instr in &program.instrs {
        out.push_str(&format_instr(instr));
        out.push('\n');
    }
    out
}

struct LineParser<'a> {
    line_no: usize,
    layer: Option<u32>,
    task: Option<u32>,
    kernel: Option<u8>,
    stride: Option<u8>,
    p1: Option<u32>,
    p2: Option<u32>,
    mask: Option<u32>,
    _src: &'a str,
}

impl<'a> LineParser<'a> {
    fn err(&self, kind: AsmErrorKind) -> AsmError {
        AsmError {
            line: self.line_no,
            kind,
        }
    }

    fn check_fresh(&self, slot_is_some: bool, key: &str) -> Result<(), AsmError> {
        if slot_is_some {
            return Err(self.err(AsmErrorKind::DuplicateField(key.to_string())));
        }
        Ok(())
    }

    fn parse_u32(&self, key: &str, value: &str) -> Result<u32, AsmError> {
        value.parse::<u32>().map_err(|_| {
            self.err(AsmErrorKind::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            })
        })
    }

    fn parse_u8(&self, key: &str, value: &str) -> Result<u8, AsmError> {
        value.parse::<u8>().map_err(|_| {
            self.err(AsmErrorKind::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            })
        })
    }

    fn field(&mut self, token: &str) -> Result<(), AsmError> {
        let Some((key, value)) = token.split_once('=') else {
            return Err(self.err(AsmErrorKind::MalformedField(token.to_string())));
        };
        match key {
            "layer" => {
                self.check_fresh(self.layer.is_some(), key)?;
                self.layer = Some(self.parse_u32(key, value)?);
            }
            "task" => {
                self.check_fresh(self.task.is_some(), key)?;
                self.task = Some(self.parse_u32(key, value)?);
            }
            "k" => {
                self.check_fresh(self.kernel.is_some(), key)?;
                self.kernel = Some(self.parse_u8(key, value)?);
            }
            "s" => {
                self.check_fresh(self.stride.is_some(), key)?;
                self.stride = Some(self.parse_u8(key, value)?);
            }
            "p1" => {
                self.check_fresh(self.p1.is_some(), key)?;
                self.p1 = Some(self.parse_u32(key, value)?);
            }
            "p2" => {
                self.check_fresh(self.p2.is_some(), key)?;
                self.p2 = Some(self.parse_u32(key, value)?);
            }
            "mask" => {
                self.check_fresh(self.mask.is_some(), key)?;
                self.mask = Some(self.parse_u32(key, value)?);
            }
            other => return Err(self.err(AsmErrorKind::UnknownField(other.to_string()))),
        }
        Ok(())
    }

    fn finish(self, step: StepKind) -> Result<Instr, AsmError> {
        let kernel = match self.kernel {
            Some(k) if k > 0 => k,
            _ => return Err(self.err(AsmErrorKind::MissingField("k"))),
        };
        let stride = match self.stride {
            Some(s) if s > 0 => s,
            _ => return Err(self.err(AsmErrorKind::MissingField("s"))),
        };
        Ok(Instr {
            layer: self.layer.unwrap_or(0),
            step,
            task: self.task.unwrap_or(0),
            kernel,
            stride,
            port1_nnz: self.p1.unwrap_or(0),
            port2_nnz: self.p2.unwrap_or(0),
            mask_nnz: self.mask.unwrap_or(0),
        })
    }
}

/// Parses one line of assembly (comments and blank lines yield `None`).
///
/// # Errors
///
/// Returns an [`AsmError`] tagged with `line_no` on malformed input.
pub fn parse_line(line: &str, line_no: usize) -> Result<Option<Instr>, AsmError> {
    let code = line.split(';').next().unwrap_or("").trim();
    if code.is_empty() {
        return Ok(None);
    }
    let mut tokens = code.split_whitespace();
    let mnemonic = tokens.next().expect("non-empty code has a first token");
    let step = match mnemonic {
        "src" => StepKind::Forward,
        "msrc" => StepKind::Gta,
        "osrc" => StepKind::Gtw,
        other => {
            return Err(AsmError {
                line: line_no,
                kind: AsmErrorKind::UnknownMnemonic(other.to_string()),
            })
        }
    };
    let mut parser = LineParser {
        line_no,
        layer: None,
        task: None,
        kernel: None,
        stride: None,
        p1: None,
        p2: None,
        mask: None,
        _src: code,
    };
    for token in tokens {
        parser.field(token)?;
    }
    parser.finish(step).map(Some)
}

/// Parses a whole assembly listing into a program.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, tagged with its 1-based
/// line number.
pub fn assemble(text: &str) -> Result<Program, AsmError> {
    let mut program = Program::default();
    for (idx, line) in text.lines().enumerate() {
        if let Some(instr) = parse_line(line, idx + 1)? {
            program.instrs.push(instr);
        }
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instr(step: StepKind) -> Instr {
        Instr {
            layer: 3,
            step,
            task: 17,
            kernel: 3,
            stride: 1,
            port1_nnz: 40,
            port2_nnz: if step == StepKind::Gtw { 12 } else { 0 },
            mask_nnz: if step == StepKind::Gta { 8 } else { 0 },
        }
    }

    #[test]
    fn single_line_roundtrip() {
        for step in StepKind::ALL {
            let i = instr(step);
            let line = format_instr(&i);
            let parsed = parse_line(&line, 1).unwrap().unwrap();
            assert_eq!(parsed, i, "line was: {line}");
        }
    }

    #[test]
    fn program_roundtrip() {
        let mut p = Program::default();
        for step in StepKind::ALL {
            for t in 0..5 {
                let mut i = instr(step);
                i.task = t;
                p.instrs.push(i);
            }
        }
        let text = disassemble(&p);
        let back = assemble(&text).unwrap();
        assert_eq!(back.instrs, p.instrs);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "\n; a comment\n  \nsrc k=3 s=1 p1=2 ; trailing\n";
        let p = assemble(text).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.instrs[0].port1_nnz, 2);
    }

    #[test]
    fn fields_in_any_order() {
        let a = parse_line("osrc p2=4 k=5 p1=9 s=2 task=1 layer=2", 1)
            .unwrap()
            .unwrap();
        assert_eq!(a.kernel, 5);
        assert_eq!(a.stride, 2);
        assert_eq!(a.port1_nnz, 9);
        assert_eq!(a.port2_nnz, 4);
        assert_eq!(a.layer, 2);
        assert_eq!(a.task, 1);
    }

    #[test]
    fn unknown_mnemonic_errors() {
        let e = assemble("frobnicate k=1 s=1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn missing_required_fields_error() {
        assert!(matches!(
            assemble("src p1=3 s=1").unwrap_err().kind,
            AsmErrorKind::MissingField("k")
        ));
        assert!(matches!(
            assemble("src p1=3 k=3").unwrap_err().kind,
            AsmErrorKind::MissingField("s")
        ));
        // Zero counts as missing for k and s.
        assert!(matches!(
            assemble("src k=0 s=1").unwrap_err().kind,
            AsmErrorKind::MissingField("k")
        ));
    }

    #[test]
    fn malformed_and_duplicate_fields_error() {
        assert!(matches!(
            assemble("src k=3 s=1 banana").unwrap_err().kind,
            AsmErrorKind::MalformedField(_)
        ));
        assert!(matches!(
            assemble("src k=3 s=1 k=5").unwrap_err().kind,
            AsmErrorKind::DuplicateField(_)
        ));
        assert!(matches!(
            assemble("src k=3 s=1 wat=5").unwrap_err().kind,
            AsmErrorKind::UnknownField(_)
        ));
        assert!(matches!(
            assemble("src k=three s=1").unwrap_err().kind,
            AsmErrorKind::BadValue { .. }
        ));
    }

    #[test]
    fn error_line_numbers_are_one_based() {
        let text = "src k=3 s=1\n\nbad k=3 s=1\n";
        assert_eq!(assemble(text).unwrap_err().line, 3);
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = assemble("nope").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
