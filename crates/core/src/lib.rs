//! The paper's primary contribution: stochastic activation-gradient pruning
//! and the 1-D convolution training dataflow.
//!
//! * [`prune`] — §III: the layer-wise stochastic pruning algorithm with
//!   normal-distribution threshold determination and FIFO-based threshold
//!   prediction (Algorithm 1 of the paper).
//! * [`dataflow`] — §IV: layer traces and the decomposition of the three
//!   training stages (Forward / GTA / GTW) into SRC / MSRC / OSRC row
//!   operations, plus the "simple compiler" that schedules them.
//!
//! # Example: prune a stream of gradient batches
//!
//! ```
//! use sparsetrain_core::prune::{BatchStream, LayerPruner, PruneConfig};
//! use rand::stream::StreamKey;
//!
//! let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 4));
//! let seed = StreamKey::new(1);
//! for batch in 0..10u64 {
//!     let mut grads: Vec<f32> = (0..512)
//!         .map(|i| ((i * 31 + batch as usize * 7) % 101) as f32 / 1000.0 - 0.05)
//!         .collect();
//!     // One counter-based stream per batch: deterministic at any thread
//!     // count, on any kernel engine.
//!     pruner.prune_batch(&mut grads, &BatchStream::contiguous(seed.derive(batch)));
//! }
//! // After the FIFO warms up, batches are substantially sparsified.
//! assert!(pruner.stats().last_density().unwrap() < 0.6);
//! ```

pub mod dataflow;
pub mod prune;
