//! Threshold predictors and their evaluation.
//!
//! The paper predicts each batch's pruning threshold as the mean of a FIFO
//! of recently *determined* thresholds (§III-B, Fig. 5). That is one point
//! in a design space: any causal filter over the determined-threshold
//! sequence is a valid predictor, trading smoothing against tracking lag.
//! This module abstracts the predictor behind a trait, provides the
//! paper's FIFO, an exponential-moving-average variant and a last-value
//! baseline, and includes a replay harness ([`evaluate_predictor`]) that
//! scores any predictor against a recorded threshold sequence — the
//! `ablation` benches and the FIFO-depth sweep are built on it.
//!
//! # Example
//!
//! ```
//! use sparsetrain_core::prune::predictor::{
//!     evaluate_predictor, EmaPredictor, FifoPredictor, ThresholdPredictor,
//! };
//!
//! let taus: Vec<f64> = (0..32).map(|i| 0.1 + 0.001 * i as f64).collect();
//! let fifo = evaluate_predictor(&mut FifoPredictor::new(4), &taus);
//! let ema = evaluate_predictor(&mut EmaPredictor::new(0.5), &taus);
//! // On a slow ramp both predictors track tightly.
//! assert!(fifo.mean_abs_rel_error().unwrap() < 0.05);
//! assert!(ema.mean_abs_rel_error().unwrap() < 0.05);
//! ```

use super::fifo::ThresholdFifo;

/// A causal filter over the determined-threshold sequence.
///
/// After each batch the trainer determines the batch's exact threshold and
/// feeds it to [`observe`](ThresholdPredictor::observe); before each batch
/// it asks for [`predict`](ThresholdPredictor::predict). A `None`
/// prediction means "not warmed up — do not prune this batch", exactly the
/// cold-start behaviour of Algorithm 1.
pub trait ThresholdPredictor {
    /// Feeds one determined threshold into the filter.
    fn observe(&mut self, tau: f64);

    /// The threshold to apply to the next batch, or `None` while cold.
    fn predict(&self) -> Option<f64>;

    /// Returns the filter to its cold state.
    fn reset(&mut self);

    /// Short display name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's predictor: mean of the last `N_F` determined thresholds,
/// cold until the FIFO fills.
#[derive(Debug, Clone)]
pub struct FifoPredictor {
    fifo: ThresholdFifo,
}

impl FifoPredictor {
    /// Creates a FIFO predictor of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        Self {
            fifo: ThresholdFifo::new(depth),
        }
    }

    /// The FIFO depth `N_F`.
    pub fn depth(&self) -> usize {
        self.fifo.depth()
    }
}

impl ThresholdPredictor for FifoPredictor {
    fn observe(&mut self, tau: f64) {
        self.fifo.push(tau);
    }

    fn predict(&self) -> Option<f64> {
        self.fifo.predict()
    }

    fn reset(&mut self) {
        self.fifo.reset();
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Exponential moving average: `τ̂ ← (1−α)·τ̂ + α·τ`. Warm after the first
/// observation, so it prunes `N_F − 1` batches earlier than the FIFO at
/// the cost of less smoothing.
#[derive(Debug, Clone)]
pub struct EmaPredictor {
    alpha: f64,
    state: Option<f64>,
}

impl EmaPredictor {
    /// Creates an EMA predictor with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, state: None }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl ThresholdPredictor for EmaPredictor {
    fn observe(&mut self, tau: f64) {
        self.state = Some(match self.state {
            Some(prev) => (1.0 - self.alpha) * prev + self.alpha * tau,
            None => tau,
        });
    }

    fn predict(&self) -> Option<f64> {
        self.state
    }

    fn reset(&mut self) {
        self.state = None;
    }

    fn name(&self) -> &'static str {
        "ema"
    }
}

/// The trivial predictor: next threshold = last determined threshold.
/// Equivalent to a depth-1 FIFO; the reference point every filter must
/// beat on noisy sequences.
#[derive(Debug, Clone, Default)]
pub struct LastValuePredictor {
    state: Option<f64>,
}

impl LastValuePredictor {
    /// Creates a cold last-value predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ThresholdPredictor for LastValuePredictor {
    fn observe(&mut self, tau: f64) {
        self.state = Some(tau);
    }

    fn predict(&self) -> Option<f64> {
        self.state
    }

    fn reset(&mut self) {
        self.state = None;
    }

    fn name(&self) -> &'static str {
        "last"
    }
}

/// Accuracy of a predictor replayed over a determined-threshold sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredictionReport {
    /// Batches for which the predictor was warm and a true threshold
    /// existed to compare against.
    pub scored: usize,
    /// Batches skipped while cold.
    pub cold: usize,
    /// Σ |τ̂ − τ| over scored batches.
    pub abs_error_sum: f64,
    /// Σ |τ̂ − τ| / τ over scored batches (τ > 0).
    pub rel_error_sum: f64,
    /// Largest single relative error observed.
    pub max_rel_error: f64,
}

impl PredictionReport {
    /// Mean absolute error, if any batch was scored.
    pub fn mean_abs_error(&self) -> Option<f64> {
        (self.scored > 0).then(|| self.abs_error_sum / self.scored as f64)
    }

    /// Mean absolute *relative* error, if any batch was scored.
    pub fn mean_abs_rel_error(&self) -> Option<f64> {
        (self.scored > 0).then(|| self.rel_error_sum / self.scored as f64)
    }
}

/// Replays a recorded sequence of determined thresholds through
/// `predictor`, scoring each warm prediction against the threshold that
/// batch actually determined — the quantity the hardware would have used
/// had it been able to look ahead.
pub fn evaluate_predictor<P: ThresholdPredictor + ?Sized>(
    predictor: &mut P,
    determined: &[f64],
) -> PredictionReport {
    let mut report = PredictionReport::default();
    for &tau in determined {
        match predictor.predict() {
            Some(hat) if tau > 0.0 => {
                let abs = (hat - tau).abs();
                let rel = abs / tau;
                report.scored += 1;
                report.abs_error_sum += abs;
                report.rel_error_sum += rel;
                report.max_rel_error = report.max_rel_error.max(rel);
            }
            Some(_) => report.scored += 1,
            None => report.cold += 1,
        }
        predictor.observe(tau);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_matches_paper_fifo_semantics() {
        let mut p = FifoPredictor::new(3);
        assert_eq!(p.predict(), None);
        p.observe(1.0);
        p.observe(2.0);
        assert_eq!(p.predict(), None, "cold until depth observations");
        p.observe(3.0);
        assert_eq!(p.predict(), Some(2.0));
        p.observe(4.0); // evicts 1.0
        assert_eq!(p.predict(), Some(3.0));
    }

    #[test]
    fn ema_warms_after_one_observation() {
        let mut p = EmaPredictor::new(0.5);
        assert_eq!(p.predict(), None);
        p.observe(2.0);
        assert_eq!(p.predict(), Some(2.0));
        p.observe(4.0);
        assert_eq!(p.predict(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ema_rejects_zero_alpha() {
        let _ = EmaPredictor::new(0.0);
    }

    #[test]
    fn last_value_echoes() {
        let mut p = LastValuePredictor::new();
        assert_eq!(p.predict(), None);
        p.observe(0.7);
        assert_eq!(p.predict(), Some(0.7));
        p.observe(0.1);
        assert_eq!(p.predict(), Some(0.1));
    }

    #[test]
    fn reset_returns_all_predictors_to_cold() {
        let mut fifo = FifoPredictor::new(2);
        let mut ema = EmaPredictor::new(0.3);
        let mut last = LastValuePredictor::new();
        for tau in [0.5, 0.6] {
            fifo.observe(tau);
            ema.observe(tau);
            last.observe(tau);
        }
        fifo.reset();
        ema.reset();
        last.reset();
        assert_eq!(fifo.predict(), None);
        assert_eq!(ema.predict(), None);
        assert_eq!(last.predict(), None);
    }

    #[test]
    fn evaluation_counts_cold_batches() {
        let taus = [1.0, 1.0, 1.0, 1.0];
        let r = evaluate_predictor(&mut FifoPredictor::new(3), &taus);
        assert_eq!(r.cold, 3);
        assert_eq!(r.scored, 1);
        assert_eq!(r.mean_abs_error(), Some(0.0));
    }

    #[test]
    fn constant_sequence_is_predicted_exactly() {
        let taus = vec![0.25; 20];
        for report in [
            evaluate_predictor(&mut FifoPredictor::new(4), &taus),
            evaluate_predictor(&mut EmaPredictor::new(0.2), &taus),
            evaluate_predictor(&mut LastValuePredictor::new(), &taus),
        ] {
            assert_eq!(report.mean_abs_rel_error(), Some(0.0));
            assert_eq!(report.max_rel_error, 0.0);
        }
    }

    #[test]
    fn deeper_fifo_smooths_alternating_noise_worse_than_it_tracks_trends() {
        // Alternating sequence: a deep FIFO averages it out (small error),
        // last-value is maximally wrong every batch.
        let taus: Vec<f64> = (0..64).map(|i| if i % 2 == 0 { 0.9 } else { 1.1 }).collect();
        let deep = evaluate_predictor(&mut FifoPredictor::new(8), &taus);
        let last = evaluate_predictor(&mut LastValuePredictor::new(), &taus);
        assert!(
            deep.mean_abs_rel_error().unwrap() < last.mean_abs_rel_error().unwrap(),
            "deep FIFO should beat last-value on alternating noise"
        );

        // Steep ramp: last-value lags one step, the deep FIFO lags ~4.
        let ramp: Vec<f64> = (1..64).map(|i| i as f64).collect();
        let deep = evaluate_predictor(&mut FifoPredictor::new(8), &ramp);
        let last = evaluate_predictor(&mut LastValuePredictor::new(), &ramp);
        assert!(
            last.mean_abs_rel_error().unwrap() < deep.mean_abs_rel_error().unwrap(),
            "last-value should beat deep FIFO on a steep ramp"
        );
    }

    #[test]
    fn trait_objects_work() {
        let mut predictors: Vec<Box<dyn ThresholdPredictor>> = vec![
            Box::new(FifoPredictor::new(4)),
            Box::new(EmaPredictor::new(0.4)),
            Box::new(LastValuePredictor::new()),
        ];
        let taus = [0.2, 0.21, 0.19, 0.2, 0.22, 0.2];
        for p in predictors.iter_mut() {
            let r = evaluate_predictor(p.as_mut(), &taus);
            assert!(r.scored + r.cold == taus.len());
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn zero_threshold_batches_are_scored_without_error_contribution() {
        let taus = [0.5, 0.0, 0.5];
        let r = evaluate_predictor(&mut LastValuePredictor::new(), &taus);
        assert_eq!(r.scored, 2);
        assert_eq!(r.cold, 1);
    }
}
