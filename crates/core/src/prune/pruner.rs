//! The per-layer pruning state machine — Algorithm 1 of the paper.

use super::fifo::ThresholdFifo;
use super::stochastic::{prune_slice, PruneOutcome};
use super::threshold::{determine_threshold, sigma_hat};
use rand::Rng;

/// Configuration of the layer-wise gradient pruner.
///
/// ```
/// use sparsetrain_core::prune::PruneConfig;
/// let cfg = PruneConfig::new(0.9, 4);
/// assert_eq!(cfg.target_sparsity, 0.9);
/// assert_eq!(cfg.fifo_depth, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneConfig {
    /// Target fraction `p` of gradients to prune, in `[0, 1)`.
    pub target_sparsity: f64,
    /// FIFO depth `N_F` for threshold prediction.
    pub fifo_depth: usize,
}

impl PruneConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `target_sparsity ∉ [0, 1)` or `fifo_depth == 0`.
    pub fn new(target_sparsity: f64, fifo_depth: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&target_sparsity),
            "target sparsity must be in [0, 1), got {target_sparsity}"
        );
        assert!(fifo_depth > 0, "FIFO depth must be positive");
        Self {
            target_sparsity,
            fifo_depth,
        }
    }

    /// The paper's typical setting: `p = 0.9`, `N_F = 4`.
    pub fn paper_default() -> Self {
        Self::new(0.9, 4)
    }

    /// A disabled pruner (`p = 0`): batches pass through unchanged but
    /// statistics are still collected — this is the dense baseline.
    pub fn disabled() -> Self {
        Self {
            target_sparsity: 0.0,
            fifo_depth: 1,
        }
    }
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Running statistics reported by a [`LayerPruner`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PruneStats {
    /// Batches processed so far.
    pub batches: usize,
    /// Outcome of the most recent batch.
    pub last_outcome: Option<PruneOutcome>,
    /// Density (non-zero fraction) of the most recent pruned batch.
    last_density: Option<f64>,
    /// Sum of post-prune densities, for averaging.
    density_sum: f64,
    /// Batches included in `density_sum` (those pruned after warm-up).
    density_count: usize,
    /// Most recent predicted threshold (None until warm).
    pub last_predicted_tau: Option<f64>,
    /// Most recent determined threshold.
    pub last_determined_tau: Option<f64>,
}

impl PruneStats {
    /// Post-prune density of the most recent batch, if any.
    pub fn last_density(&self) -> Option<f64> {
        self.last_density
    }

    /// Mean post-prune density over all batches processed after warm-up.
    pub fn mean_density(&self) -> Option<f64> {
        if self.density_count == 0 {
            None
        } else {
            Some(self.density_sum / self.density_count as f64)
        }
    }
}

fn add_outcomes(a: PruneOutcome, b: PruneOutcome) -> PruneOutcome {
    PruneOutcome {
        kept: a.kept + b.kept,
        snapped: a.snapped + b.snapped,
        zeroed: a.zeroed + b.zeroed,
    }
}

/// Per-layer streaming gradient pruner (Algorithm 1).
///
/// One instance is attached to each CONV layer's pruning position (Fig. 4):
/// the activation-gradient tensor flowing backward is handed to
/// [`LayerPruner::prune_batch`] once per batch.
///
/// The pruner performs a *single pass* per batch: it accumulates `Σ|g|`
/// while pruning against the FIFO-predicted threshold, then determines this
/// batch's exact threshold and pushes it into the FIFO — so gradients never
/// need to be stored un-pruned (the property that makes the hardware
/// integration free, §III-B).
#[derive(Debug, Clone)]
pub struct LayerPruner {
    config: PruneConfig,
    fifo: ThresholdFifo,
    stats: PruneStats,
}

impl LayerPruner {
    /// Creates a pruner with the given configuration.
    pub fn new(config: PruneConfig) -> Self {
        Self {
            fifo: ThresholdFifo::new(config.fifo_depth),
            config,
            stats: PruneStats::default(),
        }
    }

    /// The pruner's configuration.
    pub fn config(&self) -> &PruneConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &PruneStats {
        &self.stats
    }

    /// Whether the FIFO has warmed up (batches are actually being pruned).
    pub fn is_warm(&self) -> bool {
        self.fifo.is_warm()
    }

    /// The threshold that would be applied to the next batch, if warm.
    pub fn predicted_threshold(&self) -> Option<f64> {
        if self.config.target_sparsity == 0.0 {
            return None;
        }
        self.fifo.predict()
    }

    /// Processes one batch of activation gradients in place and returns the
    /// outcome counts.
    ///
    /// Implements lines 2–18 of Algorithm 1 for one batch: prune under the
    /// predicted threshold (if warm), accumulate `Σ|g|` of the *original*
    /// gradients, determine this batch's threshold and push it to the FIFO.
    pub fn prune_batch<R: Rng + ?Sized>(&mut self, grads: &mut [f32], rng: &mut R) -> PruneOutcome {
        self.prune_batch_parts(&mut [grads], rng)
    }

    /// Like [`LayerPruner::prune_batch`], but the batch's gradient vector is
    /// supplied in several parts (e.g. one tensor per sample of the batch).
    /// The parts are treated as one logical vector `g`: a single predicted
    /// threshold prunes all of them, a single `Σ|g|` determines the next
    /// threshold.
    pub fn prune_batch_parts<R: Rng + ?Sized>(
        &mut self,
        parts: &mut [&mut [f32]],
        rng: &mut R,
    ) -> PruneOutcome {
        // Σ|g| accumulates over the incoming (un-pruned) gradients — in
        // hardware the PPU taps the stream before the pruning stage.
        let mut abs_sum = 0.0f64;
        let mut n = 0usize;
        for part in parts.iter() {
            abs_sum += part.iter().map(|&g| (g as f64).abs()).sum::<f64>();
            n += part.len();
        }

        let predicted = self.predicted_threshold();
        let outcome = match predicted {
            Some(tau) if tau > 0.0 => {
                let mut total = PruneOutcome::default();
                for part in parts.iter_mut() {
                    total = add_outcomes(total, prune_slice(part, tau, rng));
                }
                total
            }
            _ => {
                // Not warm (or pruning disabled): pass through, but still
                // count the natural zero pattern.
                let kept = parts
                    .iter()
                    .map(|p| p.iter().filter(|&&g| g != 0.0).count())
                    .sum();
                PruneOutcome {
                    kept,
                    snapped: 0,
                    zeroed: n - kept,
                }
            }
        };

        if self.config.target_sparsity > 0.0 {
            let tau = determine_threshold(sigma_hat(abs_sum, n), self.config.target_sparsity);
            self.fifo.push(tau);
            self.stats.last_determined_tau = Some(tau);
        }

        self.stats.batches += 1;
        self.stats.last_predicted_tau = predicted;
        let density = if n == 0 {
            1.0
        } else {
            (outcome.kept + outcome.snapped) as f64 / n as f64
        };
        self.stats.last_density = Some(density);
        if predicted.is_some() {
            self.stats.density_sum += density;
            self.stats.density_count += 1;
        }
        self.stats.last_outcome = Some(outcome);
        outcome
    }

    /// Clears the FIFO and statistics (e.g. when the learning-rate schedule
    /// changes the gradient scale abruptly).
    pub fn reset(&mut self) {
        self.fifo.reset();
        self.stats = PruneStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparsetrain_tensor::init::sample_standard_normal;

    fn normal_batch(rng: &mut StdRng, n: usize, sigma: f32) -> Vec<f32> {
        (0..n).map(|_| sample_standard_normal(rng) * sigma).collect()
    }

    #[test]
    fn no_pruning_until_fifo_warm() {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 3));
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..3 {
            assert!(!pruner.is_warm(), "warm too early at batch {i}");
            let mut batch = normal_batch(&mut rng, 1000, 0.1);
            let before = batch.clone();
            pruner.prune_batch(&mut batch, &mut rng);
            assert_eq!(batch, before, "batch {i} modified before warm-up");
        }
        assert!(pruner.is_warm());
        let mut batch = normal_batch(&mut rng, 1000, 0.1);
        let before = batch.clone();
        pruner.prune_batch(&mut batch, &mut rng);
        assert_ne!(batch, before, "warm pruner left batch unchanged");
    }

    #[test]
    fn achieves_target_density_on_normal_data() {
        for &p in &[0.7, 0.9, 0.99] {
            let mut pruner = LayerPruner::new(PruneConfig::new(p, 4));
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..10 {
                let mut batch = normal_batch(&mut rng, 20_000, 0.05);
                pruner.prune_batch(&mut batch, &mut rng);
            }
            let density = pruner.stats().last_density().unwrap();
            // Stochastic pruning re-inserts ±τ values: of the fraction p
            // below τ, E[|g|/τ | |g|<τ] survive. For a centred normal the
            // survivor fraction is meaningful, so density lands between
            // (1 - p) and roughly (1 - p) + 0.45 p.
            let floor = 1.0 - p;
            let ceil = (1.0 - p) + 0.5 * p;
            assert!(
                density > floor * 0.8 && density < ceil,
                "p={p}: density {density} outside ({floor}, {ceil})"
            );
        }
    }

    #[test]
    fn disabled_pruner_passes_through() {
        let mut pruner = LayerPruner::new(PruneConfig::disabled());
        let mut rng = StdRng::seed_from_u64(1);
        let mut batch = normal_batch(&mut rng, 100, 1.0);
        let before = batch.clone();
        for _ in 0..5 {
            pruner.prune_batch(&mut batch, &mut rng);
            assert_eq!(batch, before);
        }
        assert_eq!(pruner.predicted_threshold(), None);
    }

    #[test]
    fn predicted_tracks_determined() {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 4));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..8 {
            let mut batch = normal_batch(&mut rng, 10_000, 0.2);
            pruner.prune_batch(&mut batch, &mut rng);
        }
        let predicted = pruner.stats().last_predicted_tau.unwrap();
        let determined = pruner.stats().last_determined_tau.unwrap();
        assert!(
            (predicted - determined).abs() / determined < 0.1,
            "prediction {predicted} far from determination {determined}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.8, 2));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..6 {
            let mut batch = normal_batch(&mut rng, 1000, 0.1);
            pruner.prune_batch(&mut batch, &mut rng);
        }
        assert_eq!(pruner.stats().batches, 6);
        assert!(pruner.stats().mean_density().is_some());
    }

    #[test]
    fn reset_returns_to_cold() {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 1));
        let mut rng = StdRng::seed_from_u64(4);
        let mut batch = normal_batch(&mut rng, 100, 0.1);
        pruner.prune_batch(&mut batch, &mut rng);
        assert!(pruner.is_warm());
        pruner.reset();
        assert!(!pruner.is_warm());
        assert_eq!(pruner.stats().batches, 0);
    }

    #[test]
    fn empty_batch_is_handled() {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 1));
        let mut rng = StdRng::seed_from_u64(5);
        let mut batch: Vec<f32> = Vec::new();
        let out = pruner.prune_batch(&mut batch, &mut rng);
        assert_eq!(out.total(), 0);
    }
}
