//! The per-layer pruning state machine — Algorithm 1 of the paper.

use super::fifo::ThresholdFifo;
use super::stochastic::{prune_slice_at, PruneOutcome};
use super::stream::BatchStream;
use super::threshold::{determine_threshold, sigma_hat};
use sparsetrain_sparse::KernelEngine;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration of the layer-wise gradient pruner.
///
/// ```
/// use sparsetrain_core::prune::PruneConfig;
/// let cfg = PruneConfig::new(0.9, 4);
/// assert_eq!(cfg.target_sparsity, 0.9);
/// assert_eq!(cfg.fifo_depth, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneConfig {
    /// Target fraction `p` of gradients to prune, in `[0, 1)`.
    pub target_sparsity: f64,
    /// FIFO depth `N_F` for threshold prediction.
    pub fifo_depth: usize,
}

impl PruneConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `target_sparsity ∉ [0, 1)` or `fifo_depth == 0`.
    pub fn new(target_sparsity: f64, fifo_depth: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&target_sparsity),
            "target sparsity must be in [0, 1), got {target_sparsity}"
        );
        assert!(fifo_depth > 0, "FIFO depth must be positive");
        Self {
            target_sparsity,
            fifo_depth,
        }
    }

    /// The paper's typical setting: `p = 0.9`, `N_F = 4`.
    pub fn paper_default() -> Self {
        Self::new(0.9, 4)
    }

    /// A disabled pruner (`p = 0`): batches pass through unchanged but
    /// statistics are still collected — this is the dense baseline.
    pub fn disabled() -> Self {
        Self {
            target_sparsity: 0.0,
            fifo_depth: 1,
        }
    }
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Running statistics reported by a [`LayerPruner`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PruneStats {
    /// Batches processed so far.
    pub batches: usize,
    /// Outcome of the most recent batch.
    pub last_outcome: Option<PruneOutcome>,
    /// Density (non-zero fraction) of the most recent pruned batch.
    last_density: Option<f64>,
    /// Sum of post-prune densities, for averaging.
    density_sum: f64,
    /// Batches included in `density_sum` (those pruned after warm-up).
    density_count: usize,
    /// Most recent predicted threshold (None until warm).
    pub last_predicted_tau: Option<f64>,
    /// Most recent determined threshold.
    pub last_determined_tau: Option<f64>,
}

impl PruneStats {
    /// Post-prune density of the most recent batch, if any.
    pub fn last_density(&self) -> Option<f64> {
        self.last_density
    }

    /// Mean post-prune density over all batches processed after warm-up.
    pub fn mean_density(&self) -> Option<f64> {
        if self.density_count == 0 {
            None
        } else {
            Some(self.density_sum / self.density_count as f64)
        }
    }
}

fn add_outcomes(a: PruneOutcome, b: PruneOutcome) -> PruneOutcome {
    PruneOutcome {
        kept: a.kept + b.kept,
        snapped: a.snapped + b.snapped,
        zeroed: a.zeroed + b.zeroed,
    }
}

/// What one pruned batch (or one shard of it) contributes to a
/// [`LayerPruner`]'s state: the `Σ|g|` of the incoming gradients, their
/// count, and the prune outcome. Produced worker-side by
/// [`shard_prune_parts_on`], reduced in fixed granule order by a shard
/// coordinator ([`SiteStats::accumulate`] — `abs_sum` is an f64 sum, so
/// the order is part of the result), and absorbed into the authoritative
/// pruner by [`LayerPruner::absorb_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SiteStats {
    /// `Σ|g|` over the incoming (un-pruned) gradients, accumulated in
    /// part order exactly as [`LayerPruner::prune_batch_parts`] does.
    pub abs_sum: f64,
    /// Number of gradient elements covered.
    pub elements: usize,
    /// Keep/snap/zero counts of the prune pass.
    pub outcome: PruneOutcome,
}

impl SiteStats {
    /// Folds `next` into `self`. `abs_sum` is a floating-point sum: a
    /// coordinator must call this in the same (granule-index) order for
    /// every worker count, or the determined threshold — and with it the
    /// whole trajectory — ceases to be N-invariant.
    pub fn accumulate(&mut self, next: &SiteStats) {
        self.abs_sum += next.abs_sum;
        self.elements += next.elements;
        self.outcome = add_outcomes(self.outcome, next.outcome);
    }
}

/// Per-layer streaming gradient pruner (Algorithm 1).
///
/// One instance is attached to each CONV layer's pruning position (Fig. 4):
/// the activation-gradient tensor flowing backward is handed to
/// [`LayerPruner::prune_batch`] once per batch.
///
/// The pruner performs a *single pass* per batch: it accumulates `Σ|g|`
/// while pruning against the FIFO-predicted threshold, then determines this
/// batch's exact threshold and pushes it into the FIFO — so gradients never
/// need to be stored un-pruned (the property that makes the hardware
/// integration free, §III-B).
#[derive(Debug, Clone)]
pub struct LayerPruner {
    config: PruneConfig,
    fifo: ThresholdFifo,
    stats: PruneStats,
}

impl LayerPruner {
    /// Creates a pruner with the given configuration.
    pub fn new(config: PruneConfig) -> Self {
        Self {
            fifo: ThresholdFifo::new(config.fifo_depth),
            config,
            stats: PruneStats::default(),
        }
    }

    /// The pruner's configuration.
    pub fn config(&self) -> &PruneConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &PruneStats {
        &self.stats
    }

    /// Whether the FIFO has warmed up (batches are actually being pruned).
    pub fn is_warm(&self) -> bool {
        self.fifo.is_warm()
    }

    /// The threshold that would be applied to the next batch, if warm.
    pub fn predicted_threshold(&self) -> Option<f64> {
        if self.config.target_sparsity == 0.0 {
            return None;
        }
        self.fifo.predict()
    }

    /// Processes one batch of activation gradients in place and returns the
    /// outcome counts.
    ///
    /// Implements lines 2–18 of Algorithm 1 for one batch: prune under the
    /// predicted threshold (if warm), accumulate `Σ|g|` of the *original*
    /// gradients, determine this batch's threshold and push it to the FIFO.
    /// Randomness comes from `stream`'s counter-based keys, so the result
    /// is a pure function of the gradients and the stream coordinates.
    pub fn prune_batch(&mut self, grads: &mut [f32], stream: &BatchStream) -> PruneOutcome {
        self.prune_batch_parts(&mut [grads], stream)
    }

    /// Like [`LayerPruner::prune_batch`], but the batch's gradient vector is
    /// supplied in several parts (e.g. one tensor per sample of the batch).
    /// The parts are treated as one logical vector `g` for *thresholding*:
    /// a single predicted threshold prunes all of them, a single `Σ|g|`
    /// determines the next threshold. Each part's random draws come from
    /// `stream.part(index, elements_before)` — one independent stream per
    /// sample under [`BatchStream::per_sample`], one contiguous stream
    /// (invariant to the split points) under [`BatchStream::contiguous`].
    pub fn prune_batch_parts(&mut self, parts: &mut [&mut [f32]], stream: &BatchStream) -> PruneOutcome {
        self.prune_parts_impl(parts, stream, None)
    }

    /// Like [`LayerPruner::prune_batch_parts`], but the pruning pass runs
    /// through `engine`'s batched element path
    /// ([`KernelEngine::for_each_batch_chunk`]), banding the `samples ×
    /// elements` space across workers on parallel engines. Because every
    /// draw is keyed by position, the result is bitwise-identical to the
    /// sequential [`LayerPruner::prune_batch_parts`] on every engine and
    /// at every thread count.
    pub fn prune_batch_parts_on(
        &mut self,
        parts: &mut [&mut [f32]],
        stream: &BatchStream,
        engine: &dyn KernelEngine,
    ) -> PruneOutcome {
        self.prune_parts_impl(parts, stream, Some(engine))
    }

    /// Like [`LayerPruner::prune_batch_parts_on`], but **stateless**:
    /// prunes under the currently-predicted threshold without accumulating
    /// `Σ|g|`, pushing a FIFO entry, or touching statistics. Probe passes
    /// (dataflow trace capture, gradient taps) prune through this so that
    /// *inspecting* a training run never perturbs its trajectory.
    pub fn preview_batch_parts_on(
        &self,
        parts: &mut [&mut [f32]],
        stream: &BatchStream,
        engine: &dyn KernelEngine,
    ) -> PruneOutcome {
        match self.predicted_threshold() {
            Some(tau) if tau > 0.0 => prune_parts_under(parts, tau, stream, Some(engine)),
            _ => passthrough_outcome(parts),
        }
    }

    fn prune_parts_impl(
        &mut self,
        parts: &mut [&mut [f32]],
        stream: &BatchStream,
        engine: Option<&dyn KernelEngine>,
    ) -> PruneOutcome {
        // Σ|g| accumulates over the incoming (un-pruned) gradients — in
        // hardware the PPU taps the stream before the pruning stage.
        let mut abs_sum = 0.0f64;
        let mut n = 0usize;
        for part in parts.iter() {
            abs_sum += part.iter().map(|&g| (g as f64).abs()).sum::<f64>();
            n += part.len();
        }

        let outcome = match self.predicted_threshold() {
            Some(tau) if tau > 0.0 => prune_parts_under(parts, tau, stream, engine),
            _ => passthrough_outcome(parts),
        };

        self.absorb_batch(&SiteStats {
            abs_sum,
            elements: n,
            outcome,
        });
        outcome
    }

    /// Advances the pruner's state by one batch whose prune pass already
    /// happened elsewhere — the coordinator side of a sharded step. The
    /// workers prune statelessly under this pruner's
    /// [`LayerPruner::predicted_threshold`] (via [`shard_prune_parts_on`])
    /// and the coordinator reduces their [`SiteStats`] in fixed granule
    /// order before absorbing them here. This is, by construction, the
    /// exact state tail of the in-process stepping path
    /// ([`LayerPruner::prune_batch_parts_on`] calls it), so one absorbed
    /// batch is indistinguishable from one pruned batch.
    pub fn absorb_batch(&mut self, batch: &SiteStats) {
        // The prediction that pruned this batch — read before the FIFO
        // push below changes it.
        let predicted = self.predicted_threshold();

        if self.config.target_sparsity > 0.0 {
            let tau = determine_threshold(
                sigma_hat(batch.abs_sum, batch.elements),
                self.config.target_sparsity,
            );
            self.fifo.push(tau);
            self.stats.last_determined_tau = Some(tau);
        }

        self.stats.batches += 1;
        self.stats.last_predicted_tau = predicted;
        let density = if batch.elements == 0 {
            1.0
        } else {
            (batch.outcome.kept + batch.outcome.snapped) as f64 / batch.elements as f64
        };
        self.stats.last_density = Some(density);
        if predicted.is_some() {
            self.stats.density_sum += density;
            self.stats.density_count += 1;
        }
        self.stats.last_outcome = Some(batch.outcome);
    }

    /// Clears the FIFO and statistics (e.g. when the learning-rate schedule
    /// changes the gradient scale abruptly).
    pub fn reset(&mut self) {
        self.fifo.reset();
        self.stats = PruneStats::default();
    }

    /// Exports the pruner's complete mutable state for checkpointing.
    pub fn snapshot_state(&self) -> PrunerSnapshot {
        PrunerSnapshot {
            target_sparsity: self.config.target_sparsity,
            fifo_depth: self.config.fifo_depth,
            fifo: self.fifo.values().collect(),
            batches: self.stats.batches,
            last_outcome: self.stats.last_outcome,
            last_density: self.stats.last_density,
            density_sum: self.stats.density_sum,
            density_count: self.stats.density_count,
            last_predicted_tau: self.stats.last_predicted_tau,
            last_determined_tau: self.stats.last_determined_tau,
        }
    }

    /// Restores state exported by [`LayerPruner::snapshot_state`]. The
    /// snapshot's config echo must match this pruner's configuration —
    /// restoring into a differently-configured pruner would silently change
    /// the trajectory, so it is an error instead.
    pub fn restore_state(&mut self, snap: &PrunerSnapshot) -> Result<(), String> {
        if snap.target_sparsity != self.config.target_sparsity {
            return Err(format!(
                "pruner target sparsity mismatch: snapshot {}, configured {}",
                snap.target_sparsity, self.config.target_sparsity
            ));
        }
        if snap.fifo_depth != self.config.fifo_depth {
            return Err(format!(
                "pruner FIFO depth mismatch: snapshot {}, configured {}",
                snap.fifo_depth, self.config.fifo_depth
            ));
        }
        if snap.fifo.len() > self.config.fifo_depth {
            return Err(format!(
                "pruner snapshot holds {} thresholds for a depth-{} FIFO",
                snap.fifo.len(),
                self.config.fifo_depth
            ));
        }
        self.fifo.load(&snap.fifo);
        self.stats = PruneStats {
            batches: snap.batches,
            last_outcome: snap.last_outcome,
            last_density: snap.last_density,
            density_sum: snap.density_sum,
            density_count: snap.density_count,
            last_predicted_tau: snap.last_predicted_tau,
            last_determined_tau: snap.last_determined_tau,
        };
        Ok(())
    }
}

/// Plain-data export of a [`LayerPruner`]'s mutable state plus a config
/// echo, produced by [`LayerPruner::snapshot_state`] and consumed by
/// [`LayerPruner::restore_state`]. The checkpoint crate serializes this.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunerSnapshot {
    /// Config echo: target sparsity the pruner was built with.
    pub target_sparsity: f64,
    /// Config echo: FIFO depth the pruner was built with.
    pub fifo_depth: usize,
    /// FIFO contents, oldest first.
    pub fifo: Vec<f64>,
    /// Batches processed.
    pub batches: usize,
    /// Outcome of the most recent batch.
    pub last_outcome: Option<PruneOutcome>,
    /// Density of the most recent pruned batch.
    pub last_density: Option<f64>,
    /// Running density sum.
    pub density_sum: f64,
    /// Batches included in the density sum.
    pub density_count: usize,
    /// Most recent predicted threshold.
    pub last_predicted_tau: Option<f64>,
    /// Most recent determined threshold.
    pub last_determined_tau: Option<f64>,
}

/// The worker side of a sharded prune: prunes `parts` statelessly under
/// the coordinator-broadcast threshold (`None` while the coordinator's
/// FIFO is cold — pass-through, exactly like the in-process cold path)
/// and returns the [`SiteStats`] the coordinator needs to advance the
/// authoritative [`LayerPruner`] via [`LayerPruner::absorb_batch`].
///
/// `stream` must carry the part's *global* batch position
/// ([`BatchStream::with_base`] /
/// [`super::stream::StepStreams::with_sample_base`]) so the draws are the
/// whole-batch run's draws. The `Σ|g|` accumulation visits parts in
/// order, exactly as [`LayerPruner::prune_batch_parts`] does, so a
/// granule-ordered reduction of the returned stats reproduces the
/// in-process sum bitwise when each granule is one part.
pub fn shard_prune_parts_on(
    tau: Option<f64>,
    parts: &mut [&mut [f32]],
    stream: &BatchStream,
    engine: &dyn KernelEngine,
) -> SiteStats {
    let mut abs_sum = 0.0f64;
    let mut n = 0usize;
    for part in parts.iter() {
        abs_sum += part.iter().map(|&g| (g as f64).abs()).sum::<f64>();
        n += part.len();
    }
    let outcome = match tau {
        Some(tau) if tau > 0.0 => prune_parts_under(parts, tau, stream, Some(engine)),
        _ => passthrough_outcome(parts),
    };
    SiteStats {
        abs_sum,
        elements: n,
        outcome,
    }
}

/// Prunes `parts` under the fixed threshold `tau` with `stream`'s
/// coordinates — sequentially, or banded through `engine`'s batched
/// element path. The stateless core shared by the stepping and preview
/// paths; bitwise-identical either way because every draw is keyed by
/// position.
fn prune_parts_under(
    parts: &mut [&mut [f32]],
    tau: f64,
    stream: &BatchStream,
    engine: Option<&dyn KernelEngine>,
) -> PruneOutcome {
    // Every part's stream coordinates are fixed before pruning starts,
    // so the pass below may visit parts in any order or in chunks.
    let coords: Vec<(rand::stream::StreamKey, u64)> = {
        let mut before = 0u64;
        parts
            .iter()
            .enumerate()
            .map(|(s, part)| {
                let c = stream.part(s, before);
                before += part.len() as u64;
                c
            })
            .collect()
    };
    match engine {
        None => {
            let mut total = PruneOutcome::default();
            for (part, &(key, base)) in parts.iter_mut().zip(&coords) {
                total = add_outcomes(total, prune_slice_at(part, tau, key, base));
            }
            total
        }
        Some(engine) => {
            // Outcome counts are order-free sums, so relaxed atomics keep
            // the banded pass deterministic. Both this banded path and the
            // sequential one above draw through `prune_slice_at`'s
            // buffered `StreamKey::fill_uniform_at` runs, and parallel
            // engines hand out lane-aligned chunks, so the per-chunk
            // buffers fill whole lane blocks.
            let kept = AtomicUsize::new(0);
            let snapped = AtomicUsize::new(0);
            let zeroed = AtomicUsize::new(0);
            let views: Vec<&mut [f32]> = parts.iter_mut().map(|p| &mut **p).collect();
            engine.for_each_batch_chunk(views, &|s, offset, chunk| {
                let (key, base) = coords[s];
                let out = prune_slice_at(chunk, tau, key, base + offset as u64);
                kept.fetch_add(out.kept, Ordering::Relaxed);
                snapped.fetch_add(out.snapped, Ordering::Relaxed);
                zeroed.fetch_add(out.zeroed, Ordering::Relaxed);
            });
            PruneOutcome {
                kept: kept.into_inner(),
                snapped: snapped.into_inner(),
                zeroed: zeroed.into_inner(),
            }
        }
    }
}

/// Outcome counts of a pass-through (cold FIFO or disabled pruning):
/// nothing changes, the natural zero pattern is still counted.
fn passthrough_outcome(parts: &[&mut [f32]]) -> PruneOutcome {
    let n: usize = parts.iter().map(|p| p.len()).sum();
    let kept = parts
        .iter()
        .map(|p| p.iter().filter(|&&g| g != 0.0).count())
        .sum();
    PruneOutcome {
        kept,
        snapped: 0,
        zeroed: n - kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::stream::StreamKey;
    use rand::SeedableRng;
    use sparsetrain_tensor::init::sample_standard_normal;

    fn normal_batch(rng: &mut StdRng, n: usize, sigma: f32) -> Vec<f32> {
        (0..n).map(|_| sample_standard_normal(rng) * sigma).collect()
    }

    /// One fresh batch stream per step, as the trainer's ladder would
    /// derive them.
    fn stream(step: u64) -> BatchStream {
        BatchStream::contiguous(StreamKey::new(0xBA7C).derive(step))
    }

    #[test]
    fn no_pruning_until_fifo_warm() {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 3));
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..3 {
            assert!(!pruner.is_warm(), "warm too early at batch {i}");
            let mut batch = normal_batch(&mut rng, 1000, 0.1);
            let before = batch.clone();
            pruner.prune_batch(&mut batch, &stream(i));
            assert_eq!(batch, before, "batch {i} modified before warm-up");
        }
        assert!(pruner.is_warm());
        let mut batch = normal_batch(&mut rng, 1000, 0.1);
        let before = batch.clone();
        pruner.prune_batch(&mut batch, &stream(3));
        assert_ne!(batch, before, "warm pruner left batch unchanged");
    }

    #[test]
    fn achieves_target_density_on_normal_data() {
        for &p in &[0.7, 0.9, 0.99] {
            let mut pruner = LayerPruner::new(PruneConfig::new(p, 4));
            let mut rng = StdRng::seed_from_u64(99);
            for step in 0..10 {
                let mut batch = normal_batch(&mut rng, 20_000, 0.05);
                pruner.prune_batch(&mut batch, &stream(step));
            }
            let density = pruner.stats().last_density().unwrap();
            // Stochastic pruning re-inserts ±τ values: of the fraction p
            // below τ, E[|g|/τ | |g|<τ] survive. For a centred normal the
            // survivor fraction is meaningful, so density lands between
            // (1 - p) and roughly (1 - p) + 0.45 p.
            let floor = 1.0 - p;
            let ceil = (1.0 - p) + 0.5 * p;
            assert!(
                density > floor * 0.8 && density < ceil,
                "p={p}: density {density} outside ({floor}, {ceil})"
            );
        }
    }

    #[test]
    fn disabled_pruner_passes_through() {
        let mut pruner = LayerPruner::new(PruneConfig::disabled());
        let mut rng = StdRng::seed_from_u64(1);
        let mut batch = normal_batch(&mut rng, 100, 1.0);
        let before = batch.clone();
        for step in 0..5 {
            pruner.prune_batch(&mut batch, &stream(step));
            assert_eq!(batch, before);
        }
        assert_eq!(pruner.predicted_threshold(), None);
    }

    #[test]
    fn predicted_tracks_determined() {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 4));
        let mut rng = StdRng::seed_from_u64(2);
        for step in 0..8 {
            let mut batch = normal_batch(&mut rng, 10_000, 0.2);
            pruner.prune_batch(&mut batch, &stream(step));
        }
        let predicted = pruner.stats().last_predicted_tau.unwrap();
        let determined = pruner.stats().last_determined_tau.unwrap();
        assert!(
            (predicted - determined).abs() / determined < 0.1,
            "prediction {predicted} far from determination {determined}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.8, 2));
        let mut rng = StdRng::seed_from_u64(3);
        for step in 0..6 {
            let mut batch = normal_batch(&mut rng, 1000, 0.1);
            pruner.prune_batch(&mut batch, &stream(step));
        }
        assert_eq!(pruner.stats().batches, 6);
        assert!(pruner.stats().mean_density().is_some());
    }

    #[test]
    fn reset_returns_to_cold() {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 1));
        let mut rng = StdRng::seed_from_u64(4);
        let mut batch = normal_batch(&mut rng, 100, 0.1);
        pruner.prune_batch(&mut batch, &stream(0));
        assert!(pruner.is_warm());
        pruner.reset();
        assert!(!pruner.is_warm());
        assert_eq!(pruner.stats().batches, 0);
    }

    #[test]
    fn empty_batch_is_handled() {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 1));
        let mut batch: Vec<f32> = Vec::new();
        let out = pruner.prune_batch(&mut batch, &stream(0));
        assert_eq!(out.total(), 0);
    }

    #[test]
    fn preview_prunes_identically_to_the_stepping_path() {
        // `preview_batch_parts_on` takes `&self`, so statelessness is
        // type-enforced; what needs pinning is that its *values* equal the
        // stepping path's under the same threshold and streams.
        use sparsetrain_sparse::ScalarEngine;
        let mut rng = StdRng::seed_from_u64(7);
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 1));
        let mut warm = normal_batch(&mut rng, 2000, 0.05);
        pruner.prune_batch(&mut warm, &stream(0));

        let batch = normal_batch(&mut rng, 2000, 0.05);
        let mut previewed = batch.clone();
        let out_p = pruner.preview_batch_parts_on(&mut [&mut previewed], &stream(1), &ScalarEngine);
        let mut stepped = batch.clone();
        let out_s = pruner.prune_batch_parts_on(&mut [&mut stepped], &stream(1), &ScalarEngine);
        assert_eq!(previewed, stepped, "preview diverged from the stepping prune");
        assert_eq!(out_p, out_s);
        // A cold pruner's preview is a pass-through.
        let cold = LayerPruner::new(PruneConfig::new(0.9, 4));
        let mut untouched = batch.clone();
        let out = cold.preview_batch_parts_on(&mut [&mut untouched], &stream(2), &ScalarEngine);
        assert_eq!(untouched, batch);
        assert_eq!(out.snapped, 0);
    }

    #[test]
    fn snapshot_restore_resumes_the_trajectory() {
        let mut rng = StdRng::seed_from_u64(5);
        let batches: Vec<Vec<f32>> = (0..12).map(|_| normal_batch(&mut rng, 2000, 0.1)).collect();

        // Straight run over all 12 batches.
        let mut straight = LayerPruner::new(PruneConfig::new(0.9, 3));
        let mut want = Vec::new();
        for (step, batch) in batches.iter().enumerate() {
            let mut b = batch.clone();
            straight.prune_batch(&mut b, &stream(step as u64));
            want.push(b);
        }

        // Run 6 batches, snapshot, restore into a fresh pruner, run the rest.
        let mut first = LayerPruner::new(PruneConfig::new(0.9, 3));
        let mut got = Vec::new();
        for (step, batch) in batches.iter().take(6).enumerate() {
            let mut b = batch.clone();
            first.prune_batch(&mut b, &stream(step as u64));
            got.push(b);
        }
        let snap = first.snapshot_state();
        let mut resumed = LayerPruner::new(PruneConfig::new(0.9, 3));
        resumed.restore_state(&snap).unwrap();
        for (step, batch) in batches.iter().enumerate().skip(6) {
            let mut b = batch.clone();
            resumed.prune_batch(&mut b, &stream(step as u64));
            got.push(b);
        }

        assert_eq!(got, want, "resumed pruning diverged from the straight run");
        assert_eq!(resumed.stats(), straight.stats());
        assert_eq!(resumed.snapshot_state(), straight.snapshot_state());
    }

    #[test]
    fn restore_rejects_config_mismatch() {
        let warm = LayerPruner::new(PruneConfig::new(0.9, 3));
        let snap = warm.snapshot_state();
        let mut other = LayerPruner::new(PruneConfig::new(0.8, 3));
        let err = other.restore_state(&snap).unwrap_err();
        assert!(err.contains("target sparsity"), "unexpected error: {err}");
        let mut other = LayerPruner::new(PruneConfig::new(0.9, 4));
        let err = other.restore_state(&snap).unwrap_err();
        assert!(err.contains("FIFO depth"), "unexpected error: {err}");
    }

    #[test]
    fn sharded_prune_and_absorb_match_the_stepping_path() {
        // The sharded decomposition — workers prune statelessly under the
        // broadcast prediction via `shard_prune_parts_on`, the coordinator
        // reduces their stats in granule order and `absorb_batch`es them —
        // must be indistinguishable from the in-process stepping path:
        // same pruned values, same FIFO, same statistics, over a sequence
        // of batches (so the FIFO warms and predictions flow through).
        use sparsetrain_sparse::ScalarEngine;
        let mut rng = StdRng::seed_from_u64(8);
        let batches: Vec<Vec<Vec<f32>>> = (0..6)
            .map(|_| (0..5).map(|_| normal_batch(&mut rng, 400, 0.05)).collect())
            .collect();

        let mut legacy = LayerPruner::new(PruneConfig::new(0.9, 2));
        let mut sharded = LayerPruner::new(PruneConfig::new(0.9, 2));
        for (step, batch) in batches.iter().enumerate() {
            let key = StreamKey::new(11).derive(step as u64);

            let mut want = batch.clone();
            let mut parts: Vec<&mut [f32]> = want.iter_mut().map(|v| v.as_mut_slice()).collect();
            legacy.prune_batch_parts_on(&mut parts, &BatchStream::per_sample(key), &ScalarEngine);

            // Sharded: one granule per sample, each pruned on its own
            // base-shifted stream slice as a worker would, reduced in
            // granule order.
            let tau = sharded.predicted_threshold();
            let mut got = batch.clone();
            let mut reduced = SiteStats::default();
            for (s, sample) in got.iter_mut().enumerate() {
                let slice = BatchStream::per_sample(key).with_base(s as u64);
                let stats = shard_prune_parts_on(tau, &mut [sample.as_mut_slice()], &slice, &ScalarEngine);
                reduced.accumulate(&stats);
            }
            sharded.absorb_batch(&reduced);

            assert_eq!(got, want, "step {step}: sharded prune diverged");
        }
        assert_eq!(sharded.stats(), legacy.stats());
        assert_eq!(sharded.snapshot_state(), legacy.snapshot_state());
    }

    #[test]
    fn engine_banded_prune_matches_sequential() {
        use sparsetrain_sparse::{ParallelEngine, ScalarEngine};
        let mut rng = StdRng::seed_from_u64(6);
        let batches: Vec<Vec<Vec<f32>>> = (0..6)
            .map(|_| (0..4).map(|_| normal_batch(&mut rng, 700, 0.05)).collect())
            .collect();
        let engines: [&dyn KernelEngine; 3] = [
            &ScalarEngine,
            &ParallelEngine::with_threads(1),
            &ParallelEngine::with_threads(4),
        ];
        let run = |engine: Option<&dyn KernelEngine>| -> (Vec<Vec<Vec<f32>>>, Vec<PruneOutcome>) {
            let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 2));
            let mut outs = Vec::new();
            let mut pruned = Vec::new();
            for (step, batch) in batches.iter().enumerate() {
                let mut data = batch.clone();
                let mut parts: Vec<&mut [f32]> = data.iter_mut().map(|v| v.as_mut_slice()).collect();
                let s = BatchStream::per_sample(StreamKey::new(1).derive(step as u64));
                outs.push(match engine {
                    None => pruner.prune_batch_parts(&mut parts, &s),
                    Some(e) => pruner.prune_batch_parts_on(&mut parts, &s, e),
                });
                pruned.push(data);
            }
            (pruned, outs)
        };
        let (want_data, want_outs) = run(None);
        for engine in engines {
            let (data, outs) = run(Some(engine));
            assert_eq!(data, want_data, "engine {} diverged", engine.name());
            assert_eq!(
                outs,
                want_outs,
                "engine {} outcome counts diverged",
                engine.name()
            );
        }
    }
}
