//! FIFO-based threshold prediction (§III-B, Fig. 5).
//!
//! Computing the exact threshold for a batch requires `Σ|g|` over the whole
//! batch — which is only known *after* the gradients have been produced.
//! To prune gradients on the fly (before they are written back to memory),
//! the threshold is *predicted* as the mean of the last `N_F` determined
//! thresholds. `N_F ≪ N` (the number of batches), so the predictor adapts
//! as training changes the gradient distribution.

use std::collections::VecDeque;

/// A fixed-depth FIFO of recently determined thresholds.
///
/// ```
/// use sparsetrain_core::prune::ThresholdFifo;
/// let mut f = ThresholdFifo::new(2);
/// assert_eq!(f.predict(), None); // not warmed up yet
/// f.push(1.0);
/// f.push(3.0);
/// assert_eq!(f.predict(), Some(2.0));
/// f.push(5.0); // evicts 1.0
/// assert_eq!(f.predict(), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdFifo {
    depth: usize,
    values: VecDeque<f64>,
}

impl ThresholdFifo {
    /// Creates a FIFO of the given depth `N_F`.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "FIFO depth must be positive");
        Self {
            depth,
            values: VecDeque::with_capacity(depth),
        }
    }

    /// The configured depth `N_F`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of thresholds currently stored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the FIFO holds no thresholds yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the FIFO has filled to its depth (prediction enabled).
    pub fn is_warm(&self) -> bool {
        self.values.len() == self.depth
    }

    /// Pushes a newly determined threshold, evicting the oldest if full.
    pub fn push(&mut self, tau: f64) {
        if self.values.len() == self.depth {
            self.values.pop_front();
        }
        self.values.push_back(tau);
    }

    /// Predicted threshold: the mean of the stored values, or `None` until
    /// the FIFO is warm (the paper prunes nothing before warm-up).
    pub fn predict(&self) -> Option<f64> {
        if !self.is_warm() {
            return None;
        }
        Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
    }

    /// Clears all stored thresholds (e.g. between training phases).
    pub fn reset(&mut self) {
        self.values.clear();
    }

    /// The stored thresholds, oldest first (checkpoint export).
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// Replaces the stored thresholds (checkpoint restore). Values beyond
    /// `depth` are rejected rather than silently evicted.
    ///
    /// # Panics
    ///
    /// Panics if `values` holds more than [`ThresholdFifo::depth`] entries.
    pub fn load(&mut self, values: &[f64]) {
        assert!(
            values.len() <= self.depth,
            "cannot load {} thresholds into a depth-{} FIFO",
            values.len(),
            self.depth
        );
        self.values.clear();
        self.values.extend(values.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warms_up_after_depth_pushes() {
        let mut f = ThresholdFifo::new(3);
        f.push(1.0);
        f.push(1.0);
        assert!(!f.is_warm());
        assert_eq!(f.predict(), None);
        f.push(1.0);
        assert!(f.is_warm());
        assert_eq!(f.predict(), Some(1.0));
    }

    #[test]
    fn evicts_oldest() {
        let mut f = ThresholdFifo::new(2);
        f.push(10.0);
        f.push(20.0);
        f.push(30.0);
        assert_eq!(f.predict(), Some(25.0));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn reset_clears() {
        let mut f = ThresholdFifo::new(1);
        f.push(5.0);
        assert!(f.is_warm());
        f.reset();
        assert!(f.is_empty());
        assert_eq!(f.predict(), None);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _ = ThresholdFifo::new(0);
    }

    #[test]
    fn values_roundtrip_through_load() {
        let mut f = ThresholdFifo::new(3);
        f.push(1.0);
        f.push(2.0);
        let stored: Vec<f64> = f.values().collect();
        assert_eq!(stored, vec![1.0, 2.0]);
        let mut g = ThresholdFifo::new(3);
        g.load(&stored);
        assert_eq!(g, f);
    }

    #[test]
    #[should_panic(expected = "cannot load")]
    fn load_rejects_overfull() {
        let mut f = ThresholdFifo::new(1);
        f.load(&[1.0, 2.0]);
    }

    #[test]
    fn prediction_tracks_drift() {
        // As determined thresholds drift downward during training, the
        // prediction follows with N_F lag.
        let mut f = ThresholdFifo::new(4);
        for i in 0..4 {
            f.push(1.0 - i as f64 * 0.1);
        }
        let p1 = f.predict().unwrap();
        for i in 4..8 {
            f.push(1.0 - i as f64 * 0.1);
        }
        let p2 = f.predict().unwrap();
        assert!(p2 < p1);
    }
}
