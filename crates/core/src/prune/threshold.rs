//! Threshold determination (§III-B).
//!
//! Activation gradients are modelled as zero-mean normal. From one pass of
//! accumulating `Σ|gᵢ|`, the standard deviation is estimated without a sort,
//! and the threshold below which a target fraction `p` of values falls is
//! read off the normal quantile function.

use super::normal::phi_inv;

/// Unbiased estimate of the standard deviation of a zero-mean normal from
/// the accumulated absolute sum: `σ̂ = √(π/2) · (Σ|gᵢ|) / n`.
///
/// For `g ~ N(0, σ²)`, `E|g| = σ·√(2/π)`, so dividing the mean absolute
/// value by `√(2/π)` — i.e. multiplying by `√(π/2)` — recovers σ. (The
/// paper prints the reciprocal factor; this is the algebraically consistent
/// form, and the `sigma_hat_recovers_sigma` unit test verifies it empirically.)
///
/// Returns 0.0 when `n == 0`.
pub fn sigma_hat(abs_sum: f64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    (std::f64::consts::PI / 2.0).sqrt() * abs_sum / n as f64
}

/// Determines the pruning threshold `τ` for a target sparsity `p`
/// (fraction of gradients to prune, `0 < p < 1`):
/// `τ = Φ⁻¹((1 + p) / 2) · σ̂`, so that `P(|g| < τ) = p` under the normal
/// model.
///
/// Returns 0.0 (prune nothing) when `sigma == 0.0` or `p == 0.0`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1)`.
///
/// ```
/// use sparsetrain_core::prune::determine_threshold;
/// // For a standard normal, pruning 90% needs |g| < 1.6449·σ.
/// let tau = determine_threshold(1.0, 0.9);
/// assert!((tau - 1.6449).abs() < 1e-3);
/// ```
pub fn determine_threshold(sigma: f64, p: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&p),
        "target sparsity p must be in [0, 1), got {p}"
    );
    if sigma == 0.0 || p == 0.0 {
        return 0.0;
    }
    phi_inv((1.0 + p) / 2.0) * sigma
}

/// Convenience: threshold straight from a gradient slice (two passes over
/// the data; the streaming [`super::LayerPruner`] avoids this).
pub fn threshold_from_slice(grads: &[f32], p: f64) -> f64 {
    let abs_sum: f64 = grads.iter().map(|&g| (g as f64).abs()).sum();
    determine_threshold(sigma_hat(abs_sum, grads.len()), p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparsetrain_tensor::init::sample_standard_normal;

    #[test]
    fn sigma_hat_zero_n() {
        assert_eq!(sigma_hat(10.0, 0), 0.0);
    }

    #[test]
    fn sigma_hat_recovers_sigma() {
        let mut rng = StdRng::seed_from_u64(3);
        let sigma = 2.5f64;
        let n = 50_000;
        let abs_sum: f64 = (0..n)
            .map(|_| (sample_standard_normal(&mut rng) as f64 * sigma).abs())
            .sum();
        let est = sigma_hat(abs_sum, n);
        assert!(
            (est - sigma).abs() / sigma < 0.02,
            "estimated {est} vs true {sigma}"
        );
    }

    #[test]
    fn threshold_prunes_target_fraction_of_normal_data() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let data: Vec<f32> = (0..n).map(|_| sample_standard_normal(&mut rng) * 0.3).collect();
        for &p in &[0.5, 0.7, 0.9, 0.99] {
            let tau = threshold_from_slice(&data, p);
            let below = data.iter().filter(|&&g| (g as f64).abs() < tau).count();
            let frac = below as f64 / n as f64;
            assert!(
                (frac - p).abs() < 0.02,
                "p={p}: fraction below threshold was {frac}"
            );
        }
    }

    #[test]
    fn zero_sigma_gives_zero_threshold() {
        assert_eq!(determine_threshold(0.0, 0.9), 0.0);
    }

    #[test]
    fn zero_p_disables_pruning() {
        assert_eq!(determine_threshold(1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn p_of_one_rejected() {
        let _ = determine_threshold(1.0, 1.0);
    }

    #[test]
    fn threshold_monotone_in_p() {
        let t70 = determine_threshold(1.0, 0.7);
        let t90 = determine_threshold(1.0, 0.9);
        let t99 = determine_threshold(1.0, 0.99);
        assert!(t70 < t90 && t90 < t99);
    }
}
