//! Gradient-distribution diagnostics.
//!
//! The threshold determination of §III rests on one modelling assumption:
//! activation gradients at the pruning positions follow a zero-mean
//! normal distribution. This module measures how well a gradient tensor
//! fits that model — moments, the half-normal consistency ratio behind
//! the σ̂ estimator, and coverage of the 1σ/2σ bands — so the assumption
//! can be *checked* on every workload instead of trusted
//! (`repro_distribution` prints the check for the evaluated networks).
//!
//! # Example
//!
//! ```
//! use sparsetrain_core::prune::diagnostics::DistributionSummary;
//!
//! // A symmetric triangle-ish sample: near-zero mean and skew.
//! let data: Vec<f32> = (-500..=500).map(|i| i as f32 / 500.0).collect();
//! let s = DistributionSummary::from_slice(&data);
//! assert!(s.mean.abs() < 1e-6);
//! assert!(s.skewness.abs() < 1e-6);
//! ```

/// Moment and coverage statistics of a sample, with normality scores.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DistributionSummary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population form).
    pub std_dev: f64,
    /// Mean absolute value `E|g|`.
    pub mean_abs: f64,
    /// Standardized third moment (0 for symmetric distributions).
    pub skewness: f64,
    /// Excess kurtosis (0 for a normal; > 0 for heavy tails).
    pub excess_kurtosis: f64,
    /// Fraction of samples within 1 standard deviation of the mean
    /// (≈ 0.6827 for a normal).
    pub within_1sigma: f64,
    /// Fraction within 2 standard deviations (≈ 0.9545 for a normal).
    pub within_2sigma: f64,
    /// Fraction of exactly-zero samples (sparsity already present).
    pub zero_fraction: f64,
}

/// Expected 1σ coverage of a normal distribution.
pub const NORMAL_1SIGMA: f64 = 0.682_689_492_137_086;

/// Expected 2σ coverage of a normal distribution.
pub const NORMAL_2SIGMA: f64 = 0.954_499_736_103_642;

/// `E|g| / σ` for a zero-mean normal: √(2/π).
pub const HALF_NORMAL_RATIO: f64 = 0.797_884_560_802_865;

impl DistributionSummary {
    /// Computes the summary in two passes over the data.
    pub fn from_slice(data: &[f32]) -> Self {
        let n = data.len();
        if n == 0 {
            return Self::default();
        }
        let nf = n as f64;
        let mut sum = 0.0f64;
        let mut abs_sum = 0.0f64;
        let mut zeros = 0usize;
        for &g in data {
            let g = g as f64;
            sum += g;
            abs_sum += g.abs();
            if g == 0.0 {
                zeros += 1;
            }
        }
        let mean = sum / nf;
        let (mut m2, mut m3, mut m4) = (0.0f64, 0.0f64, 0.0f64);
        for &g in data {
            let d = g as f64 - mean;
            let d2 = d * d;
            m2 += d2;
            m3 += d2 * d;
            m4 += d2 * d2;
        }
        m2 /= nf;
        m3 /= nf;
        m4 /= nf;
        let std_dev = m2.sqrt();
        let (skewness, excess_kurtosis) = if std_dev > 0.0 {
            (m3 / (std_dev * std_dev * std_dev), m4 / (m2 * m2) - 3.0)
        } else {
            (0.0, 0.0)
        };
        let (mut in1, mut in2) = (0usize, 0usize);
        if std_dev > 0.0 {
            for &g in data {
                let d = (g as f64 - mean).abs();
                if d <= std_dev {
                    in1 += 1;
                }
                if d <= 2.0 * std_dev {
                    in2 += 1;
                }
            }
        } else {
            in1 = n;
            in2 = n;
        }
        Self {
            n,
            mean,
            std_dev,
            mean_abs: abs_sum / nf,
            skewness,
            excess_kurtosis,
            within_1sigma: in1 as f64 / nf,
            within_2sigma: in2 as f64 / nf,
            zero_fraction: zeros as f64 / nf,
        }
    }

    /// `E|g| / σ`, which equals √(2/π) ≈ 0.798 when the zero-mean normal
    /// model (and hence the σ̂ estimator of §III) is exact. `None` when
    /// σ = 0.
    pub fn half_normal_ratio(&self) -> Option<f64> {
        (self.std_dev > 0.0).then(|| self.mean_abs / self.std_dev)
    }

    /// A single 0–1 normality score: 1 minus the largest relative
    /// deviation among the three checks (half-normal ratio, 1σ and 2σ
    /// coverage), clamped at 0. Values near 1 mean the normal model —
    /// and therefore the determined threshold — is trustworthy.
    pub fn normality_score(&self) -> f64 {
        let Some(ratio) = self.half_normal_ratio() else {
            return 0.0;
        };
        let d1 = (ratio - HALF_NORMAL_RATIO).abs() / HALF_NORMAL_RATIO;
        let d2 = (self.within_1sigma - NORMAL_1SIGMA).abs() / NORMAL_1SIGMA;
        let d3 = (self.within_2sigma - NORMAL_2SIGMA).abs() / NORMAL_2SIGMA;
        (1.0 - d1.max(d2).max(d3)).max(0.0)
    }

    /// Summary restricted to the non-zero entries — the relevant view
    /// after ReLU masking, where structural zeros would otherwise swamp
    /// the distribution of real gradients.
    pub fn from_nonzero(data: &[f32]) -> Self {
        let nz: Vec<f32> = data.iter().copied().filter(|&g| g != 0.0).collect();
        Self::from_slice(&nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparsetrain_tensor::init::sample_standard_normal;

    fn normal_sample(n: usize, sigma: f32, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| sample_standard_normal(&mut rng) * sigma).collect()
    }

    #[test]
    fn normal_data_scores_high() {
        let data = normal_sample(50_000, 0.1, 1);
        let s = DistributionSummary::from_slice(&data);
        assert!(s.mean.abs() < 0.002);
        assert!((s.std_dev - 0.1).abs() < 0.005);
        assert!(s.skewness.abs() < 0.05, "skew {}", s.skewness);
        assert!(s.excess_kurtosis.abs() < 0.15, "kurtosis {}", s.excess_kurtosis);
        let ratio = s.half_normal_ratio().unwrap();
        assert!((ratio - HALF_NORMAL_RATIO).abs() < 0.01);
        assert!(s.normality_score() > 0.95, "score {}", s.normality_score());
    }

    #[test]
    fn uniform_data_scores_lower_than_normal() {
        let mut rng = StdRng::seed_from_u64(2);
        let uniform: Vec<f32> = (0..50_000).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let u = DistributionSummary::from_slice(&uniform);
        // Uniform: excess kurtosis −1.2, E|g|/σ = (1/2)/(1/√3) ≈ 0.866.
        assert!(u.excess_kurtosis < -1.0);
        let n = DistributionSummary::from_slice(&normal_sample(50_000, 1.0, 3));
        assert!(u.normality_score() < n.normality_score());
    }

    #[test]
    fn empty_and_constant_inputs_are_safe() {
        let e = DistributionSummary::from_slice(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.normality_score(), 0.0);

        let c = DistributionSummary::from_slice(&[2.0; 100]);
        assert_eq!(c.std_dev, 0.0);
        assert_eq!(c.skewness, 0.0);
        assert_eq!(c.normality_score(), 0.0);
        assert_eq!(c.within_1sigma, 1.0);
    }

    #[test]
    fn zero_fraction_counts_structural_zeros() {
        let mut data = normal_sample(1000, 1.0, 4);
        for g in data.iter_mut().take(400) {
            *g = 0.0;
        }
        let s = DistributionSummary::from_slice(&data);
        assert!((s.zero_fraction - 0.4).abs() < 0.01);
        // The non-zero view removes them.
        let nz = DistributionSummary::from_nonzero(&data);
        assert_eq!(nz.zero_fraction, 0.0);
        assert_eq!(nz.n, 600);
    }

    #[test]
    fn masked_normal_recovers_normality_on_nonzero_view() {
        let mut data = normal_sample(50_000, 0.05, 5);
        for (i, g) in data.iter_mut().enumerate() {
            if i % 2 == 0 {
                *g = 0.0; // ReLU-style masking
            }
        }
        let masked = DistributionSummary::from_slice(&data);
        let unmasked = DistributionSummary::from_nonzero(&data);
        assert!(unmasked.normality_score() > masked.normality_score());
        assert!(unmasked.normality_score() > 0.9);
    }

    #[test]
    fn skewed_data_is_detected() {
        let mut rng = StdRng::seed_from_u64(6);
        // Exponential-ish: |normal| is half-normal, clearly skewed.
        let data: Vec<f32> = (0..20_000)
            .map(|_| sample_standard_normal(&mut rng).abs())
            .collect();
        let s = DistributionSummary::from_slice(&data);
        assert!(s.skewness > 0.5, "skew {}", s.skewness);
    }
}
