//! Layer-wise stochastic activation-gradient pruning (§III).
//!
//! The pipeline, per CONV layer and per batch:
//!
//! 1. **Prediction** — the pruning threshold `τ̂` for the incoming batch is
//!    the mean of a FIFO of the last `N_F` *determined* thresholds
//!    ([`ThresholdFifo`]); no pruning happens until the FIFO fills.
//! 2. **Streaming prune** — each gradient is inspected once as it is
//!    produced: values with `|g| ≥ τ̂` pass through; smaller values are
//!    stochastically snapped to `sign(g)·τ̂` (with probability `|g|/τ̂`) or
//!    zero, preserving `E[ĝ] = g` ([`stochastic`]).
//! 3. **Determination** — alongside the prune, `Σ|g|` is accumulated; at
//!    batch end it yields the unbiased normal-σ estimate and this batch's
//!    exact threshold, which is pushed into the FIFO ([`threshold`]).
//!
//! [`LayerPruner`] ties the three together (Algorithm 1 of the paper).
//!
//! The stochastic draws come from counter-based RNG streams keyed by each
//! element's training-run coordinates ([`stream`]): pruning is a pure
//! function of the gradients and the `(seed, epoch, step, site, sample,
//! offset)` ladder, bitwise-identical at every thread count and on every
//! kernel engine, and prunable batch-parallel through
//! [`LayerPruner::prune_batch_parts_on`].

pub mod diagnostics;
pub mod fifo;
pub mod normal;
pub mod predictor;
pub mod pruner;
pub mod stochastic;
pub mod stream;
pub mod threshold;

pub use diagnostics::DistributionSummary;
pub use fifo::ThresholdFifo;
pub use predictor::{EmaPredictor, FifoPredictor, LastValuePredictor, ThresholdPredictor};
pub use pruner::{shard_prune_parts_on, LayerPruner, PruneConfig, PruneStats, PrunerSnapshot, SiteStats};
pub use stochastic::{prune_slice, prune_slice_at, PruneOutcome};
pub use stream::{BatchStream, StepStreams, StreamSeeds, SHARD_DOMAIN};
pub use threshold::{determine_threshold, sigma_hat, threshold_from_slice};
