//! Standard-normal distribution functions.
//!
//! Implemented locally (Acklam's inverse-CDF approximation and an
//! error-function based CDF) so the workspace needs no statistics crate.

/// Cumulative distribution function Φ of the standard normal distribution.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (|error| < 1.5e-7), adequate for threshold arithmetic.
///
/// ```
/// use sparsetrain_core::prune::normal::phi;
/// assert!((phi(0.0) - 0.5).abs() < 1e-7);
/// assert!(phi(3.0) > 0.998);
/// ```
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function `erf(x)` via Abramowitz–Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Inverse CDF (quantile function) Φ⁻¹ of the standard normal distribution,
/// using Peter Acklam's rational approximation (|relative error| < 1.15e-9).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// ```
/// use sparsetrain_core::prune::normal::phi_inv;
/// assert!((phi_inv(0.5)).abs() < 1e-9);
/// assert!((phi_inv(0.975) - 1.959964).abs() < 1e-4);
/// ```
pub fn phi_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "phi_inv requires p in (0, 1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!((phi(1.0) - 0.8413447).abs() < 1e-5);
        assert!((phi(-1.0) - 0.1586553).abs() < 1e-5);
        assert!((phi(1.959964) - 0.975).abs() < 1e-5);
    }

    #[test]
    fn phi_inv_known_values() {
        assert!((phi_inv(0.5)).abs() < 1e-9);
        assert!((phi_inv(0.8413447) - 1.0).abs() < 1e-4);
        assert!((phi_inv(0.975) - 1.959964).abs() < 1e-5);
        assert!((phi_inv(0.995) - 2.575829).abs() < 1e-5);
    }

    #[test]
    fn phi_inv_extreme_tails() {
        assert!(phi_inv(1e-6) < -4.5);
        assert!(phi_inv(1.0 - 1e-6) > 4.5);
    }

    #[test]
    fn phi_and_phi_inv_are_inverses() {
        for &p in &[0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = phi_inv(p);
            assert!((phi(x) - p).abs() < 1e-6, "roundtrip failed at p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0, 1)")]
    fn phi_inv_rejects_zero() {
        let _ = phi_inv(0.0);
    }

    #[test]
    fn erf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }
}
