//! The stochastic pruning rule (§III-A, Fig. 3).
//!
//! A gradient with `|g| < τ` cannot simply be zeroed in bulk — that shifts
//! the gradient distribution and hurts convergence. Instead it is snapped to
//! `sign(g)·τ` with probability `|g|/τ` and to `0` otherwise, which keeps
//! `E[ĝ] = (|g|/τ)·sign(g)·τ = g` — the update is unbiased.
//!
//! Two implementations of the rule live here, differing only in where the
//! random draw comes from:
//!
//! * [`prune_slice_at`] — the production path: each element's draw is read
//!   from a counter-based stream ([`rand::stream::StreamKey`]) at that
//!   element's position, so results are independent of visitation order
//!   and thread count (see [`crate::prune::stream`]).
//! * [`prune_slice`] — the element-order reference mirroring the hardware
//!   PPU, whose LFSR lanes hand one draw per *non-zero sub-threshold*
//!   value in stream order. Order-dependent by design; used by the
//!   simulator cross-checks and statistical property tests.

use rand::stream::StreamKey;
use rand::Rng;

/// Outcome counts of one pruning pass, for instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneOutcome {
    /// Values left untouched (`|g| ≥ τ`).
    pub kept: usize,
    /// Values snapped to `±τ`.
    pub snapped: usize,
    /// Values set to zero.
    pub zeroed: usize,
}

impl PruneOutcome {
    /// Total number of values inspected.
    pub fn total(&self) -> usize {
        self.kept + self.snapped + self.zeroed
    }

    /// Density of the pruned output (non-zero fraction), counting inputs
    /// that were already zero as zeros. Returns 1.0 for an empty pass.
    pub fn density(&self, already_zero: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        (self.kept + self.snapped - already_zero.min(self.kept)) as f64 / total as f64
    }
}

/// Applies the stochastic pruning rule to every element of `grads` with
/// threshold `tau`, in place. Returns the outcome counts.
///
/// `tau <= 0` disables pruning (everything is kept).
///
/// Exact zeros are counted as `zeroed` (they stay zero and never consume a
/// random draw, matching the hardware, which only sees non-zero gradients
/// in the compressed stream).
///
/// ```
/// use sparsetrain_core::prune::prune_slice;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut g = vec![0.5, -0.001, 0.0008, 2.0];
/// let out = prune_slice(&mut g, 0.01, &mut StdRng::seed_from_u64(0));
/// assert_eq!(out.kept, 2);               // 0.5 and 2.0 pass through
/// assert_eq!(out.snapped + out.zeroed, 2);
/// for &v in &g {
///     assert!(v == 0.0 || v.abs() >= 0.01 - 1e-9 || v == 0.5 || v == 2.0);
/// }
/// ```
pub fn prune_slice<R: Rng + ?Sized>(grads: &mut [f32], tau: f64, rng: &mut R) -> PruneOutcome {
    let mut outcome = PruneOutcome::default();
    if tau <= 0.0 {
        outcome.kept = grads.iter().filter(|&&g| g != 0.0).count();
        outcome.zeroed = grads.len() - outcome.kept;
        return outcome;
    }
    let tau_f = tau as f32;
    for g in grads.iter_mut() {
        let a = g.abs();
        if *g == 0.0 {
            outcome.zeroed += 1;
        } else if (a as f64) < tau {
            // r ~ U[0,1): keep ±τ iff |g| > τ·r  ⇔  with probability |g|/τ.
            let r: f64 = rng.gen();
            if (a as f64) > tau * r {
                *g = if *g > 0.0 { tau_f } else { -tau_f };
                outcome.snapped += 1;
            } else {
                *g = 0.0;
                outcome.zeroed += 1;
            }
        } else {
            outcome.kept += 1;
        }
    }
    outcome
}

/// Applies the stochastic pruning rule to every element of `grads` with
/// threshold `tau`, in place, drawing each element's randomness from the
/// counter-based stream `key` at position `offset + index`. Returns the
/// outcome counts.
///
/// Because the draw for an element is a pure function of `(key, position)`,
/// the result is independent of visitation order: pruning a slice whole,
/// in arbitrary sub-slices (with matching offsets), or banded across
/// threads produces bitwise-identical gradients. `tau <= 0` disables
/// pruning, and exact zeros stay zero, exactly as in [`prune_slice`].
///
/// Draws are read in fixed-width runs through
/// [`StreamKey::fill_uniform_at`], which folds the Philox key schedule
/// once per run instead of once per element; a run's buffer is only
/// filled when one of its elements actually needs a draw, and each
/// element still reads the draw at its own position (the f32 rounding of
/// the stream's 53-bit uniform), so any partition of the element space
/// keeps producing identical results.
///
/// ```
/// use sparsetrain_core::prune::prune_slice_at;
/// use rand::stream::StreamKey;
///
/// let key = StreamKey::new(0);
/// let mut whole = vec![0.5, -0.001, 0.0008, 2.0];
/// let out = prune_slice_at(&mut whole, 0.01, key, 0);
/// assert_eq!(out.kept, 2); // 0.5 and 2.0 pass through
///
/// // Any partition with matching offsets reproduces the whole-slice prune.
/// let mut parts = vec![0.5, -0.001, 0.0008, 2.0];
/// let (head, tail) = parts.split_at_mut(2);
/// prune_slice_at(head, 0.01, key, 0);
/// prune_slice_at(tail, 0.01, key, 2);
/// assert_eq!(parts, whole);
/// ```
pub fn prune_slice_at(grads: &mut [f32], tau: f64, key: StreamKey, offset: u64) -> PruneOutcome {
    let mut outcome = PruneOutcome::default();
    if tau <= 0.0 {
        outcome.kept = grads.iter().filter(|&&g| g != 0.0).count();
        outcome.zeroed = grads.len() - outcome.kept;
        return outcome;
    }
    let tau_f = tau as f32;
    // One run of buffered draws per fixed-width chunk: the chunk size is a
    // multiple of the engine lane width, so lane-aligned banded callers
    // fill whole runs.
    const RUN: usize = 64;
    let mut draws = [0.0f32; RUN];
    for (run, chunk) in grads.chunks_mut(RUN).enumerate() {
        let base = offset.wrapping_add((run * RUN) as u64);
        let len = chunk.len();
        let mut filled = false;
        for (i, g) in chunk.iter_mut().enumerate() {
            let a = g.abs();
            if *g == 0.0 {
                outcome.zeroed += 1;
            } else if (a as f64) < tau {
                if !filled {
                    key.fill_uniform_at(base, &mut draws[..len]);
                    filled = true;
                }
                // r ~ U[0,1) at this element's stream position: keep ±τ
                // iff |g| > τ·r ⇔ with probability |g|/τ.
                let r = draws[i] as f64;
                if (a as f64) > tau * r {
                    *g = if *g > 0.0 { tau_f } else { -tau_f };
                    outcome.snapped += 1;
                } else {
                    *g = 0.0;
                    outcome.zeroed += 1;
                }
            } else {
                outcome.kept += 1;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_tau_keeps_everything() {
        let mut g = vec![0.1, -0.2, 0.0];
        let out = prune_slice(&mut g, 0.0, &mut StdRng::seed_from_u64(0));
        assert_eq!(g, vec![0.1, -0.2, 0.0]);
        assert_eq!(out.kept, 2);
        assert_eq!(out.zeroed, 1);
    }

    #[test]
    fn large_values_pass_through() {
        let mut g = vec![1.0, -1.0];
        let out = prune_slice(&mut g, 0.5, &mut StdRng::seed_from_u64(0));
        assert_eq!(g, vec![1.0, -1.0]);
        assert_eq!(out.kept, 2);
    }

    #[test]
    fn small_values_become_zero_or_tau() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 1e-5).collect();
        prune_slice(&mut g, 0.01, &mut rng);
        for &v in &g {
            assert!(
                v == 0.0 || (v.abs() - 0.01).abs() < 1e-9,
                "value {v} is neither 0 nor ±τ"
            );
        }
    }

    #[test]
    fn signs_are_preserved_when_snapped() {
        let mut rng = StdRng::seed_from_u64(1);
        // Values just below τ snap with high probability; check sign.
        let mut g = vec![0.0099f32; 50];
        g.extend(vec![-0.0099f32; 50]);
        prune_slice(&mut g, 0.01, &mut rng);
        for (i, &v) in g.iter().enumerate() {
            if v != 0.0 {
                if i < 50 {
                    assert!(v > 0.0);
                } else {
                    assert!(v < 0.0);
                }
            }
        }
    }

    #[test]
    fn expectation_is_preserved() {
        // The core unbiasedness property: E[ĝ] = g.
        let mut rng = StdRng::seed_from_u64(7);
        let g0 = 0.003f32;
        let tau = 0.01f64;
        let n = 200_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let mut g = [g0];
            prune_slice(&mut g, tau, &mut rng);
            sum += g[0] as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - g0 as f64).abs() < 2e-4, "E[pruned] = {mean}, want {g0}");
    }

    #[test]
    fn snap_probability_matches_ratio() {
        let mut rng = StdRng::seed_from_u64(11);
        let tau = 0.01f64;
        let g0 = 0.007f32; // expect snapped with prob 0.7
        let n = 100_000;
        let mut g: Vec<f32> = vec![g0; n];
        let out = prune_slice(&mut g, tau, &mut rng);
        let frac = out.snapped as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.01, "snap fraction {frac}, want 0.7");
    }

    #[test]
    fn stream_prune_matches_rule_semantics() {
        let key = StreamKey::new(42);
        let mut g: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 1e-5).collect();
        let out = prune_slice_at(&mut g, 0.01, key, 0);
        assert_eq!(out.total(), 1000);
        for &v in &g {
            assert!(
                v == 0.0 || (v.abs() - 0.01).abs() < 1e-9,
                "value {v} is neither 0 nor ±τ"
            );
        }
    }

    #[test]
    fn stream_prune_is_order_independent() {
        let key = StreamKey::new(7).derive(3);
        let base: Vec<f32> = (0..512).map(|i| ((i * 37 % 101) as f32 - 50.0) * 2e-4).collect();
        let mut whole = base.clone();
        prune_slice_at(&mut whole, 0.008, key, 0);
        for split in [1usize, 100, 256, 511] {
            let mut parts = base.clone();
            let (head, tail) = parts.split_at_mut(split);
            let a = prune_slice_at(head, 0.008, key, 0);
            let b = prune_slice_at(tail, 0.008, key, split as u64);
            assert_eq!(parts, whole, "split at {split} diverged");
            assert_eq!(a.total() + b.total(), 512);
        }
    }

    #[test]
    fn stream_prune_zero_tau_and_zeros() {
        let key = StreamKey::new(0);
        let mut g = vec![0.1, -0.2, 0.0];
        let out = prune_slice_at(&mut g, 0.0, key, 0);
        assert_eq!(g, vec![0.1, -0.2, 0.0]);
        assert_eq!((out.kept, out.zeroed), (2, 1));
        // Exact zeros never flip, whatever their stream position says.
        let mut z = vec![0.0f32; 64];
        let out = prune_slice_at(&mut z, 0.5, key, 0);
        assert_eq!(out.zeroed, 64);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stream_snap_probability_matches_ratio() {
        // P[snap] = |g|/τ, element-wise over distinct stream positions.
        let key = StreamKey::new(11).derive(1);
        let tau = 0.01f64;
        let g0 = 0.007f32;
        let n = 100_000;
        let mut g = vec![g0; n];
        let out = prune_slice_at(&mut g, tau, key, 0);
        let frac = out.snapped as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.01, "snap fraction {frac}, want 0.7");
    }

    #[test]
    fn outcome_total_and_density() {
        let out = PruneOutcome {
            kept: 5,
            snapped: 3,
            zeroed: 2,
        };
        assert_eq!(out.total(), 10);
        assert_eq!(out.density(0), 0.8);
    }

    #[test]
    fn empty_slice_is_noop() {
        let mut g: Vec<f32> = Vec::new();
        let out = prune_slice(&mut g, 0.1, &mut StdRng::seed_from_u64(0));
        assert_eq!(out.total(), 0);
        assert_eq!(out.density(0), 1.0);
    }
}
