//! The stream-derivation ladder for deterministic stochastic pruning.
//!
//! Algorithm 1's keep/snap decisions are random, and where that randomness
//! comes from decides what the trainer can parallelise. A shared
//! sequential generator consumed in element order (the original design)
//! serialises the whole pruning stage *and* couples every draw to every
//! draw before it — visiting elements in a different order, banding them
//! across threads, or dropping one sample from a batch changes every
//! subsequent decision.
//!
//! This module replaces that with counter-based streams
//! ([`rand::stream::StreamKey`], Philox 2×64-10): every pruned element's
//! draw is a pure function of its *coordinates* in the training run,
//! derived along a fixed ladder:
//!
//! ```text
//! seed ─▶ epoch ─▶ step ─▶ site (layer name) ─▶ sample ─▶ element offset
//!        [StreamSeeds]      [StepStreams]     [BatchStream]  (counter)
//! ```
//!
//! Consequences, all by construction rather than by careful locking:
//!
//! * **Thread-count invariance** — banding the element space across any
//!   number of workers is bitwise-identical to the sequential visit.
//! * **Engine invariance** — every [`sparsetrain_sparse::KernelEngine`]
//!   produces the same pruned tensors, because none of them can reorder a
//!   draw's coordinates.
//! * **Sample independence** — with the [`BatchStream::per_sample`]
//!   layout, removing a sample from a batch leaves every other sample's
//!   pruning decisions untouched.
//!
//! [`BatchStream::contiguous`] instead strings the parts of one *logical
//! vector* onto a single stream, making `prune_batch_parts` invariant to
//! how the vector is split into parts.

use rand::stream::StreamKey;

/// Domain separator folded under the run seed, so pruning draws can never
/// collide with another consumer of the same seed (data shuffling, weight
/// init, …).
const PRUNE_DOMAIN: u64 = 0x0050_5255_4E45;

/// Domain separator for shard-coordinator scheduling draws ("SHARD" in
/// ASCII). Disjoint from the private `PRUNE_DOMAIN` and from the faults crate's
/// `FAULT` domain, so a coordinator consuming scheduling randomness can
/// never collide with (and therefore never perturb) a pruning or fault
/// draw made under the same run seed. Scheduling draws only ever decide
/// *where* work runs; the fixed-order reduction keeps results invariant
/// to them.
pub const SHARD_DOMAIN: u64 = 0x0053_4841_5244;

/// The trainer-owned root of the ladder: run seed plus the epoch/step
/// counters that advance as training proceeds.
///
/// ```
/// use sparsetrain_core::prune::StreamSeeds;
///
/// let mut seeds = StreamSeeds::new(7);
/// let first = seeds.streams();
/// seeds.advance_step();
/// assert_ne!(first.key(), seeds.streams().key(), "each step is a new stream");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSeeds {
    seed: u64,
    epoch: u64,
    step: u64,
}

impl StreamSeeds {
    /// A fresh ladder at epoch 0, step 0.
    pub const fn new(seed: u64) -> Self {
        Self {
            seed,
            epoch: 0,
            step: 0,
        }
    }

    /// A ladder restored to an arbitrary position (checkpoint resume).
    pub const fn at(seed: u64, epoch: u64, step: u64) -> Self {
        Self { seed, epoch, step }
    }

    /// The run seed.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// The current epoch index.
    pub const fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current step (batch) index; monotone across epochs.
    pub const fn step(&self) -> u64 {
        self.step
    }

    /// Advances to the next optimizer step.
    pub fn advance_step(&mut self) {
        self.step += 1;
    }

    /// Advances to the next epoch.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The stream coordinates of the current step.
    pub const fn streams(&self) -> StepStreams {
        StepStreams::new(self.seed, self.epoch, self.step)
    }
}

/// The stream coordinates of one optimizer step: every pruning site
/// (layer) derives its per-sample streams from this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStreams {
    key: StreamKey,
    sample_base: u64,
}

impl StepStreams {
    /// Coordinates for `(seed, epoch, step)`.
    pub const fn new(seed: u64, epoch: u64, step: u64) -> Self {
        Self {
            key: StreamKey::new(seed)
                .derive(PRUNE_DOMAIN)
                .derive(epoch)
                .derive(step),
            sample_base: 0,
        }
    }

    /// Coordinates from an already-derived key (tests, custom ladders).
    pub const fn from_key(key: StreamKey) -> Self {
        Self { key, sample_base: 0 }
    }

    /// The same step coordinates, with every site's batch stream shifted
    /// by `base` parts: part `i` of a site stream draws exactly what part
    /// `base + i` draws on the unshifted stream. This is how a shard
    /// worker processing samples `[base, base + n)` of the global batch
    /// reproduces the whole-batch pruning draws bitwise while only
    /// holding its own slice.
    pub const fn with_sample_base(self, base: u64) -> Self {
        Self {
            key: self.key,
            sample_base: base,
        }
    }

    /// The part shift applied to every site stream (0 unless constructed
    /// via [`StepStreams::with_sample_base`]).
    pub const fn sample_base(&self) -> u64 {
        self.sample_base
    }

    /// This step's derived key.
    pub const fn key(&self) -> StreamKey {
        self.key
    }

    /// The per-sample batch stream of one pruning site, identified by its
    /// stable layer name.
    pub fn site(&self, name: &str) -> BatchStream {
        BatchStream::per_sample(self.key.derive_str(name)).with_base(self.sample_base)
    }
}

/// How a [`BatchStream`] lays its parts out over RNG streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamLayout {
    /// Each part is an independent sample: part `s` draws from the derived
    /// key `key.derive(s)` at its own offsets `0..len`. Dropping or
    /// reordering parts never changes another part's draws.
    PerSample,
    /// The parts are a partition of one logical vector: all parts share
    /// one key, and a part's draws start at the number of elements before
    /// it. Any partition of the vector produces identical draws.
    Contiguous,
}

/// The random streams of one pruned batch, mapping each part of the batch
/// to a `(key, base offset)` position in the key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStream {
    key: StreamKey,
    layout: StreamLayout,
    base: u64,
}

impl BatchStream {
    /// One independent stream per part (part = one sample's tensor) — the
    /// training layout: part `s` draws from `key.derive(s)` at offsets
    /// `0..len`, so dropping or reordering parts never changes another
    /// part's draws.
    pub const fn per_sample(key: StreamKey) -> Self {
        Self {
            key,
            layout: StreamLayout::PerSample,
            base: 0,
        }
    }

    /// One stream strung across all parts (parts = a split of one logical
    /// gradient vector), invariant to the choice of split points.
    pub const fn contiguous(key: StreamKey) -> Self {
        Self {
            key,
            layout: StreamLayout::Contiguous,
            base: 0,
        }
    }

    /// The same stream, shifted so that local part `i` occupies the
    /// position that part/element `base + i` holds on the unshifted
    /// stream. Units follow the layout: per-sample streams shift by
    /// *parts* (samples); contiguous streams shift by *elements*. A
    /// worker handed a slice of a larger batch uses this to draw exactly
    /// what the whole-batch run draws for those positions.
    pub const fn with_base(self, base: u64) -> Self {
        Self {
            key: self.key,
            layout: self.layout,
            base,
        }
    }

    /// The underlying batch key.
    pub const fn key(&self) -> StreamKey {
        self.key
    }

    /// The part/element shift (0 unless constructed via
    /// [`BatchStream::with_base`]).
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// The `(stream key, base offset)` of part `index`, given the total
    /// element count of all earlier parts.
    pub fn part(&self, index: usize, elements_before: u64) -> (StreamKey, u64) {
        match self.layout {
            StreamLayout::PerSample => (self.key.derive(self.base + index as u64), 0),
            StreamLayout::Contiguous => (self.key, self.base + elements_before),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_components_all_matter() {
        let base = StepStreams::new(1, 2, 3).key();
        assert_ne!(base, StepStreams::new(9, 2, 3).key());
        assert_ne!(base, StepStreams::new(1, 9, 3).key());
        assert_ne!(base, StepStreams::new(1, 2, 9).key());
        let step = StepStreams::new(1, 2, 3);
        assert_ne!(step.site("conv1").key(), step.site("conv2").key());
    }

    #[test]
    fn seeds_advance_independently() {
        let mut seeds = StreamSeeds::new(0);
        let s0 = seeds.streams();
        seeds.advance_step();
        let s1 = seeds.streams();
        seeds.advance_epoch();
        let s2 = seeds.streams();
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_eq!(seeds.step(), 1);
        assert_eq!(seeds.epoch(), 1);
        assert_eq!(StreamSeeds::new(0).streams(), s0, "ladder is pure");
    }

    #[test]
    fn per_sample_parts_ignore_position() {
        let b = BatchStream::per_sample(StreamKey::new(5));
        let (k0, o0) = b.part(0, 0);
        let (k0_again, _) = b.part(0, 999);
        assert_eq!(k0, k0_again, "per-sample keys must not depend on earlier parts");
        assert_eq!(o0, 0);
        assert_ne!(k0, b.part(1, 0).0);
    }

    #[test]
    fn sample_base_shifts_per_sample_parts() {
        let step = StepStreams::new(1, 2, 3);
        let whole = step.site("conv1");
        let shifted = step.with_sample_base(5).site("conv1");
        assert_eq!(shifted.part(0, 0), whole.part(5, 0));
        assert_eq!(shifted.part(2, 0), whole.part(7, 0));
        assert_eq!(step.sample_base(), 0);
        assert_eq!(step.with_sample_base(5).sample_base(), 5);
    }

    #[test]
    fn element_base_shifts_contiguous_parts() {
        let whole = BatchStream::contiguous(StreamKey::new(5));
        let shifted = whole.with_base(64);
        assert_eq!(shifted.part(0, 0), whole.part(0, 64));
        assert_eq!(shifted.part(1, 32), whole.part(1, 96));
        assert_eq!(whole.base(), 0);
        assert_eq!(shifted.base(), 64);
    }

    #[test]
    fn contiguous_parts_share_key_and_advance_offset() {
        let b = BatchStream::contiguous(StreamKey::new(5));
        let (k0, o0) = b.part(0, 0);
        let (k1, o1) = b.part(1, 128);
        assert_eq!(k0, k1);
        assert_eq!(o0, 0);
        assert_eq!(o1, 128);
    }
}
