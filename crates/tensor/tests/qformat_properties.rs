//! Property tests for the Q-format quantization layer.

use proptest::prelude::*;
use sparsetrain_tensor::qformat::QFormat;

proptest! {
    #[test]
    fn roundtrip_error_is_within_half_lsb_in_range(
        frac in 0u32..=15,
        values in prop::collection::vec(-100.0f32..100.0, 1..200),
    ) {
        let q = QFormat::new(frac);
        let limit = q.max_value();
        for &v in &values {
            if v.abs() <= limit {
                let e = (q.roundtrip(v) - v).abs();
                prop_assert!(
                    e <= q.epsilon() / 2.0 + f32::EPSILON,
                    "value {v} error {e} at {q}"
                );
            }
        }
    }

    #[test]
    fn quantization_is_idempotent(
        frac in 0u32..=15,
        values in prop::collection::vec(-1000.0f32..1000.0, 1..100),
    ) {
        let q = QFormat::new(frac);
        let mut once = values.clone();
        q.roundtrip_slice(&mut once);
        let mut twice = once.clone();
        q.roundtrip_slice(&mut twice);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn quantization_preserves_sign_and_order(
        frac in 4u32..=15,
        a in -10.0f32..10.0,
        b in -10.0f32..10.0,
    ) {
        let q = QFormat::new(frac);
        prop_assume!(a.abs() <= q.max_value() && b.abs() <= q.max_value());
        // Monotone: a ≤ b ⇒ Q(a) ≤ Q(b).
        if a <= b {
            prop_assert!(q.roundtrip(a) <= q.roundtrip(b));
        }
        // Sign-preserving up to one LSB of wobble around zero.
        if a.abs() > q.epsilon() {
            prop_assert_eq!(q.roundtrip(a).signum(), a.signum());
        }
    }

    #[test]
    fn best_for_never_saturates(values in prop::collection::vec(-1e4f32..1e4, 1..200)) {
        let q = QFormat::best_for(&values);
        let err = q.roundtrip_error(&values);
        prop_assert_eq!(err.saturated, 0);
    }

    #[test]
    fn best_for_is_locally_optimal(values in prop::collection::vec(-100.0f32..100.0, 1..100)) {
        let q = QFormat::best_for(&values);
        prop_assume!(values.iter().any(|&v| v != 0.0));
        // One more fractional bit must saturate (otherwise best_for
        // should have chosen it).
        if q.frac_bits() < 15 {
            let finer = QFormat::new(q.frac_bits() + 1);
            prop_assert!(finer.roundtrip_error(&values).saturated > 0);
        }
    }

    #[test]
    fn saturation_clamps_to_range(frac in 0u32..=15, v in 1e5f32..1e9) {
        let q = QFormat::new(frac);
        prop_assert_eq!(q.roundtrip(v), q.max_value());
        prop_assert!(q.roundtrip(-v) <= -q.max_value());
    }
}
