//! Density and moment statistics used across the workspace.
//!
//! "Density" (`ρ_nnz` in the paper's Table II) is the fraction of non-zero
//! elements in a tensor; the pruning algorithm's goal is to drive it down
//! for activation gradients.

/// Fraction of non-zero elements in `data` (1.0 for an empty slice,
/// matching the convention that an absent tensor is dense).
///
/// ```
/// use sparsetrain_tensor::stats::density;
/// assert_eq!(density(&[0.0, 1.0, 0.0, 2.0]), 0.5);
/// ```
pub fn density(data: &[f32]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let nnz = data.iter().filter(|&&v| v != 0.0).count();
    nnz as f64 / data.len() as f64
}

/// Number of non-zero elements in `data`.
pub fn nnz(data: &[f32]) -> usize {
    data.iter().filter(|&&v| v != 0.0).count()
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(data: &[f32]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64
}

/// Mean of absolute values (0.0 for an empty slice).
///
/// This is the statistic the PPU accumulates on-line to estimate σ̂ for
/// threshold determination.
pub fn mean_abs(data: &[f32]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().map(|&v| (v as f64).abs()).sum::<f64>() / data.len() as f64
}

/// Population variance (0.0 for an empty slice).
pub fn variance(data: &[f32]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_of_all_zero() {
        assert_eq!(density(&[0.0; 8]), 0.0);
    }

    #[test]
    fn density_of_dense() {
        assert_eq!(density(&[1.0, -2.0, 3.0]), 1.0);
    }

    #[test]
    fn density_empty_is_one() {
        assert_eq!(density(&[]), 1.0);
    }

    #[test]
    fn nnz_counts() {
        assert_eq!(nnz(&[0.0, 1.0, 0.0, -0.5]), 2);
    }

    #[test]
    fn mean_and_variance_known() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&d), 2.5);
        assert_eq!(variance(&d), 1.25);
    }

    #[test]
    fn mean_abs_ignores_sign() {
        assert_eq!(mean_abs(&[-1.0, 1.0, -3.0, 3.0]), 2.0);
    }
}
