//! Runtime-selected Q-format quantization and headroom analysis.
//!
//! [`crate::fixed::Fixed16`] fixes the fractional bit count at compile
//! time; hardware design-space exploration needs the *runtime* question:
//! for this tensor's value distribution, which 16-bit Q-format keeps
//! saturation and rounding error simultaneously negligible? This module
//! answers it with [`QFormat::best_for`] and quantifies the cost of any
//! choice with [`QuantError`] — the evidence behind the paper's 16-bit
//! datapath (its RTL computes in 16-bit fixed point while the reference
//! training runs in float).
//!
//! # Example
//!
//! ```
//! use sparsetrain_tensor::qformat::QFormat;
//!
//! let activations: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
//! let q = QFormat::best_for(&activations);
//! let err = q.roundtrip_error(&activations);
//! assert!(err.max_abs <= q.epsilon() / 2.0 + 1e-9);
//! assert_eq!(err.saturated, 0);
//! ```

use std::fmt;

/// A signed 16-bit fixed-point format `Q(15−f).f` with `f` fractional
/// bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    frac_bits: u32,
}

impl QFormat {
    /// Creates a format with `frac_bits` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 15` (sign bit must remain).
    pub const fn new(frac_bits: u32) -> Self {
        assert!(frac_bits <= 15, "frac_bits must be <= 15");
        Self { frac_bits }
    }

    /// The paper-typical activation format Q7.8.
    pub const fn q8_8() -> Self {
        Self::new(8)
    }

    /// Fractional bit count.
    pub const fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Smallest representable increment.
    pub fn epsilon(&self) -> f32 {
        1.0 / (1u32 << self.frac_bits) as f32
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        i16::MAX as f32 * self.epsilon()
    }

    /// Quantizes one value, saturating at the range limits.
    pub fn quantize(&self, v: f32) -> i16 {
        let scaled = (v / self.epsilon()).round();
        scaled.clamp(i16::MIN as f32, i16::MAX as f32) as i16
    }

    /// Dequantizes a raw value.
    pub fn dequantize(&self, bits: i16) -> f32 {
        bits as f32 * self.epsilon()
    }

    /// Quantizes then dequantizes — the value the 16-bit datapath
    /// actually computes with.
    pub fn roundtrip(&self, v: f32) -> f32 {
        self.dequantize(self.quantize(v))
    }

    /// Quantizes a slice into raw 16-bit values.
    pub fn quantize_slice(&self, values: &[f32]) -> Vec<i16> {
        values.iter().map(|&v| self.quantize(v)).collect()
    }

    /// Applies the roundtrip in place (simulating a fixed-point store).
    pub fn roundtrip_slice(&self, values: &mut [f32]) {
        for v in values.iter_mut() {
            *v = self.roundtrip(*v);
        }
    }

    /// Measures the quantization error this format inflicts on `values`.
    pub fn roundtrip_error(&self, values: &[f32]) -> QuantError {
        let mut err = QuantError::default();
        if values.is_empty() {
            return err;
        }
        let limit = self.max_value();
        let mut sq_sum = 0.0f64;
        for &v in values {
            if v.abs() > limit {
                err.saturated += 1;
            }
            let e = (self.roundtrip(v) - v).abs();
            err.max_abs = err.max_abs.max(e);
            sq_sum += (e as f64) * (e as f64);
        }
        err.rms = (sq_sum / values.len() as f64).sqrt();
        err
    }

    /// Chooses the format with the most fractional bits whose range still
    /// covers every value (no saturation) — maximum precision at full
    /// headroom. Falls back to Q0.15 for all-zero or empty input.
    pub fn best_for(values: &[f32]) -> QFormat {
        let peak = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for frac in (0..=15u32).rev() {
            let q = QFormat::new(frac);
            if peak <= q.max_value() {
                return q;
            }
        }
        QFormat::new(0)
    }

    /// Signal-to-quantization-noise ratio over `values`, in dB
    /// (`None` for empty or all-zero input, or when error is exactly 0).
    pub fn sqnr_db(&self, values: &[f32]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        let signal: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() / values.len() as f64;
        if signal == 0.0 {
            return None;
        }
        let err = self.roundtrip_error(values);
        let noise = err.rms * err.rms;
        if noise == 0.0 {
            return None;
        }
        Some(10.0 * (signal / noise).log10())
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", 15 - self.frac_bits, self.frac_bits)
    }
}

/// Error introduced by quantizing a value set under one [`QFormat`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QuantError {
    /// Largest absolute round-trip error.
    pub max_abs: f32,
    /// Root-mean-square round-trip error.
    pub rms: f64,
    /// Values that exceeded the representable range (clipped).
    pub saturated: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_roundtrip_exactly() {
        let q = QFormat::q8_8();
        for v in [0.0f32, 1.0, -1.0, 0.5, 127.996_09, -128.0] {
            assert_eq!(q.roundtrip(v), v, "value {v}");
        }
    }

    #[test]
    fn rounding_error_is_bounded_by_half_epsilon() {
        let q = QFormat::new(10);
        let values: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.00317).sin() * 10.0).collect();
        let err = q.roundtrip_error(&values);
        assert!(err.max_abs <= q.epsilon() / 2.0 + f32::EPSILON);
        assert_eq!(err.saturated, 0);
    }

    #[test]
    fn saturation_is_counted_and_clipped() {
        let q = QFormat::new(12); // range ±8
        let values = [100.0f32, -50.0, 1.0];
        let err = q.roundtrip_error(&values);
        assert_eq!(err.saturated, 2);
        assert_eq!(q.roundtrip(100.0), q.max_value());
    }

    #[test]
    fn best_for_maximizes_precision_without_saturation() {
        // Peak 3.2 fits Q2.13's ±4.0 range but not Q1.14's ±2.0.
        let values = [3.2f32, -1.0, 0.01];
        let q = QFormat::best_for(&values);
        assert_eq!(q.frac_bits(), 13);
        assert_eq!(q.roundtrip_error(&values).saturated, 0);
        let finer = QFormat::new(14);
        assert!(finer.roundtrip_error(&values).saturated > 0);
    }

    #[test]
    fn best_for_degenerate_inputs() {
        assert_eq!(QFormat::best_for(&[]).frac_bits(), 15);
        assert_eq!(QFormat::best_for(&[0.0, 0.0]).frac_bits(), 15);
        // A huge value forces the coarsest format (and still saturates).
        let q = QFormat::best_for(&[1e9]);
        assert_eq!(q.frac_bits(), 0);
    }

    #[test]
    fn finer_formats_have_higher_sqnr() {
        let values: Vec<f32> = (0..2000).map(|i| ((i * 29) % 97) as f32 / 97.0 - 0.5).collect();
        let coarse = QFormat::new(6).sqnr_db(&values).unwrap();
        let fine = QFormat::new(12).sqnr_db(&values).unwrap();
        assert!(fine > coarse + 20.0, "fine {fine} dB vs coarse {coarse} dB");
        // Rule of thumb: ~6 dB per bit; 6 extra bits ≈ 36 dB.
        assert!((fine - coarse - 36.0).abs() < 6.0);
    }

    #[test]
    fn sqnr_none_for_degenerate_inputs() {
        let q = QFormat::q8_8();
        assert_eq!(q.sqnr_db(&[]), None);
        assert_eq!(q.sqnr_db(&[0.0; 4]), None);
        // Exactly representable values → zero noise → None.
        assert_eq!(q.sqnr_db(&[1.0, 2.0]), None);
    }

    #[test]
    fn display_names_the_format() {
        assert_eq!(QFormat::q8_8().to_string(), "Q7.8");
        assert_eq!(QFormat::new(15).to_string(), "Q0.15");
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn sixteen_frac_bits_panics() {
        let _ = QFormat::new(16);
    }

    #[test]
    fn quantize_slice_matches_scalar_path() {
        let q = QFormat::new(8);
        let values = [0.1f32, -0.2, 3.0];
        let bits = q.quantize_slice(&values);
        for (b, v) in bits.iter().zip(values.iter()) {
            assert_eq!(*b, q.quantize(*v));
        }
    }

    #[test]
    fn roundtrip_slice_is_idempotent() {
        let q = QFormat::new(9);
        let mut a: Vec<f32> = (0..64).map(|i| (i as f32).cos()).collect();
        q.roundtrip_slice(&mut a);
        let snapshot = a.clone();
        q.roundtrip_slice(&mut a);
        assert_eq!(a, snapshot, "second roundtrip must be exact");
    }
}
