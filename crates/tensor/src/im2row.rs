//! im2row-lowered convolution — a faster functional path for training.
//!
//! The naive reference in [`crate::conv`] is the ground truth; this module
//! lowers the forward convolution to a patch-matrix × kernel-matrix product
//! with better locality, and is verified against the reference. The
//! training framework uses it to keep CPU experiment times reasonable; the
//! accelerator never sees it (its dataflow is the row decomposition in
//! `sparsetrain-sparse`).

use crate::conv::ConvGeometry;
use crate::tensor::{Tensor3, Tensor4};

/// Forward convolution via im2row lowering.
///
/// Identical results to [`crate::conv::forward`] up to f32 summation order.
///
/// # Panics
///
/// Panics on the same shape mismatches as the reference.
pub fn forward(input: &Tensor3, weights: &Tensor4, bias: Option<&[f32]>, geom: ConvGeometry) -> Tensor3 {
    let (c, h, w) = input.shape();
    let (f, wc, kh, kw) = weights.shape();
    assert_eq!(wc, c, "weight channels {wc} != input channels {c}");
    assert_eq!(kh, geom.kernel);
    assert_eq!(kw, geom.kernel);
    if let Some(b) = bias {
        assert_eq!(b.len(), f, "bias length mismatch");
    }
    let oh = geom.output_extent(h);
    let ow = geom.output_extent(w);
    let k = geom.kernel;
    let patch = c * k * k;

    // Build the patch matrix: one row per output position, `patch` columns.
    let mut patches = vec![0.0f32; oh * ow * patch];
    for oy in 0..oh {
        for ox in 0..ow {
            let row_base = (oy * ow + ox) * patch;
            for ci in 0..c {
                for u in 0..k {
                    let iy = (oy * geom.stride + u) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let irow = input.row(ci, iy as usize);
                    let dst = row_base + (ci * k + u) * k;
                    for v in 0..k {
                        let ix = (ox * geom.stride + v) as isize - geom.pad as isize;
                        if ix >= 0 && ix < w as isize {
                            patches[dst + v] = irow[ix as usize];
                        }
                    }
                }
            }
        }
    }

    // out[f][pos] = weights_row(f) · patches_row(pos) (+ bias)
    let mut out = Tensor3::zeros(f, oh, ow);
    let wdata = weights.as_slice();
    for fi in 0..f {
        let wrow = &wdata[fi * patch..(fi + 1) * patch];
        let b = bias.map_or(0.0, |b| b[fi]);
        let orow = out.as_mut_slice();
        for pos in 0..oh * ow {
            let prow = &patches[pos * patch..(pos + 1) * patch];
            let mut acc = b;
            for (a, x) in wrow.iter().zip(prow) {
                acc += a * x;
            }
            orow[fi * oh * ow + pos] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv;

    fn pseudo(seed: &mut u64) -> f32 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((*seed % 2000) as f32 / 1000.0) - 1.0
    }

    #[test]
    fn matches_reference_across_geometries() {
        for &(k, s, p) in &[
            (3usize, 1usize, 1usize),
            (3, 2, 1),
            (5, 1, 2),
            (1, 1, 0),
            (3, 1, 0),
        ] {
            let geom = ConvGeometry::new(k, s, p);
            if 9 + 2 * p < k {
                continue;
            }
            let mut seed = 31 + k as u64;
            let input = Tensor3::from_fn(3, 9, 9, |_, _, _| pseudo(&mut seed));
            let weights = Tensor4::from_fn(4, 3, k, k, |_, _, _, _| pseudo(&mut seed));
            let bias: Vec<f32> = (0..4).map(|_| pseudo(&mut seed)).collect();
            let want = conv::forward(&input, &weights, Some(&bias), geom);
            let got = forward(&input, &weights, Some(&bias), geom);
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                assert!(
                    (a - b).abs() < 1e-4 * (1.0 + a.abs()),
                    "k={k} s={s} p={p}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn zero_input_gives_bias() {
        let geom = ConvGeometry::new(3, 1, 1);
        let input = Tensor3::zeros(2, 4, 4);
        let weights = Tensor4::zeros(2, 2, 3, 3);
        let out = forward(&input, &weights, Some(&[1.0, -1.0]), geom);
        assert!(out.channel(0).iter().all(|&v| v == 1.0));
        assert!(out.channel(1).iter().all(|&v| v == -1.0));
    }
}
