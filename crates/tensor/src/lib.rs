//! Dense tensor and 2-D convolution substrate for the SparseTrain reproduction.
//!
//! This crate provides the minimal dense linear-algebra layer that everything
//! else (the sparse kernels, the CNN training framework, the accelerator
//! simulator) is built on and validated against:
//!
//! * [`Tensor3`] — a `C × H × W` feature map (one sample),
//! * [`Tensor4`] — an `F × C × K × K` weight tensor,
//! * [`Matrix`] — a 2-D matrix for fully-connected layers,
//! * [`conv`] — reference dense 2-D convolution for all three training
//!   stages of the paper (Forward, GTA, GTW),
//! * [`init`] — weight initializers,
//! * [`stats`] — density/moment helpers used throughout the workspace.
//!
//! # Example
//!
//! ```
//! use sparsetrain_tensor::{Tensor3, Tensor4, conv::{self, ConvGeometry}};
//!
//! let geom = ConvGeometry::new(3, 1, 1); // 3x3 kernel, stride 1, pad 1
//! let input = Tensor3::zeros(8, 16, 16);
//! let weights = Tensor4::zeros(4, 8, 3, 3);
//! let out = conv::forward(&input, &weights, None, geom);
//! assert_eq!(out.shape(), (4, 16, 16));
//! ```

pub mod conv;
pub mod fixed;
pub mod im2row;
pub mod init;
pub mod matrix;
pub mod qformat;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use matrix::Matrix;
pub use shape::{Shape3, Shape4};
pub use tensor::{Tensor3, Tensor4};
