//! Weight initializers.
//!
//! Kaiming/He initialization is used for convolution and linear layers
//! (matching the PyTorch defaults the paper's experiments relied on).

use crate::matrix::Matrix;
use crate::tensor::Tensor4;
use rand::Rng;

/// Samples one standard-normal value using the Box–Muller transform.
///
/// Implemented locally so the workspace does not depend on `rand_distr`.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Kaiming-normal initialization for convolution weights.
///
/// Standard deviation is `sqrt(2 / fan_in)` with `fan_in = c · kh · kw`,
/// the correct gain for ReLU networks.
pub fn kaiming_conv<R: Rng + ?Sized>(rng: &mut R, f: usize, c: usize, kh: usize, kw: usize) -> Tensor4 {
    let fan_in = (c * kh * kw).max(1) as f32;
    let std = (2.0 / fan_in).sqrt();
    Tensor4::from_fn(f, c, kh, kw, |_, _, _, _| sample_standard_normal(rng) * std)
}

/// Kaiming-normal initialization for a fully-connected weight matrix
/// (`rows = out_features`, `cols = in_features`).
pub fn kaiming_linear<R: Rng + ?Sized>(rng: &mut R, out_features: usize, in_features: usize) -> Matrix {
    let std = (2.0 / in_features.max(1) as f32).sqrt();
    Matrix::from_fn(out_features, in_features, |_, _| {
        sample_standard_normal(rng) * std
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn kaiming_conv_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = kaiming_conv(&mut rng, 32, 16, 3, 3);
        let fan_in = (16 * 3 * 3) as f32;
        let expect_std = (2.0 / fan_in).sqrt();
        let n = w.len() as f32;
        let mean: f32 = w.as_slice().iter().sum::<f32>() / n;
        let std: f32 = (w.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n).sqrt();
        assert!(
            (std - expect_std).abs() / expect_std < 0.1,
            "std {std} vs expected {expect_std}"
        );
    }

    #[test]
    fn kaiming_linear_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = kaiming_linear(&mut rng, 10, 64);
        assert_eq!(m.rows(), 10);
        assert_eq!(m.cols(), 64);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = kaiming_conv(&mut StdRng::seed_from_u64(5), 4, 4, 3, 3);
        let b = kaiming_conv(&mut StdRng::seed_from_u64(5), 4, 4, 3, 3);
        assert_eq!(a, b);
    }
}
