//! Owned dense tensors in `f32`.

use crate::shape::{Shape3, Shape4};

/// A dense `C × H × W` feature map stored row-major.
///
/// This is the unit of data flowing between CNN layers for a single sample.
///
/// ```
/// use sparsetrain_tensor::Tensor3;
/// let mut t = Tensor3::zeros(2, 4, 4);
/// t.set(1, 2, 3, 5.0);
/// assert_eq!(t.get(1, 2, 3), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    shape: Shape3,
    data: Vec<f32>,
}

impl Tensor3 {
    /// Creates a zero-filled tensor.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        let shape = Shape3::new(c, h, w);
        Self {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor from raw data in (C, H, W) row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != c * h * w`.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        let shape = Shape3::new(c, h, w);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Self { shape, data }
    }

    /// Creates a tensor by evaluating `f(c, y, x)` at every position.
    pub fn from_fn(c: usize, h: usize, w: usize, mut f: impl FnMut(usize, usize, usize) -> f32) -> Self {
        let shape = Shape3::new(c, h, w);
        let mut data = Vec::with_capacity(shape.len());
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    data.push(f(ci, y, x));
                }
            }
        }
        Self { shape, data }
    }

    /// The tensor's shape as a `(c, h, w)` tuple.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.shape.c, self.shape.h, self.shape.w)
    }

    /// The tensor's shape descriptor.
    pub fn shape3(&self) -> Shape3 {
        self.shape
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.shape.c
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.shape.h
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.shape.w
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.shape.index(c, y, x)]
    }

    /// Sets the element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: f32) {
        let i = self.shape.index(c, y, x);
        self.data[i] = value;
    }

    /// Adds `value` to the element at `(c, y, x)`.
    #[inline]
    pub fn add_at(&mut self, c: usize, y: usize, x: usize, value: f32) {
        let i = self.shape.index(c, y, x);
        self.data[i] += value;
    }

    /// The underlying data slice in (C, H, W) row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One spatial row of one channel: `W` contiguous elements.
    ///
    /// Rows are the fundamental unit of the paper's 1-D convolution dataflow.
    pub fn row(&self, c: usize, y: usize) -> &[f32] {
        let start = self.shape.index(c, y, 0);
        &self.data[start..start + self.shape.w]
    }

    /// Mutable view of one spatial row of one channel.
    pub fn row_mut(&mut self, c: usize, y: usize) -> &mut [f32] {
        let start = self.shape.index(c, y, 0);
        let w = self.shape.w;
        &mut self.data[start..start + w]
    }

    /// One whole channel plane: `H × W` contiguous elements.
    pub fn channel(&self, c: usize) -> &[f32] {
        let start = self.shape.index(c, 0, 0);
        &self.data[start..start + self.shape.h * self.shape.w]
    }

    /// Consumes the tensor and returns its raw storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Element-wise addition of another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor3) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

/// A dense `F × C × KH × KW` weight tensor stored row-major.
///
/// ```
/// use sparsetrain_tensor::Tensor4;
/// let w = Tensor4::zeros(8, 4, 3, 3);
/// assert_eq!(w.shape(), (8, 4, 3, 3));
/// assert_eq!(w.kernel(2, 1).len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    shape: Shape4,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Creates a zero-filled weight tensor.
    pub fn zeros(f: usize, c: usize, kh: usize, kw: usize) -> Self {
        let shape = Shape4::new(f, c, kh, kw);
        Self {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor from raw data in (F, C, KH, KW) row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != f * c * kh * kw`.
    pub fn from_vec(f: usize, c: usize, kh: usize, kw: usize, data: Vec<f32>) -> Self {
        let shape = Shape4::new(f, c, kh, kw);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Self { shape, data }
    }

    /// Creates a tensor by evaluating `g(f, c, u, v)` at every position.
    pub fn from_fn(
        f: usize,
        c: usize,
        kh: usize,
        kw: usize,
        mut g: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let shape = Shape4::new(f, c, kh, kw);
        let mut data = Vec::with_capacity(shape.len());
        for fi in 0..f {
            for ci in 0..c {
                for u in 0..kh {
                    for v in 0..kw {
                        data.push(g(fi, ci, u, v));
                    }
                }
            }
        }
        Self { shape, data }
    }

    /// The tensor's shape as an `(f, c, kh, kw)` tuple.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.shape.f, self.shape.c, self.shape.kh, self.shape.kw)
    }

    /// The tensor's shape descriptor.
    pub fn shape4(&self) -> Shape4 {
        self.shape
    }

    /// Number of filters (output channels).
    pub fn filters(&self) -> usize {
        self.shape.f
    }

    /// Number of input channels.
    pub fn channels(&self) -> usize {
        self.shape.c
    }

    /// Kernel height.
    pub fn kernel_h(&self) -> usize {
        self.shape.kh
    }

    /// Kernel width.
    pub fn kernel_w(&self) -> usize {
        self.shape.kw
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(f, c, u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn get(&self, f: usize, c: usize, u: usize, v: usize) -> f32 {
        self.data[self.shape.index(f, c, u, v)]
    }

    /// Sets the element at `(f, c, u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, f: usize, c: usize, u: usize, v: usize, value: f32) {
        let i = self.shape.index(f, c, u, v);
        self.data[i] = value;
    }

    /// Adds `value` to the element at `(f, c, u, v)`.
    #[inline]
    pub fn add_at(&mut self, f: usize, c: usize, u: usize, v: usize, value: f32) {
        let i = self.shape.index(f, c, u, v);
        self.data[i] += value;
    }

    /// One `KH × KW` kernel as a contiguous slice.
    pub fn kernel(&self, f: usize, c: usize) -> &[f32] {
        let start = self.shape.index(f, c, 0, 0);
        &self.data[start..start + self.shape.kh * self.shape.kw]
    }

    /// One kernel row (`KW` contiguous weights) — the dense operand of a
    /// 1-D convolution in the paper's dataflow.
    pub fn kernel_row(&self, f: usize, c: usize, u: usize) -> &[f32] {
        let start = self.shape.index(f, c, u, 0);
        &self.data[start..start + self.shape.kw]
    }

    /// Mutable view of one kernel row — the accumulation target of an OSRC
    /// operation, so weight gradients build up in place without scratch.
    pub fn kernel_row_mut(&mut self, f: usize, c: usize, u: usize) -> &mut [f32] {
        let start = self.shape.index(f, c, u, 0);
        &mut self.data[start..start + self.shape.kw]
    }

    /// The underlying data slice in (F, C, KH, KW) row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its raw storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element-wise addition of another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor4) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor3_roundtrip() {
        let mut t = Tensor3::zeros(2, 3, 4);
        t.set(1, 2, 3, 7.5);
        assert_eq!(t.get(1, 2, 3), 7.5);
        assert_eq!(t.get(0, 0, 0), 0.0);
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn tensor3_row_is_contiguous() {
        let t = Tensor3::from_fn(2, 3, 4, |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.row(1, 2), &[120.0, 121.0, 122.0, 123.0]);
    }

    #[test]
    fn tensor3_channel_view() {
        let t = Tensor3::from_fn(2, 2, 2, |c, y, x| (c * 4 + y * 2 + x) as f32);
        assert_eq!(t.channel(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn tensor3_from_vec_wrong_len_panics() {
        let _ = Tensor3::from_vec(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn tensor3_add_assign_and_scale() {
        let mut a = Tensor3::from_vec(1, 1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor3::from_vec(1, 1, 3, vec![10.0, 20.0, 30.0]);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[5.5, 11.0, 16.5]);
    }

    #[test]
    fn tensor4_kernel_views() {
        let w = Tensor4::from_fn(2, 2, 2, 2, |f, c, u, v| (f * 8 + c * 4 + u * 2 + v) as f32);
        assert_eq!(w.kernel(1, 1), &[12.0, 13.0, 14.0, 15.0]);
        assert_eq!(w.kernel_row(1, 0, 1), &[10.0, 11.0]);
    }

    #[test]
    fn tensor4_set_get() {
        let mut w = Tensor4::zeros(3, 2, 3, 3);
        w.set(2, 1, 2, 2, -1.0);
        assert_eq!(w.get(2, 1, 2, 2), -1.0);
        w.add_at(2, 1, 2, 2, 0.5);
        assert_eq!(w.get(2, 1, 2, 2), -0.5);
    }

    #[test]
    fn tensor3_map_inplace() {
        let mut t = Tensor3::from_vec(1, 1, 4, vec![-1.0, 2.0, -3.0, 4.0]);
        t.map_inplace(|v| v.max(0.0));
        assert_eq!(t.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
    }
}
