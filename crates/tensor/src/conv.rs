//! Reference dense 2-D convolution for the three training stages.
//!
//! These routines are the functional ground truth the sparse dataflow kernels
//! (`sparsetrain-sparse`) and the accelerator simulator are validated
//! against. All three stages of the paper's training loop are provided:
//!
//! * [`forward`] — `O_i = Σ_j W_{i,j} ∗ I_j + b_i` (Forward step),
//! * [`input_grad`] — `dI_j = Σ_i dO_i ∗ W⁺_{i,j}` (GTA step),
//! * [`weight_grad`] — `dW_{i,j} = dO_i ∗ I_j` (GTW step).

use crate::tensor::{Tensor3, Tensor4};

/// Geometry of a convolution: square kernel size, stride and zero padding.
///
/// ```
/// use sparsetrain_tensor::conv::ConvGeometry;
/// let g = ConvGeometry::new(3, 1, 1);
/// assert_eq!(g.output_extent(32), 32); // "same" convolution
/// let g2 = ConvGeometry::new(3, 2, 1);
/// assert_eq!(g2.output_extent(32), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Square kernel size `K`.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on every spatial edge.
    pub pad: usize,
}

impl ConvGeometry {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        Self { kernel, stride, pad }
    }

    /// Unit geometry: 1×1 kernel, stride 1, no padding.
    pub fn unit() -> Self {
        Self::new(1, 1, 0)
    }

    /// Output spatial extent for an input extent of `n`.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_extent(&self, n: usize) -> usize {
        let padded = n + 2 * self.pad;
        assert!(
            padded >= self.kernel,
            "padded input extent {padded} smaller than kernel {}",
            self.kernel
        );
        (padded - self.kernel) / self.stride + 1
    }

    /// Number of multiply–accumulate operations of a dense forward pass over
    /// `(c, h, w)` input with `f` filters.
    pub fn dense_macs(&self, c: usize, h: usize, w: usize, f: usize) -> u64 {
        let oh = self.output_extent(h) as u64;
        let ow = self.output_extent(w) as u64;
        oh * ow * (f as u64) * (c as u64) * (self.kernel as u64) * (self.kernel as u64)
    }
}

/// Forward convolution: `O_i = Σ_j W_{i,j} ∗ I_j (+ b_i)`.
///
/// `input` is `C × H × W`, `weights` are `F × C × K × K`; the result is
/// `F × Ho × Wo` with `Ho/Wo` given by [`ConvGeometry::output_extent`].
///
/// # Panics
///
/// Panics if the weight channel count does not match the input channel
/// count, the kernel is not square of size `geom.kernel`, or the bias length
/// does not equal `F`.
pub fn forward(input: &Tensor3, weights: &Tensor4, bias: Option<&[f32]>, geom: ConvGeometry) -> Tensor3 {
    let (c, h, w) = input.shape();
    let (f, wc, kh, kw) = weights.shape();
    assert_eq!(wc, c, "weight channels {wc} != input channels {c}");
    assert_eq!(kh, geom.kernel, "kernel height mismatch");
    assert_eq!(kw, geom.kernel, "kernel width mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), f, "bias length {} != filters {f}", b.len());
    }
    let oh = geom.output_extent(h);
    let ow = geom.output_extent(w);
    let mut out = Tensor3::zeros(f, oh, ow);
    let k = geom.kernel as isize;
    let pad = geom.pad as isize;
    let stride = geom.stride as isize;
    for fi in 0..f {
        let b = bias.map_or(0.0, |b| b[fi]);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b;
                for ci in 0..c {
                    for u in 0..k {
                        let iy = (oy as isize) * stride - pad + u;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let krow = weights.kernel_row(fi, ci, u as usize);
                        let irow = input.row(ci, iy as usize);
                        for v in 0..k {
                            let ix = (ox as isize) * stride - pad + v;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += krow[v as usize] * irow[ix as usize];
                        }
                    }
                }
                out.set(fi, oy, ox, acc);
            }
        }
    }
    out
}

/// GTA (gradient-to-activations) step: `dI_j = Σ_i dO_i ∗ W⁺_{i,j}`.
///
/// `dout` is the output-activation gradient `F × Ho × Wo`; the result has
/// the shape of the layer input, `(c, in_h, in_w)`. Supports stride and
/// padding: this is the transposed convolution of the forward pass.
///
/// # Panics
///
/// Panics if `dout`'s shape is inconsistent with `(in_h, in_w)` under
/// `geom`, or the filter count differs from `dout`'s channel count.
pub fn input_grad(
    dout: &Tensor3,
    weights: &Tensor4,
    geom: ConvGeometry,
    in_h: usize,
    in_w: usize,
) -> Tensor3 {
    let (f, oh, ow) = dout.shape();
    let (wf, c, kh, kw) = weights.shape();
    assert_eq!(wf, f, "weight filters {wf} != dout channels {f}");
    assert_eq!(
        oh,
        geom.output_extent(in_h),
        "dout height inconsistent with geometry"
    );
    assert_eq!(
        ow,
        geom.output_extent(in_w),
        "dout width inconsistent with geometry"
    );
    assert_eq!(kh, geom.kernel);
    assert_eq!(kw, geom.kernel);
    let mut din = Tensor3::zeros(c, in_h, in_w);
    let pad = geom.pad as isize;
    let stride = geom.stride as isize;
    // Scatter form: every dO element contributes to a K×K window of dI.
    for fi in 0..f {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = dout.get(fi, oy, ox);
                if g == 0.0 {
                    continue;
                }
                for ci in 0..c {
                    let krow_base = weights.kernel(fi, ci);
                    for u in 0..kh {
                        let iy = (oy as isize) * stride - pad + u as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        for v in 0..kw {
                            let ix = (ox as isize) * stride - pad + v as isize;
                            if ix < 0 || ix >= in_w as isize {
                                continue;
                            }
                            din.add_at(ci, iy as usize, ix as usize, g * krow_base[u * kw + v]);
                        }
                    }
                }
            }
        }
    }
    din
}

/// GTW (gradient-to-weights) step: `dW_{i,j} = dO_i ∗ I_j`.
///
/// Returns the weight gradient with the same shape as the layer's weights.
///
/// # Panics
///
/// Panics if the shapes of `input` and `dout` are inconsistent under `geom`.
pub fn weight_grad(input: &Tensor3, dout: &Tensor3, geom: ConvGeometry) -> Tensor4 {
    let (c, h, w) = input.shape();
    let (f, oh, ow) = dout.shape();
    assert_eq!(
        oh,
        geom.output_extent(h),
        "dout height inconsistent with geometry"
    );
    assert_eq!(ow, geom.output_extent(w), "dout width inconsistent with geometry");
    let k = geom.kernel;
    let mut dw = Tensor4::zeros(f, c, k, k);
    let pad = geom.pad as isize;
    let stride = geom.stride as isize;
    for fi in 0..f {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = dout.get(fi, oy, ox);
                if g == 0.0 {
                    continue;
                }
                for ci in 0..c {
                    for u in 0..k {
                        let iy = (oy as isize) * stride - pad + u as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let irow = input.row(ci, iy as usize);
                        for v in 0..k {
                            let ix = (ox as isize) * stride - pad + v as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dw.add_at(fi, ci, u, v, g * irow[ix as usize]);
                        }
                    }
                }
            }
        }
    }
    dw
}

/// Gradient of the bias: per-filter sum of the output gradient.
///
/// The paper computes this in the PPU by accumulating gradients during the
/// GTA step; this is the functional reference.
pub fn bias_grad(dout: &Tensor3) -> Vec<f32> {
    let (f, _, _) = dout.shape();
    (0..f).map(|fi| dout.channel(fi).iter().sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-4 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn geometry_output_extent() {
        assert_eq!(ConvGeometry::new(3, 1, 1).output_extent(8), 8);
        assert_eq!(ConvGeometry::new(3, 1, 0).output_extent(8), 6);
        assert_eq!(ConvGeometry::new(5, 2, 2).output_extent(8), 4);
        assert_eq!(ConvGeometry::new(1, 1, 0).output_extent(8), 8);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn geometry_too_small_panics() {
        let _ = ConvGeometry::new(5, 1, 0).output_extent(3);
    }

    #[test]
    fn forward_identity_kernel() {
        // A 1x1 identity kernel reproduces the input.
        let input = Tensor3::from_fn(1, 3, 3, |_, y, x| (y * 3 + x) as f32);
        let weights = Tensor4::from_vec(1, 1, 1, 1, vec![1.0]);
        let out = forward(&input, &weights, None, ConvGeometry::unit());
        assert_eq!(out, input);
    }

    #[test]
    fn forward_box_filter() {
        // 3x3 all-ones kernel over a constant image with "same" padding:
        // interior outputs are 9, corners 4, edges 6.
        let input = Tensor3::from_fn(1, 3, 3, |_, _, _| 1.0);
        let weights = Tensor4::from_vec(1, 1, 3, 3, vec![1.0; 9]);
        let out = forward(&input, &weights, None, ConvGeometry::new(3, 1, 1));
        assert_eq!(out.get(0, 1, 1), 9.0);
        assert_eq!(out.get(0, 0, 0), 4.0);
        assert_eq!(out.get(0, 0, 1), 6.0);
    }

    #[test]
    fn forward_bias_applied_per_filter() {
        let input = Tensor3::zeros(1, 2, 2);
        let weights = Tensor4::zeros(2, 1, 1, 1);
        let out = forward(&input, &weights, Some(&[1.5, -2.0]), ConvGeometry::unit());
        assert_eq!(out.get(0, 1, 1), 1.5);
        assert_eq!(out.get(1, 0, 0), -2.0);
    }

    #[test]
    fn forward_multi_channel_sums_channels() {
        let input = Tensor3::from_fn(2, 2, 2, |c, _, _| (c + 1) as f32);
        let weights = Tensor4::from_vec(1, 2, 1, 1, vec![1.0, 10.0]);
        let out = forward(&input, &weights, None, ConvGeometry::unit());
        // 1*1 + 2*10 = 21 everywhere
        assert!(out.as_slice().iter().all(|&v| v == 21.0));
    }

    #[test]
    fn forward_stride_two() {
        let input = Tensor3::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let weights = Tensor4::from_vec(1, 1, 1, 1, vec![1.0]);
        let out = forward(&input, &weights, None, ConvGeometry::new(1, 2, 0));
        assert_eq!(out.shape(), (1, 2, 2));
        assert_eq!(out.get(0, 0, 0), 0.0);
        assert_eq!(out.get(0, 0, 1), 2.0);
        assert_eq!(out.get(0, 1, 0), 8.0);
        assert_eq!(out.get(0, 1, 1), 10.0);
    }

    /// Finite-difference check: input_grad is the adjoint of forward.
    #[test]
    fn input_grad_matches_finite_difference() {
        let geom = ConvGeometry::new(3, 1, 1);
        let mut rng_state = 12345u64;
        let mut next = move || {
            // Simple xorshift for deterministic pseudo-random values.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            ((rng_state % 1000) as f32 / 500.0) - 1.0
        };
        let input = Tensor3::from_fn(2, 4, 4, |_, _, _| next());
        let weights = Tensor4::from_fn(3, 2, 3, 3, |_, _, _, _| next());
        let dout = Tensor3::from_fn(3, 4, 4, |_, _, _| next());
        let din = input_grad(&dout, &weights, geom, 4, 4);

        // <dout, forward(input)> should have gradient din w.r.t. input:
        // check a few positions with central differences.
        let loss = |inp: &Tensor3| -> f32 {
            let o = forward(inp, &weights, None, geom);
            o.as_slice().iter().zip(dout.as_slice()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2;
        for &(c, y, x) in &[(0usize, 0usize, 0usize), (1, 2, 3), (0, 3, 1), (1, 1, 1)] {
            let mut p = input.clone();
            p.add_at(c, y, x, eps);
            let mut m = input.clone();
            m.add_at(c, y, x, -eps);
            let fd = (loss(&p) - loss(&m)) / (2.0 * eps);
            assert!(
                approx_eq(fd, din.get(c, y, x)),
                "finite diff {fd} vs analytic {} at ({c},{y},{x})",
                din.get(c, y, x)
            );
        }
    }

    /// Finite-difference check for the weight gradient.
    #[test]
    fn weight_grad_matches_finite_difference() {
        let geom = ConvGeometry::new(3, 2, 1);
        let mut s = 999u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f32 / 500.0) - 1.0
        };
        let input = Tensor3::from_fn(2, 5, 5, |_, _, _| next());
        let weights = Tensor4::from_fn(2, 2, 3, 3, |_, _, _, _| next());
        let oh = geom.output_extent(5);
        let dout = Tensor3::from_fn(2, oh, oh, |_, _, _| next());
        let dw = weight_grad(&input, &dout, geom);

        let loss = |w: &Tensor4| -> f32 {
            let o = forward(&input, w, None, geom);
            o.as_slice().iter().zip(dout.as_slice()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2;
        for &(f, c, u, v) in &[(0usize, 0usize, 0usize, 0usize), (1, 1, 2, 2), (0, 1, 1, 0)] {
            let mut p = weights.clone();
            p.add_at(f, c, u, v, eps);
            let mut m = weights.clone();
            m.add_at(f, c, u, v, -eps);
            let fd = (loss(&p) - loss(&m)) / (2.0 * eps);
            assert!(
                approx_eq(fd, dw.get(f, c, u, v)),
                "finite diff {fd} vs analytic {} at ({f},{c},{u},{v})",
                dw.get(f, c, u, v)
            );
        }
    }

    #[test]
    fn bias_grad_sums_channels() {
        let dout = Tensor3::from_fn(2, 2, 2, |c, y, x| (c as f32 + 1.0) * (y * 2 + x) as f32);
        let bg = bias_grad(&dout);
        assert_eq!(bg, vec![6.0, 12.0]);
    }

    #[test]
    fn dense_macs_counts() {
        let g = ConvGeometry::new(3, 1, 1);
        // 16x16 input, 8 channels, 4 filters: 16*16*4*8*9
        assert_eq!(g.dense_macs(8, 16, 16, 4), 16 * 16 * 4 * 8 * 9);
    }
}
