//! A small row-major matrix type for fully-connected layers.

/// Dense row-major `rows × cols` matrix of `f32`.
///
/// ```
/// use sparsetrain_tensor::Matrix;
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length does not match matrix shape");
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to the element at `(row, col)`.
    #[inline]
    pub fn add_at(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] += value;
    }

    /// One row as a contiguous slice.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        let c = self.cols;
        &mut self.data[row * c..(row + 1) * c]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = self · x` (matrix–vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// `y = selfᵀ · x` (transposed matrix–vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            if xr == 0.0 {
                continue;
            }
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += a * xr;
            }
        }
        y
    }

    /// Rank-1 update `self += alpha · x · yᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    pub fn rank1_update(&mut self, alpha: f32, x: &[f32], y: &[f32]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        for (r, &xv) in x.iter().enumerate() {
            let xr = alpha * xv;
            if xr == 0.0 {
                continue;
            }
            let row = self.row_mut(r);
            for (a, b) in row.iter_mut().zip(y) {
                *a += xr * b;
            }
        }
    }

    /// Element-wise addition of another matrix of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Fills the matrix with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let m = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_known_values() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn matvec_t_is_transpose() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // m^T = [[1,4],[2,5],[3,6]]
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn rank1_update_outer_product() {
        let mut m = Matrix::zeros(2, 3);
        m.rank1_update(2.0, &[1.0, 3.0], &[1.0, 0.0, 2.0]);
        assert_eq!(m.as_slice(), &[2.0, 0.0, 4.0, 6.0, 0.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_wrong_dim_panics() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn scale_and_add_assign() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[8.0, 12.0]);
    }
}
