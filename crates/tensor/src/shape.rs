//! Shape descriptors for 3-D and 4-D tensors.

use std::fmt;

/// Shape of a 3-D feature-map tensor: channels × height × width.
///
/// ```
/// use sparsetrain_tensor::Shape3;
/// let s = Shape3::new(16, 32, 32);
/// assert_eq!(s.len(), 16 * 32 * 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape3 {
    /// Number of channels.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape3 {
    /// Creates a new 3-D shape.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Returns `true` when the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of element `(c, y, x)` in row-major (C, H, W) order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of bounds.
    #[inline]
    pub fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        (c * self.h + y) * self.w + x
    }
}

impl fmt::Display for Shape3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// Shape of a 4-D weight tensor: filters × channels × kernel height × kernel width.
///
/// ```
/// use sparsetrain_tensor::Shape4;
/// let s = Shape4::new(64, 3, 3, 3);
/// assert_eq!(s.len(), 64 * 3 * 3 * 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    /// Number of filters (output channels).
    pub f: usize,
    /// Number of input channels.
    pub c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
}

impl Shape4 {
    /// Creates a new 4-D shape.
    pub fn new(f: usize, c: usize, kh: usize, kw: usize) -> Self {
        Self { f, c, kh, kw }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.f * self.c * self.kh * self.kw
    }

    /// Returns `true` when the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of element `(f, c, u, v)` in row-major (F, C, KH, KW) order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of bounds.
    #[inline]
    pub fn index(&self, f: usize, c: usize, u: usize, v: usize) -> usize {
        debug_assert!(f < self.f && c < self.c && u < self.kh && v < self.kw);
        ((f * self.c + c) * self.kh + u) * self.kw + v
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.f, self.c, self.kh, self.kw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape3_len_and_index() {
        let s = Shape3::new(2, 3, 4);
        assert_eq!(s.len(), 24);
        assert!(!s.is_empty());
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 3), 3);
        assert_eq!(s.index(0, 1, 0), 4);
        assert_eq!(s.index(1, 0, 0), 12);
        assert_eq!(s.index(1, 2, 3), 23);
    }

    #[test]
    fn shape4_len_and_index() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(1, 2, 3, 4), 119);
        assert_eq!(s.index(0, 1, 0, 0), 20);
    }

    #[test]
    fn shape3_empty() {
        assert!(Shape3::new(0, 4, 4).is_empty());
    }

    #[test]
    fn shape_display() {
        assert_eq!(Shape3::new(1, 2, 3).to_string(), "1x2x3");
        assert_eq!(Shape4::new(1, 2, 3, 4).to_string(), "1x2x3x4");
    }
}
