//! 16-bit fixed-point quantization (Q-format) helpers.
//!
//! The paper's RTL computes in 16-bit fixed point (the simulator's word
//! accounting assumes 2-byte operands). This module provides the
//! quantization used to justify that choice: activations and gradients are
//! representable in Q-formats with enough headroom that training behaviour
//! is unchanged, which the nn-crate tests verify by quantizing a training
//! step.

/// A 16-bit signed fixed-point format with `FRAC` fractional bits.
///
/// ```
/// use sparsetrain_tensor::fixed::Fixed16;
/// let q = Fixed16::<8>::from_f32(1.5);
/// assert_eq!(q.to_f32(), 1.5);
/// assert!((Fixed16::<8>::from_f32(0.123).to_f32() - 0.123).abs() < 1.0 / 256.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed16<const FRAC: u32>(i16);

impl<const FRAC: u32> Fixed16<FRAC> {
    /// Smallest representable increment.
    pub const EPSILON: f32 = 1.0 / (1u32 << FRAC) as f32;

    /// Largest representable value.
    pub fn max_value() -> f32 {
        i16::MAX as f32 * Self::EPSILON
    }

    /// Smallest (most negative) representable value.
    pub fn min_value() -> f32 {
        i16::MIN as f32 * Self::EPSILON
    }

    /// Quantizes an `f32`, saturating at the representable range.
    pub fn from_f32(v: f32) -> Self {
        let scaled = (v / Self::EPSILON).round();
        let clamped = scaled.clamp(i16::MIN as f32, i16::MAX as f32);
        Self(clamped as i16)
    }

    /// Dequantizes back to `f32`.
    pub fn to_f32(self) -> f32 {
        self.0 as f32 * Self::EPSILON
    }

    /// The raw 16-bit representation.
    pub fn to_bits(self) -> i16 {
        self.0
    }

    /// Builds from a raw 16-bit representation.
    pub fn from_bits(bits: i16) -> Self {
        Self(bits)
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Self) -> Self {
        Self(self.0.saturating_add(other.0))
    }

    /// Fixed-point multiply: `(a · b) >> FRAC`, saturating.
    pub fn saturating_mul(self, other: Self) -> Self {
        let wide = (self.0 as i32 * other.0 as i32) >> FRAC;
        Self(wide.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }
}

/// Quantizes a whole slice through a Q-format and back — the round-trip a
/// tensor takes through the accelerator's 16-bit datapath.
pub fn quantize_slice<const FRAC: u32>(data: &mut [f32]) {
    for v in data.iter_mut() {
        *v = Fixed16::<FRAC>::from_f32(*v).to_f32();
    }
}

/// Maximum absolute quantization error a Q-format introduces on `data`
/// (values outside the representable range saturate and are excluded —
/// returns `(max_rounding_error, saturated_count)`).
pub fn quantization_error<const FRAC: u32>(data: &[f32]) -> (f32, usize) {
    let mut max_err = 0.0f32;
    let mut saturated = 0usize;
    for &v in data {
        if v > Fixed16::<FRAC>::max_value() || v < Fixed16::<FRAC>::min_value() {
            saturated += 1;
            continue;
        }
        let err = (Fixed16::<FRAC>::from_f32(v).to_f32() - v).abs();
        max_err = max_err.max(err);
    }
    (max_err, saturated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_for_representable() {
        for v in [-2.0f32, -0.5, 0.0, 0.25, 1.0, 63.996_094] {
            assert_eq!(Fixed16::<8>::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn rounding_error_bounded_by_half_epsilon() {
        let (err, sat) = quantization_error::<8>(&[0.001, 0.1234, -0.987, core::f32::consts::PI]);
        assert_eq!(sat, 0);
        assert!(err <= Fixed16::<8>::EPSILON / 2.0 + f32::EPSILON);
    }

    #[test]
    fn saturation_clamps() {
        let big = Fixed16::<8>::from_f32(1e6);
        assert_eq!(big.to_bits(), i16::MAX);
        let small = Fixed16::<8>::from_f32(-1e6);
        assert_eq!(small.to_bits(), i16::MIN);
    }

    #[test]
    fn fixed_multiply_approximates_float() {
        let a = Fixed16::<10>::from_f32(1.5);
        let b = Fixed16::<10>::from_f32(-2.25);
        let prod = a.saturating_mul(b).to_f32();
        assert!((prod - (-3.375)).abs() < 2.0 * Fixed16::<10>::EPSILON);
    }

    #[test]
    fn quantize_slice_in_place() {
        let mut data = vec![0.12345f32, -0.6789];
        quantize_slice::<12>(&mut data);
        for &v in &data {
            let requantized = Fixed16::<12>::from_f32(v).to_f32();
            assert_eq!(v, requantized, "slice not idempotent under quantization");
        }
    }

    #[test]
    fn epsilon_matches_frac_bits() {
        assert_eq!(Fixed16::<8>::EPSILON, 1.0 / 256.0);
        assert_eq!(Fixed16::<12>::EPSILON, 1.0 / 4096.0);
    }

    #[test]
    fn saturating_add_at_bounds() {
        let max = Fixed16::<8>::from_bits(i16::MAX);
        assert_eq!(max.saturating_add(max).to_bits(), i16::MAX);
    }
}
