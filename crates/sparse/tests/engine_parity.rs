//! Property tests: the parallel engine is bitwise-identical to the scalar
//! reference, and both match the dense reference in `sparsetrain-tensor`.
//!
//! Parity is asserted with exact `==` on the raw f32 slices — the parallel
//! engine only parallelizes across disjoint output bands while keeping the
//! scalar per-row accumulation order, so any difference at all is a bug.

use proptest::prelude::*;
use sparsetrain_sparse::rowconv::{
    forward_rows_with, input_grad_rows_with, weight_grad_rows_with, SparseFeatureMap,
};
use sparsetrain_sparse::{EngineKind, ParallelEngine, Workspace};
use sparsetrain_tensor::conv::{self, ConvGeometry};
use sparsetrain_tensor::{Tensor3, Tensor4};

const H: usize = 6;
const W: usize = 7;

fn arb_feature_map(channels: usize) -> impl Strategy<Value = SparseFeatureMap> {
    proptest::collection::vec(
        prop_oneof![
            55u32 => Just(0.0f32),
            45u32 => (-2.0f32..2.0).prop_filter("non-zero", |v| *v != 0.0),
        ],
        channels * H * W,
    )
    .prop_map(move |data| SparseFeatureMap::from_tensor(&Tensor3::from_vec(channels, H, W, data)))
}

fn arb_weights(f: usize, c: usize, k: usize) -> impl Strategy<Value = Tensor4> {
    proptest::collection::vec(-1.5f32..1.5, f * c * k * k)
        .prop_map(move |data| Tensor4::from_vec(f, c, k, k, data))
}

fn arb_geom() -> impl Strategy<Value = ConvGeometry> {
    (1usize..=3, 1usize..=2, 0usize..=1).prop_map(|(k, s, p)| ConvGeometry::new(k, s, p))
}

fn assert_close(a: &[f32], b: &[f32], tol: f32) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "mismatch at {}: {} vs {}",
            i,
            x,
            y
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward: parallel == scalar bitwise, for every band count.
    #[test]
    fn forward_parity(
        input in arb_feature_map(3),
        weights in arb_weights(4, 3, 3),
        geom in arb_geom().prop_filter("kernel 3", |g| g.kernel == 3),
        threads in 1usize..=9,
    ) {
        let scalar = forward_rows_with(EngineKind::Scalar.engine(), &input, &weights, None, geom);
        let parallel = forward_rows_with(&ParallelEngine::with_threads(threads), &input, &weights, None, geom);
        prop_assert_eq!(scalar.as_slice(), parallel.as_slice());
    }

    /// GTA: parallel == scalar bitwise under arbitrary masks.
    #[test]
    fn input_grad_parity(
        dout in arb_feature_map(4),
        mask_src in arb_feature_map(3),
        weights in arb_weights(4, 3, 3),
        threads in 1usize..=9,
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let masks = mask_src.masks();
        let scalar = input_grad_rows_with(
            EngineKind::Scalar.engine(), &dout, &weights, geom, H, W, &masks);
        let parallel = input_grad_rows_with(
            &ParallelEngine::with_threads(threads), &dout, &weights, geom, H, W, &masks);
        prop_assert_eq!(scalar.as_slice(), parallel.as_slice());
    }

    /// GTW: parallel == scalar bitwise.
    #[test]
    fn weight_grad_parity(
        input in arb_feature_map(2),
        dout in arb_feature_map(3),
        threads in 1usize..=9,
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let scalar = weight_grad_rows_with(EngineKind::Scalar.engine(), &input, &dout, geom);
        let parallel = weight_grad_rows_with(&ParallelEngine::with_threads(threads), &input, &dout, geom);
        prop_assert_eq!(scalar.as_slice(), parallel.as_slice());
    }

    /// Both engines match the dense reference forward within accumulation
    /// tolerance.
    #[test]
    fn forward_matches_dense_reference(
        input in arb_feature_map(3),
        weights in arb_weights(4, 3, 3),
        geom in arb_geom().prop_filter("kernel 3", |g| g.kernel == 3),
    ) {
        let dense_in = input.to_tensor();
        let want = conv::forward(&dense_in, &weights, None, geom);
        for kind in [EngineKind::Scalar, EngineKind::Parallel] {
            let got = forward_rows_with(kind.engine(), &input, &weights, None, geom);
            assert_close(got.as_slice(), want.as_slice(), 1e-4)?;
        }
    }

    /// Both engines match the dense reference weight gradient.
    #[test]
    fn weight_grad_matches_dense_reference(
        input in arb_feature_map(2),
        dout in arb_feature_map(3),
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let want = conv::weight_grad(&input.to_tensor(), &dout.to_tensor(), geom);
        for kind in [EngineKind::Scalar, EngineKind::Parallel] {
            let got = weight_grad_rows_with(kind.engine(), &input, &dout, geom);
            assert_close(got.as_slice(), want.as_slice(), 1e-4)?;
        }
    }

    /// Workspace row-at-a-time SRC agrees with the allocating wrapper for
    /// arbitrary rows — the zero-allocation path computes the same values.
    #[test]
    fn workspace_src_matches_wrapper(
        row in proptest::collection::vec(
            prop_oneof![1u32 => Just(0.0f32), 1u32 => -3.0f32..3.0], 24),
        geom in arb_geom(),
    ) {
        let sparse = sparsetrain_sparse::SparseVec::from_dense(&row);
        let kernel: Vec<f32> = (0..geom.kernel).map(|i| 0.75 - i as f32 * 0.5).collect();
        let out_len = geom.output_extent(24);
        let mut ws = Workspace::new();
        let fast = ws.src(&sparse, &kernel, geom, out_len).to_vec();
        let slow = sparsetrain_sparse::src::src_conv(&sparse, &kernel, geom, out_len);
        prop_assert_eq!(fast, slow);
    }
}
