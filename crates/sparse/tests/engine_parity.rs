//! Property tests pinning the engine contracts:
//!
//! * the parallel engine is bitwise-identical to the scalar reference on
//!   the per-sample paths, and both match the dense reference in
//!   `sparsetrain-tensor`;
//! * the registry enumeration below automatically covers every registered
//!   backend — including `simd` (runtime-dispatched AVX2/portable lanes),
//!   `im2row` (cache-blocked dense lowering) and their `parallel:*` banded
//!   compositions, which must match the scalar reference bitwise on every
//!   leg;
//! * one engine call prepares its [`BandContext`] (densified operands,
//!   im2row patches) exactly once regardless of band count, and every band
//!   borrows the shared state;
//! * for **every registered engine** (or just the `SPARSETRAIN_ENGINE`
//!   override when set, as in the CI engine matrix), the batched entry
//!   points (`forward_batch_into` / `input_grad_batch_into` /
//!   `weight_grad_batch_into`) are bitwise-identical to running that
//!   engine sample by sample — and for the float engines, to the scalar
//!   reference itself;
//! * the Q8.8 [`FixedPointEngine`] stays within its analytic quantization
//!   error bounds against the scalar reference (golden tests).
//!
//! Parity is asserted with exact `==` on the raw f32 slices — banding only
//! ever splits work across disjoint output regions while keeping the
//! scalar per-row accumulation order, so any difference at all is a bug.

use proptest::prelude::*;
use sparsetrain_sparse::rowconv::SparseFeatureMap;
use sparsetrain_sparse::{
    registry, BandContext, FixedPointEngine, KernelEngine, ParallelEngine, ScalarEngine, SimdEngine,
    Workspace,
};
use sparsetrain_tensor::conv::{self, ConvGeometry};
use sparsetrain_tensor::{Tensor3, Tensor4};

const H: usize = 6;
const W: usize = 7;

fn arb_feature_map(channels: usize) -> impl Strategy<Value = SparseFeatureMap> {
    proptest::collection::vec(
        prop_oneof![
            55u32 => Just(0.0f32),
            45u32 => (-2.0f32..2.0).prop_filter("non-zero", |v| *v != 0.0),
        ],
        channels * H * W,
    )
    .prop_map(move |data| SparseFeatureMap::from_tensor(&Tensor3::from_vec(channels, H, W, data)))
}

fn arb_batch(channels: usize, max_len: usize) -> impl Strategy<Value = Vec<SparseFeatureMap>> {
    proptest::collection::vec(arb_feature_map(channels), 1..=max_len)
}

fn arb_weights(f: usize, c: usize, k: usize) -> impl Strategy<Value = Tensor4> {
    proptest::collection::vec(-1.5f32..1.5, f * c * k * k)
        .prop_map(move |data| Tensor4::from_vec(f, c, k, k, data))
}

fn arb_geom() -> impl Strategy<Value = ConvGeometry> {
    (1usize..=3, 1usize..=2, 0usize..=1).prop_map(|(k, s, p)| ConvGeometry::new(k, s, p))
}

/// The registry engines under test: restricted to the `SPARSETRAIN_ENGINE`
/// override when set (the CI matrix leg), the whole registry otherwise.
fn engines_under_test() -> Vec<registry::EngineHandle> {
    match registry::env_override().expect("SPARSETRAIN_ENGINE must name a registered engine") {
        Some(handle) => vec![handle],
        None => registry::registry(),
    }
}

fn assert_close(a: &[f32], b: &[f32], tol: f32) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "mismatch at {}: {} vs {}",
            i,
            x,
            y
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward: parallel == scalar bitwise, for every band count.
    #[test]
    fn forward_parity(
        input in arb_feature_map(3),
        weights in arb_weights(4, 3, 3),
        geom in arb_geom().prop_filter("kernel 3", |g| g.kernel == 3),
        threads in 1usize..=9,
    ) {
        let scalar = ScalarEngine.forward(&input, &weights, None, geom);
        let parallel = ParallelEngine::with_threads(threads).forward(&input, &weights, None, geom);
        prop_assert_eq!(scalar.as_slice(), parallel.as_slice());
    }

    /// GTA: parallel == scalar bitwise under arbitrary masks.
    #[test]
    fn input_grad_parity(
        dout in arb_feature_map(4),
        mask_src in arb_feature_map(3),
        weights in arb_weights(4, 3, 3),
        threads in 1usize..=9,
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let masks = mask_src.masks();
        let scalar = ScalarEngine.input_grad(&dout, &weights, geom, H, W, &masks);
        let parallel = ParallelEngine::with_threads(threads)
            .input_grad(&dout, &weights, geom, H, W, &masks);
        prop_assert_eq!(scalar.as_slice(), parallel.as_slice());
    }

    /// GTW: parallel == scalar bitwise.
    #[test]
    fn weight_grad_parity(
        input in arb_feature_map(2),
        dout in arb_feature_map(3),
        threads in 1usize..=9,
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let scalar = ScalarEngine.weight_grad(&input, &dout, geom);
        let parallel = ParallelEngine::with_threads(threads).weight_grad(&input, &dout, geom);
        prop_assert_eq!(scalar.as_slice(), parallel.as_slice());
    }

    /// Batched forward: for every registered engine, one batch-level call
    /// is bitwise-identical to that engine's per-sample execution — and
    /// therefore (fixed-point excepted) to the per-sample scalar reference.
    #[test]
    fn forward_batch_parity_all_engines(
        inputs in arb_batch(3, 5),
        weights in arb_weights(4, 3, 3),
        geom in arb_geom().prop_filter("kernel 3", |g| g.kernel == 3),
    ) {
        for handle in engines_under_test() {
            let engine = handle.engine();
            let batched = engine.forward_batch(&inputs, &weights, None, geom);
            prop_assert_eq!(batched.len(), inputs.len());
            for (input, got) in inputs.iter().zip(&batched) {
                let per_sample = engine.forward(input, &weights, None, geom);
                prop_assert_eq!(got.as_slice(), per_sample.as_slice(), "engine {}", handle.name());
                if handle.name() != "fixed" {
                    let reference = ScalarEngine.forward(input, &weights, None, geom);
                    prop_assert_eq!(got.as_slice(), reference.as_slice(), "engine {}", handle.name());
                }
            }
        }
    }

    /// Batched GTA: bitwise-identical to per-sample execution on every
    /// registered engine, under arbitrary per-sample masks.
    #[test]
    fn input_grad_batch_parity_all_engines(
        douts in arb_batch(4, 4),
        mask_srcs in arb_batch(3, 4),
        weights in arb_weights(4, 3, 3),
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let n = douts.len().min(mask_srcs.len());
        let douts = &douts[..n];
        let masks: Vec<_> = mask_srcs[..n].iter().map(SparseFeatureMap::masks).collect();
        for handle in engines_under_test() {
            let engine = handle.engine();
            let batched = engine.input_grad_batch(douts, &weights, geom, H, W, &masks);
            for ((dout, mask), got) in douts.iter().zip(&masks).zip(&batched) {
                let per_sample = engine.input_grad(dout, &weights, geom, H, W, mask);
                prop_assert_eq!(got.as_slice(), per_sample.as_slice(), "engine {}", handle.name());
                if handle.name() != "fixed" {
                    let reference = ScalarEngine.input_grad(dout, &weights, geom, H, W, mask);
                    prop_assert_eq!(got.as_slice(), reference.as_slice(), "engine {}", handle.name());
                }
            }
        }
    }

    /// Batched GTW: the shared batch accumulator is bitwise-identical to
    /// accumulating sample by sample on every registered engine.
    #[test]
    fn weight_grad_batch_parity_all_engines(
        inputs in arb_batch(2, 4),
        douts in arb_batch(3, 4),
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let n = inputs.len().min(douts.len());
        let (inputs, douts) = (&inputs[..n], &douts[..n]);
        for handle in engines_under_test() {
            let engine = handle.engine();
            let mut batched = Tensor4::zeros(3, 2, 3, 3);
            engine.weight_grad_batch_into(inputs, douts, geom, &mut batched);
            let mut per_sample = Tensor4::zeros(3, 2, 3, 3);
            for (input, dout) in inputs.iter().zip(douts) {
                engine.weight_grad_into(input, dout, geom, &mut per_sample);
            }
            prop_assert_eq!(batched.as_slice(), per_sample.as_slice(), "engine {}", handle.name());
        }
    }

    /// Both float engines match the dense reference forward within
    /// accumulation tolerance.
    #[test]
    fn forward_matches_dense_reference(
        input in arb_feature_map(3),
        weights in arb_weights(4, 3, 3),
        geom in arb_geom().prop_filter("kernel 3", |g| g.kernel == 3),
    ) {
        let dense_in = input.to_tensor();
        let want = conv::forward(&dense_in, &weights, None, geom);
        for name in ["scalar", "parallel"] {
            let engine = registry::lookup(name).unwrap().engine();
            let got = engine.forward(&input, &weights, None, geom);
            assert_close(got.as_slice(), want.as_slice(), 1e-4)?;
        }
    }

    /// Both float engines match the dense reference weight gradient.
    #[test]
    fn weight_grad_matches_dense_reference(
        input in arb_feature_map(2),
        dout in arb_feature_map(3),
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let want = conv::weight_grad(&input.to_tensor(), &dout.to_tensor(), geom);
        for name in ["scalar", "parallel"] {
            let engine = registry::lookup(name).unwrap().engine();
            let got = engine.weight_grad(&input, &dout, geom);
            assert_close(got.as_slice(), want.as_slice(), 1e-4)?;
        }
    }

    /// Golden bound: the Q8.8 engine's forward error against the float
    /// reference never exceeds the analytic per-term rounding budget.
    ///
    /// Every product of a rounded activation (error ≤ ε/2, magnitude < 2)
    /// and a rounded tap (error ≤ ε/2, magnitude < 1.5) is off by at most
    /// `2·ε/2 + 1.5·ε/2 + ε²/4 < 1.76ε`; an output accumulates at most
    /// `C × K × K` such terms and one final store rounding (ε/2).
    #[test]
    fn fixed_point_error_bounds(
        input in arb_feature_map(3),
        weights in arb_weights(4, 3, 3),
        geom in arb_geom().prop_filter("kernel 3", |g| g.kernel == 3),
    ) {
        let fixed = registry::lookup("fixed").unwrap().engine();
        let got = fixed.forward(&input, &weights, None, geom);
        let want = ScalarEngine.forward(&input, &weights, None, geom);
        let eps = FixedPointEngine::q8_8().format().epsilon();
        let terms = (3 * geom.kernel * geom.kernel) as f32;
        let bound = terms * 1.76 * eps + eps / 2.0;
        for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            prop_assert!(
                (g - w).abs() <= bound,
                "output {} error {} exceeds bound {}",
                i,
                (g - w).abs(),
                bound
            );
        }
    }

    /// Golden bound: the Q8.8 GTW error per tap is bounded by the number
    /// of accumulated products times the per-term budget (operands < 2.0
    /// on both sides ⇒ per-term error < `2·ε/2 + 2·ε/2 + ε²/4 < 2.1ε`),
    /// plus the final accumulator store rounding.
    #[test]
    fn fixed_point_weight_grad_error_bounds(
        input in arb_feature_map(2),
        dout in arb_feature_map(3),
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let fixed = registry::lookup("fixed").unwrap().engine();
        let got = fixed.weight_grad(&input, &dout, geom);
        let want = ScalarEngine.weight_grad(&input, &dout, geom);
        let eps = FixedPointEngine::q8_8().format().epsilon();
        // Each tap accumulates at most Ho × Ow products.
        let terms = (H * W) as f32;
        let bound = terms * 2.1 * eps + eps / 2.0;
        for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            prop_assert!(
                (g - w).abs() <= bound,
                "tap {} error {} exceeds bound {}",
                i,
                (g - w).abs(),
                bound
            );
        }
    }

    /// Workspace row-at-a-time SRC agrees with the allocating wrapper for
    /// arbitrary rows — the zero-allocation path computes the same values.
    #[test]
    fn workspace_src_matches_wrapper(
        row in proptest::collection::vec(
            prop_oneof![1u32 => Just(0.0f32), 1u32 => -3.0f32..3.0], 24),
        geom in arb_geom(),
    ) {
        let sparse = sparsetrain_sparse::SparseVec::from_dense(&row);
        let kernel: Vec<f32> = (0..geom.kernel).map(|i| 0.75 - i as f32 * 0.5).collect();
        let out_len = geom.output_extent(24);
        let mut ws = Workspace::new();
        let fast = ws.src(&sparse, &kernel, geom, out_len).to_vec();
        let slow = sparsetrain_sparse::src::src_conv(&sparse, &kernel, geom, out_len);
        prop_assert_eq!(fast, slow);
    }
}

// ---------------------------------------------------------------------------
// Pruning leg of the engine matrix
// ---------------------------------------------------------------------------

/// One pruned training epoch's observables: final weights, per-site
/// pre-prune gradient taps, and the next step's stream coordinates.
struct PrunedEpoch {
    weights: Vec<f32>,
    tapped: Vec<(String, Vec<f32>)>,
    streams: sparsetrain_core::prune::StepStreams,
}

/// Trains one epoch of a pruned mini CNN on `handle`'s engine.
fn pruned_epoch(handle: registry::EngineHandle) -> PrunedEpoch {
    use sparsetrain_nn::data::SyntheticSpec;
    use sparsetrain_nn::train::{TrainConfig, Trainer};
    use sparsetrain_nn::{models, Layer};

    let (train, _) = SyntheticSpec::tiny(3).generate();
    let net = models::mini_cnn(3, 4, Some(sparsetrain_core::prune::PruneConfig::new(0.9, 2)));
    let mut trainer = Trainer::new(net, TrainConfig::quick().with_engine_handle(handle));
    trainer.train_epoch(&train);
    let tapped = trainer.tap_gradients(&train);
    let streams = trainer.step_streams();
    let mut weights = Vec::new();
    trainer
        .network_mut()
        .visit_params(&mut |w, _| weights.extend_from_slice(w));
    PrunedEpoch {
        weights,
        tapped,
        streams,
    }
}

/// For every registered engine: a pruned training epoch is deterministic
/// (two independent runs agree bitwise), and the engine's banded pruning
/// path reproduces the scalar/sequential golden bitwise on that run's
/// *actual* activation gradients. The pruning stage is engine-invariant
/// even for backends whose convolution datapath is not (fixed-point).
#[test]
fn pruning_parity_across_engines() {
    use sparsetrain_core::prune::{LayerPruner, PruneConfig};

    for handle in engines_under_test() {
        let a = pruned_epoch(handle);
        let b = pruned_epoch(handle);
        assert_eq!(
            a.weights,
            b.weights,
            "engine {}: pruned training not reproducible",
            handle.name()
        );
        assert_eq!(
            a.tapped,
            b.tapped,
            "engine {}: gradients not reproducible",
            handle.name()
        );

        // Banded pruning on this engine == sequential scalar golden, on
        // the real gradient tensors this engine produced, under the exact
        // streams the trainer's PruneHook would derive for this step.
        for (site, grads) in &a.tapped {
            let stream = a.streams.site(site);
            let mut warm = LayerPruner::new(PruneConfig::new(0.9, 1));
            warm.prune_batch(&mut grads.clone(), &stream); // warm the FIFO
            let mut sequential = warm.clone();
            let mut banded = warm;
            let mut seq_data = grads.clone();
            sequential.prune_batch_parts(&mut [&mut seq_data], &stream);
            let mut band_data = grads.clone();
            banded.prune_batch_parts_on(&mut [&mut band_data], &stream, handle.engine());
            assert_eq!(
                seq_data,
                band_data,
                "engine {}: banded prune of {site} diverged from sequential golden",
                handle.name()
            );
        }
    }
}

/// The float engines (scalar, parallel, simd, parallel:simd, im2row,
/// parallel:im2row) share one bitwise training trajectory with pruning
/// enabled — banding the convolutions across threads, sweeping them across
/// vector lanes, lowering dense layers through im2row patches, *and*
/// banding the pruning change nothing.
#[test]
fn pruned_training_identical_on_float_engines() {
    if registry::env_override().expect("valid engine").is_some() {
        // The CI engine matrix pins a single engine; the cross-engine
        // comparison runs in the unrestricted leg.
        return;
    }
    let scalar = pruned_epoch(registry::lookup("scalar").unwrap());
    for name in ["parallel", "simd", "parallel:simd", "im2row", "parallel:im2row"] {
        let other = pruned_epoch(registry::lookup(name).unwrap());
        assert_eq!(
            scalar.weights, other.weights,
            "{name}: pruned weights diverged from scalar"
        );
        assert_eq!(
            scalar.tapped, other.tapped,
            "{name}: gradient taps diverged from scalar"
        );
    }
}

/// The simd engine's portable path (what non-AVX2 targets run) matches
/// the dispatched engine bitwise on the conv kernels — so CI on any
/// hardware pins both implementations.
#[test]
fn simd_portable_path_matches_dispatched() {
    use sparsetrain_sparse::SimdEngine;
    let geom = ConvGeometry::new(3, 1, 1);
    let input = SparseFeatureMap::from_tensor(&Tensor3::from_fn(3, H, W, |c, y, x| {
        if (c + 2 * y + 3 * x) % 3 != 0 {
            (y as f32 - x as f32) * 0.21 + c as f32 * 0.4
        } else {
            0.0
        }
    }));
    let dout = SparseFeatureMap::from_tensor(&Tensor3::from_fn(4, H, W, |c, y, x| {
        if (c * y + x) % 4 == 0 {
            0.3 - (c + x) as f32 * 0.05
        } else {
            0.0
        }
    }));
    let weights = Tensor4::from_fn(4, 3, 3, 3, |f, c, u, v| {
        ((f * 7 + c * 5 + u * 3 + v) % 9) as f32 * 0.125 - 0.5
    });
    let masks = input.masks();
    let auto = SimdEngine::auto();
    let portable = SimdEngine::portable();
    assert_eq!(
        auto.forward(&input, &weights, None, geom).as_slice(),
        portable.forward(&input, &weights, None, geom).as_slice()
    );
    assert_eq!(
        auto.input_grad(&dout, &weights, geom, H, W, &masks).as_slice(),
        portable
            .input_grad(&dout, &weights, geom, H, W, &masks)
            .as_slice()
    );
    assert_eq!(
        auto.weight_grad(&input, &dout, geom).as_slice(),
        portable.weight_grad(&input, &dout, geom).as_slice()
    );
}

/// BandContext reuse: one engine call prepares (densifies) its operands
/// **exactly once**, no matter how many bands the call fans out into, and
/// every band receives the shared prepared state. Pinned through the
/// public seam with a counting wrapper around the simd engine, which is
/// exactly how `"parallel:simd"` is composed.
#[test]
fn band_context_prepared_once_per_engine_call() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingEngine {
        prepares: AtomicUsize,
        bands: AtomicUsize,
    }

    impl KernelEngine for CountingEngine {
        fn name(&self) -> &'static str {
            "counting-simd"
        }

        fn prepare_forward(
            &self,
            input: &SparseFeatureMap,
            weights: &Tensor4,
            bias: Option<&[f32]>,
            geom: ConvGeometry,
        ) -> BandContext {
            self.prepares.fetch_add(1, Ordering::SeqCst);
            SimdEngine::auto().prepare_forward(input, weights, bias, geom)
        }

        #[allow(clippy::too_many_arguments)]
        fn forward_band(
            &self,
            ctx: &BandContext,
            input: &SparseFeatureMap,
            weights: &Tensor4,
            bias: Option<&[f32]>,
            geom: ConvGeometry,
            oh: usize,
            ow: usize,
            f_lo: usize,
            out_band: &mut [f32],
        ) {
            self.bands.fetch_add(1, Ordering::SeqCst);
            // The input below is dense, so the preparation must have
            // densified it — every band borrows that one map instead of
            // re-densifying (the pre-BandContext per-band loss).
            assert!(
                !ctx.dense().is_empty(),
                "band did not receive the prepared densified operand map"
            );
            SimdEngine::auto().forward_band(ctx, input, weights, bias, geom, oh, ow, f_lo, out_band);
        }
    }

    static COUNTING: CountingEngine = CountingEngine {
        prepares: AtomicUsize::new(0),
        bands: AtomicUsize::new(0),
    };

    // Fully dense input: every row is sweep-worthy, so prepare densifies.
    let geom = ConvGeometry::new(3, 1, 1);
    let input = SparseFeatureMap::from_tensor(&Tensor3::from_fn(3, H, W, |c, y, x| {
        0.25 + (c + y + x) as f32 * 0.125
    }));
    let weights = Tensor4::from_fn(8, 3, 3, 3, |f, c, u, v| ((f + c + u + v) % 5) as f32 * 0.25 - 0.5);
    let want = ScalarEngine.forward(&input, &weights, None, geom);

    let mut expected_prepares = 0;
    for threads in [1usize, 2, 4, 7] {
        let engine = ParallelEngine::over("test:counting", &COUNTING).banded(threads);
        let bands_before = COUNTING.bands.load(Ordering::SeqCst);
        let got = engine.forward(&input, &weights, None, geom);
        assert_eq!(got.as_slice(), want.as_slice(), "threads {threads}");
        expected_prepares += 1;
        assert_eq!(
            COUNTING.prepares.load(Ordering::SeqCst),
            expected_prepares,
            "exactly one preparation per engine call at {threads} bands"
        );
        // Near-equal contiguous splitting: requesting `threads` bands over
        // 8 filters yields ceil(8 / ceil(8 / threads)) band calls.
        let per_band = 8usize.div_ceil(threads);
        assert_eq!(
            COUNTING.bands.load(Ordering::SeqCst) - bands_before,
            8usize.div_ceil(per_band),
            "band fan-out at {threads} bands"
        );
    }

    // Batched entry point: one preparation per sample, not per band chunk.
    let inputs = vec![input.clone(), input.clone(), input];
    let engine = ParallelEngine::over("test:counting", &COUNTING).banded(5);
    let outs = engine.forward_batch(&inputs, &weights, None, geom);
    for out in &outs {
        assert_eq!(out.as_slice(), want.as_slice());
    }
    assert_eq!(
        COUNTING.prepares.load(Ordering::SeqCst),
        expected_prepares + inputs.len(),
        "batched call prepares once per sample"
    );
}

/// The im2row fallback legs through the registry handle: stride ≠ 1 (the
/// lowering is stride-1 only), a literal -0.0 bias (only the scalar skips
/// preserve its sign bit), and a map straddling the density cutoff (mixed
/// micro-kernel/sparse output rows) all stay bitwise equal to scalar.
#[test]
fn im2row_fallback_legs_match_scalar() {
    let engine = registry::lookup("im2row").expect("registered").engine();
    let weights = Tensor4::from_fn(9, 3, 3, 3, |f, c, u, v| {
        ((f * 7 + c * 5 + u * 3 + v) % 9) as f32 * 0.125 - 0.5
    });

    // Mixed-density map: channel 0 dense, channel 1 at the 1/8 cutoff
    // boundary, channel 2 far below it.
    let input = SparseFeatureMap::from_tensor(&Tensor3::from_fn(3, H, 16, |c, y, x| match c {
        0 => 0.3 + (y + x) as f32 * 0.05,
        1 if (y + x) % 8 == 0 => 1.0 + y as f32 * 0.25,
        2 if (y * 16 + x) % 40 == 0 => -0.75,
        _ => 0.0,
    }));

    for geom in [ConvGeometry::new(3, 1, 1), ConvGeometry::new(3, 2, 1)] {
        let want = ScalarEngine.forward(&input, &weights, None, geom);
        let got = engine.forward(&input, &weights, None, geom);
        assert_eq!(got.as_slice(), want.as_slice(), "stride {}", geom.stride);
    }

    let geom = ConvGeometry::new(3, 1, 1);
    let mut bias = vec![0.5f32; 9];
    bias[4] = -0.0;
    let want = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
    let got = engine.forward(&input, &weights, Some(&bias), geom);
    let bits = |t: &Tensor3| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&got), bits(&want), "-0.0 bias leg");
}
