//! Property tests for the compressed-row storage-format cost model.

use proptest::prelude::*;
use sparsetrain_sparse::formats::{best_format, compression_ratio, storage_words, RowFormat};
use sparsetrain_sparse::SparseVec;

fn arb_row() -> impl Strategy<Value = SparseVec> {
    // Arbitrary dense rows with controllable zero runs: value 0 with
    // probability ~2/3.
    prop::collection::vec(prop_oneof![2 => Just(0.0f32), 1 => 0.01f32..1.0], 1..512)
        .prop_map(|dense| SparseVec::from_dense(&dense))
}

proptest! {
    #[test]
    fn every_format_stores_at_least_the_values(row in arb_row()) {
        for f in RowFormat::ALL {
            prop_assert!(
                storage_words(&row, f) >= row.nnz() as u64,
                "{} lost values",
                f.name()
            );
        }
    }

    #[test]
    fn dense_cost_is_always_the_row_length(row in arb_row()) {
        prop_assert_eq!(storage_words(&row, RowFormat::Dense), row.len() as u64);
    }

    #[test]
    fn best_format_is_the_minimum(row in arb_row()) {
        let (best, words) = best_format(&row);
        for f in RowFormat::ALL {
            prop_assert!(storage_words(&row, f) >= words, "{} beat {}", f.name(), best.name());
        }
    }

    #[test]
    fn bitmap_overhead_is_exactly_len_over_16(row in arb_row()) {
        let overhead = storage_words(&row, RowFormat::Bitmap) - row.nnz() as u64;
        prop_assert_eq!(overhead, (row.len() as u64).div_ceil(16));
    }

    #[test]
    fn compression_ratio_inverts_storage(row in arb_row()) {
        for f in RowFormat::ALL {
            let r = compression_ratio(&row, f);
            let w = storage_words(&row, f);
            if w > 0 {
                prop_assert!((r - row.len() as f64 / w as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn offsets_beat_bitmap_below_quarter_density(row in arb_row()) {
        // The analytic crossover: offsets pay ⌈slots/4⌉ ≥ ⌈nnz/4⌉ words,
        // bitmap pays ⌈len/16⌉. When nnz/len is well below 1/4 and gaps
        // are short enough to avoid escapes, offsets never lose by more
        // than the escape slack; we assert the weaker monotone form —
        // best_format never returns Dense for rows under 50% density
        // with at least 32 positions.
        prop_assume!(row.len() >= 32);
        prop_assume!(row.density() < 0.5);
        let (best, _) = best_format(&row);
        prop_assert_ne!(best, RowFormat::Dense);
    }
}
