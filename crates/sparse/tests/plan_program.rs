//! Property and corruption tests for the binary `STPLAN` execution-program
//! format: arbitrary plans over every registered engine name round-trip
//! losslessly through `Plan::to_program` → `encode` → `decode` →
//! `Plan::from_program`, encoding is canonical (encode∘decode is the
//! identity on bytes), and corrupted input — flipped magic, bad version,
//! truncated sections, trailing garbage, random byte mutations — returns a
//! typed [`DecodeError`], never panics.

use proptest::prelude::*;
use sparsetrain_sparse::plan_program::{is_binary_plan, DecodeError};
use sparsetrain_sparse::planner::load_plan;
use sparsetrain_sparse::{ExecutionProgram, Plan, Stage};

/// Every engine name the plan grammar can pin a cell to: the six float
/// autotuning candidates plus a parsed fixed-point format.
const ENGINE_NAMES: [&str; 7] = [
    "scalar",
    "parallel",
    "simd",
    "parallel:simd",
    "im2row",
    "parallel:im2row",
    "fixed:q8.8",
];

fn arb_engine() -> impl Strategy<Value = &'static str> {
    (0usize..ENGINE_NAMES.len()).prop_map(|i| ENGINE_NAMES[i])
}

/// Serializable layer ids: non-empty, whitespace-free, `#`-free.
fn arb_layer() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..39, 1..12).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                0..=25 => (b'a' + c) as char,
                26..=35 => (b'0' + (c - 26)) as char,
                36 => '_',
                37 => '.',
                _ => '-',
            })
            .collect()
    })
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    (0usize..3).prop_map(|i| Stage::ALL[i])
}

/// An arbitrary frozen plan, built through the text grammar so cell keys
/// deduplicate exactly like a probed plan's `BTreeMap` does.
fn arb_plan() -> impl Strategy<Value = Plan> {
    let cell = (arb_layer(), arb_stage(), arb_engine());
    (arb_engine(), prop::collection::vec(cell, 0..10)).prop_map(|(default, cells)| {
        let mut text = format!("default {default}\n");
        for (layer, stage, engine) in cells {
            text.push_str(&format!("{layer} {} {engine}\n", stage.name()));
        }
        Plan::from_text(&text).expect("generated plan text is valid")
    })
}

/// A plan plus trace-style metadata (workspace hints, prune points), as
/// `compile_plan` would attach.
fn arb_program() -> impl Strategy<Value = ExecutionProgram> {
    let hint = (arb_layer(), arb_stage(), 0u64..=u64::MAX);
    let prune = (arb_layer(), 0u64..=u64::MAX);
    (
        arb_plan(),
        prop::collection::vec(hint, 0..8),
        prop::collection::vec(prune, 0..6),
    )
        .prop_map(|(plan, hints, prunes)| {
            let mut program = plan.to_program();
            for (layer, stage, elements) in hints {
                program.note_workspace(&layer, stage, elements);
            }
            for (layer, grad_nnz) in prunes {
                program.note_prune_point(&layer, grad_nnz);
            }
            program
        })
}

proptest! {
    #[test]
    fn arbitrary_plans_roundtrip_losslessly(plan in arb_plan()) {
        let program = plan.to_program();
        let bytes = program.encode().expect("frozen plans encode");
        prop_assert!(is_binary_plan(&bytes));
        let decoded = ExecutionProgram::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &program);
        let back = Plan::from_program(&decoded).expect("engine names resolve");
        prop_assert_eq!(back, plan);
    }

    #[test]
    fn encoding_is_canonical(program in arb_program()) {
        let bytes = program.encode().expect("programs encode");
        let decoded = ExecutionProgram::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &program);
        // encode ∘ decode is the identity on bytes: the format has one
        // canonical serialization per program.
        prop_assert_eq!(decoded.encode().expect("re-encodes"), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error(program in arb_program(), cut in 0.0f64..1.0) {
        let bytes = program.encode().expect("programs encode");
        let len = (cut * bytes.len() as f64) as usize;
        prop_assume!(len < bytes.len());
        // Every strict prefix fails with a typed error — never panics,
        // never decodes to a wrong program.
        prop_assert!(ExecutionProgram::decode(&bytes[..len]).is_err());
    }

    #[test]
    fn single_byte_mutations_never_panic(
        program in arb_program(),
        pos in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let mut bytes = program.encode().expect("programs encode");
        let i = (pos * bytes.len() as f64) as usize % bytes.len();
        bytes[i] = bytes[i].wrapping_add(delta);
        // A flipped byte either still decodes (it hit a don't-care value
        // like a workspace element count) or returns a typed error; the
        // decoder must never panic or loop.
        let _ = ExecutionProgram::decode(&bytes);
    }
}

#[test]
fn flipped_magic_is_a_typed_error() {
    let mut bytes = Plan::from_text("default simd\n")
        .unwrap()
        .to_program()
        .encode()
        .unwrap();
    bytes[0] ^= 0xFF;
    assert!(!is_binary_plan(&bytes));
    assert!(matches!(
        ExecutionProgram::decode(&bytes),
        Err(DecodeError::BadMagic)
    ));
}

#[test]
fn future_version_is_a_typed_error() {
    let mut bytes = Plan::from_text("default simd\n")
        .unwrap()
        .to_program()
        .encode()
        .unwrap();
    bytes[8] = 0xFF; // version u16 LE lives right after the 8-byte magic
    assert!(is_binary_plan(&bytes), "version bumps must still sniff as binary");
    assert!(matches!(
        ExecutionProgram::decode(&bytes),
        Err(DecodeError::UnsupportedVersion(v)) if v != 1
    ));
}

#[test]
fn truncated_section_is_a_typed_error() {
    let bytes = Plan::from_text("default simd\nconv1 forward scalar\n")
        .unwrap()
        .to_program()
        .encode()
        .unwrap();
    let cut = &bytes[..bytes.len() - 3];
    assert!(matches!(
        ExecutionProgram::decode(cut),
        Err(DecodeError::TruncatedSection { .. })
    ));
}

#[test]
fn trailing_garbage_is_a_typed_error() {
    let mut bytes = Plan::from_text("default simd\n")
        .unwrap()
        .to_program()
        .encode()
        .unwrap();
    bytes.extend_from_slice(b"tail");
    assert!(matches!(
        ExecutionProgram::decode(&bytes),
        Err(DecodeError::TrailingBytes { extra: 4 })
    ));
}

#[test]
fn load_plan_sniffs_binary_and_text() {
    let dir = std::env::temp_dir().join(format!("sparsetrain-plan-sniff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let plan = Plan::from_text("default parallel:simd\nconv1 forward im2row\n").unwrap();

    let bin = dir.join("plan.stplan");
    std::fs::write(&bin, plan.to_program().encode().unwrap()).unwrap();
    assert_eq!(load_plan(bin.to_str().unwrap()).expect("binary plan loads"), plan);

    let text = dir.join("plan.txt");
    std::fs::write(&text, plan.to_text()).unwrap();
    assert_eq!(load_plan(text.to_str().unwrap()).expect("text plan loads"), plan);

    let junk = dir.join("plan.junk");
    std::fs::write(&junk, b"STPLAN\x01\x00 but then nonsense").unwrap();
    let err = load_plan(junk.to_str().unwrap()).expect_err("corrupt binary rejected");
    assert!(err.to_string().contains("plan.junk"), "{err}");

    std::fs::remove_dir_all(&dir).unwrap();
}
