//! Property-based tests of the sparse kernels' algebraic invariants.

use proptest::prelude::*;
use sparsetrain_sparse::msrc::{fully_masked_loads, msrc_conv};
use sparsetrain_sparse::osrc::{osrc_conv, osrc_pair_count};
use sparsetrain_sparse::src::{src_accumulate, src_conv};
use sparsetrain_sparse::work::{msrc_work, osrc_work, src_work};
use sparsetrain_sparse::{RowMask, SparseVec};
use sparsetrain_tensor::conv::ConvGeometry;

fn arb_sparse_row(len: usize) -> impl Strategy<Value = SparseVec> {
    proptest::collection::vec(
        prop_oneof![
            60u32 => Just(0.0f32),
            40u32 => (-4.0f32..4.0).prop_filter("non-zero", |v| *v != 0.0),
        ],
        len,
    )
    .prop_map(|dense| SparseVec::from_dense(&dense))
}

fn arb_geom() -> impl Strategy<Value = ConvGeometry> {
    (1usize..=5, 1usize..=2, 0usize..=2).prop_map(|(k, s, p)| ConvGeometry::new(k, s, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SparseVec dense roundtrip is lossless.
    #[test]
    fn compressed_roundtrip(row in arb_sparse_row(64)) {
        let dense = row.to_dense();
        prop_assert!(row.validate().is_ok());
        prop_assert_eq!(SparseVec::from_dense(&dense), row);
    }

    /// SRC is linear: conv(a + b) == conv(a) + conv(b) element-wise.
    #[test]
    fn src_is_linear(
        a in arb_sparse_row(32),
        b in arb_sparse_row(32),
        geom in arb_geom(),
    ) {
        let kernel: Vec<f32> = (0..geom.kernel).map(|i| 0.5 + i as f32 * 0.25).collect();
        if 32 + 2 * geom.pad < geom.kernel { return Ok(()); }
        let out_len = geom.output_extent(32);
        let ca = src_conv(&a, &kernel, geom, out_len);
        let cb = src_conv(&b, &kernel, geom, out_len);
        let sum_dense: Vec<f32> = a.to_dense().iter().zip(b.to_dense()).map(|(x, y)| x + y).collect();
        let csum = src_conv(&SparseVec::from_dense(&sum_dense), &kernel, geom, out_len);
        for i in 0..out_len {
            prop_assert!(
                (csum[i] - (ca[i] + cb[i])).abs() < 1e-3 * (1.0 + csum[i].abs()),
                "linearity violated at {}", i
            );
        }
    }

    /// src_accumulate into an existing buffer equals conv + add.
    #[test]
    fn src_accumulate_is_additive(
        row in arb_sparse_row(24),
        base in proptest::collection::vec(-1.0f32..1.0, 24),
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let kernel = [1.0f32, -0.5, 0.25];
        let fresh = src_conv(&row, &kernel, geom, 24);
        let mut acc = base.clone();
        src_accumulate(&row, &kernel, geom, &mut acc);
        for i in 0..24 {
            prop_assert!((acc[i] - (base[i] + fresh[i])).abs() < 1e-5);
        }
    }

    /// MSRC with a full mask never writes outside the scatter of its
    /// non-zeros, and an empty mask writes nothing.
    #[test]
    fn msrc_mask_extremes(grad in arb_sparse_row(32), geom in arb_geom(), kernel_seed in 0u32..100) {
        let kernel: Vec<f32> = (0..geom.kernel).map(|i| ((kernel_seed + i as u32) % 7) as f32 - 3.0).collect();
        let empty = RowMask::empty(32);
        let out = msrc_conv(&grad, &kernel, geom, &empty, 32);
        prop_assert!(out.iter().all(|&v| v == 0.0), "empty mask must produce zeros");
        prop_assert_eq!(fully_masked_loads(&grad, geom, &empty), grad.nnz());
        // With a full mask, only gradients whose entire scatter window is
        // out of bounds are skipped (stride can push windows past the row).
        let full = RowMask::full(32);
        let out_of_bounds = grad
            .iter()
            .filter(|&(ox, _)| {
                let base = ox as isize * geom.stride as isize - geom.pad as isize;
                base >= 32 || base + geom.kernel as isize <= 0
            })
            .count();
        prop_assert_eq!(fully_masked_loads(&grad, geom, &full), out_of_bounds);
    }

    /// OSRC commutes with the dense definition for random operands.
    #[test]
    fn osrc_matches_dense_definition(
        input in arb_sparse_row(24),
        geom in arb_geom(),
        grad_seed in 0u64..500,
    ) {
        if 24 + 2 * geom.pad < geom.kernel { return Ok(()); }
        let out_len = geom.output_extent(24);
        // Deterministic pseudo-random gradient of the right length.
        let grad_dense: Vec<f32> = (0..out_len)
            .map(|i| {
                let v = ((i as u64 * 2654435761 + grad_seed) >> 7) % 5;
                if v == 0 { 0.0 } else { v as f32 - 2.0 }
            })
            .collect();
        let grad = SparseVec::from_dense(&grad_dense);
        let got = osrc_conv(&input, &grad, geom);
        let in_dense = input.to_dense();
        let mut want = vec![0.0f32; geom.kernel];
        for (ox, &g) in grad_dense.iter().enumerate() {
            for (v, w) in want.iter_mut().enumerate() {
                let ix = ox as isize * geom.stride as isize - geom.pad as isize + v as isize;
                if ix >= 0 && (ix as usize) < in_dense.len() {
                    *w += g * in_dense[ix as usize];
                }
            }
        }
        for v in 0..geom.kernel {
            prop_assert!(
                (got[v] - want[v]).abs() < 1e-3 * (1.0 + want[v].abs()),
                "tap {} mismatch: {} vs {}", v, got[v], want[v]
            );
        }
    }

    /// Work-model invariants: cycles and MACs scale with non-zeros; zero
    /// rows cost nothing; pair counts bound OSRC MACs.
    #[test]
    fn work_model_invariants(
        row in arb_sparse_row(48),
        grad in arb_sparse_row(48),
        mask_row in arb_sparse_row(48),
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let sw = src_work(&row, geom);
        prop_assert_eq!(sw.loads, row.nnz() as u64);
        prop_assert_eq!(sw.macs, row.nnz() as u64 * 3);

        let mask = RowMask::from_offsets(48, SparseVec::from_dense(&mask_row.to_dense()).offsets());
        let mw = msrc_work(&grad, geom, &mask);
        prop_assert!(mw.loads <= grad.nnz() as u64);

        let ow = osrc_work(&row, &grad, geom);
        prop_assert_eq!(ow.macs, osrc_pair_count(&row, &grad, geom));
        if ow.macs > 0 {
            prop_assert!(ow.cycles >= ow.macs.div_ceil(3));
        }
    }

    /// Storage accounting: compressed words are twice the non-zero count.
    #[test]
    fn storage_words_track_nnz(row in arb_sparse_row(64)) {
        prop_assert_eq!(row.storage_words(), 2 * row.nnz());
    }
}
