//! Pluggable kernel execution engines for the SRC/MSRC/OSRC hot paths.
//!
//! [`KernelEngine`] is the seam between the functional dataflow model and
//! how it actually runs: every layer-level operation writes into
//! caller-provided tensors through the kernels' accumulate-into-scratch
//! APIs ([`crate::src::src_accumulate`], [`crate::msrc::msrc_accumulate`],
//! [`crate::osrc::osrc_accumulate`]), so the inner loops perform **zero
//! per-row heap allocations** on every engine.
//!
//! The float engines shipped here:
//!
//! * [`ScalarEngine`] — the reference single-threaded semantics. Iteration
//!   order is the specification; every other engine must match it
//!   bit-for-bit.
//! * [`ParallelEngine`] — band-parallel execution over the layer's
//!   *independent* output units (filters for Forward/GTW, channels for
//!   GTA) on the rayon fork-join API. Because parallelism is only ever
//!   across disjoint output rows while the per-row accumulation order is
//!   untouched, its results are **bitwise identical** to the scalar
//!   engine's — verified by the `engine_parity` property tests. Each
//!   band's computation is delegated to an *inner* engine through the
//!   [`KernelEngine`] band methods (`forward_band` / `input_grad_band` /
//!   `weight_grad_band`), so lane-level backends compose with banding —
//!   [`crate::simd_engine::SimdEngine`] inside rayon bands is registered
//!   as `"parallel:simd"`.
//!
//! Both engines also serve whole batches: the [`KernelEngine`] batch entry
//! points (`forward_batch_into`, `input_grad_batch_into`,
//! `weight_grad_batch_into`) default to sample-order fallbacks that define
//! the result, and [`ParallelEngine`] overrides them to band across
//! `samples × filters` so multi-core speedup scales with batch size, not
//! just layer width.
//!
//! [`BandContext`] is the per-call operand state on the band seam: before
//! fanning a stage out into bands, the caller asks the inner engine to
//! **prepare** the call once (`prepare_forward` / `prepare_input_grad` /
//! `prepare_weight_grad`) and passes the resulting context by reference
//! into every band worker. Backends use it to hoist per-call operand
//! transformations — the simd engine's densified operand maps, the im2row
//! engine's blocked patch matrix — above the fan-out, so `B` bands share
//! one preparation instead of redoing it `B` times (the documented
//! few-percent loss of the earlier per-band densification).
//!
//! Beyond the convolutions, [`KernelEngine::for_each_batch_chunk`] is the
//! elementwise batch seam: position-pure per-element work (stochastic
//! pruning with counter-based RNG streams) executes through it, banded
//! across the `samples × elements` space on the parallel engine with —
//! again — bitwise-identical results at every thread count.
//!
//! [`Workspace`] is the companion scratch-buffer type for row-at-a-time
//! callers (benches, op-stream execution): it owns reusable output/tap
//! buffers so single-row kernel calls need no allocation either.
//!
//! Engine selection is name-keyed: the open registry in
//! [`crate::registry`] maps `"scalar"` / `"parallel"` / `"simd"` /
//! `"parallel:simd"` / `"fixed"` / `"fixed:qI.F"` (and
//! anything registered at runtime) to engine instances, and
//! [`crate::context::ExecutionContext`] carries the resolved engine plus
//! scratch through `sparsetrain-nn`'s `Trainer`/`Conv2d` and the dataflow
//! executor in `sparsetrain-core`; the simulator's cycle accounting
//! consumes the same op enumeration and is engine-agnostic by
//! construction.

use crate::compressed::SparseVec;
use crate::mask::RowMask;
use crate::msrc::msrc_accumulate;
use crate::osrc::osrc_accumulate;
use crate::rowconv::SparseFeatureMap;
use crate::src::src_accumulate;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::{Tensor3, Tensor4};

/// Per-call operand state shared by every band of one engine call.
///
/// A `BandContext` is built **once per engine call** by the executing
/// engine's `prepare_*` hook ([`KernelEngine::prepare_forward`] and
/// friends), *above* the band fan-out, and then passed by reference into
/// every band worker. It carries whatever per-call operand transformation
/// the backend wants to hoist out of the bands:
///
/// * `dense` — a densified copy of the call's sparse operand map
///   (channel-major `C × H × W`; the simd engine's row sweeps read it),
/// * `patches` / `patch_len` / `dense_rows` — the im2row engine's blocked
///   receptive-field patch matrix plus its per-output-row classification,
/// * `ext` — an arbitrary payload for backends registered outside this
///   crate.
///
/// The scalar reference needs no preparation and returns an empty context;
/// band workers must treat an empty context as "prepare locally or fall
/// back to the scalar path", so a context from the wrong engine can never
/// change results — only speed. A context is only valid for the exact
/// operands it was prepared from.
///
/// Memory tradeoff: the batched entry points hold **one context per
/// sample** for the duration of the call (every sample's bands may run
/// concurrently, so no context can be dropped early). With a preparing
/// engine that is `batch × per-sample state` — e.g. the im2row patch
/// matrix, `Oh·Ow·C·K²` floats per sample. Callers streaming very large
/// batches through memory-hungry engines should split the batch; the
/// per-call preparation cost is already amortized within each sub-batch.
#[derive(Debug, Default)]
pub struct BandContext {
    dense: Vec<f32>,
    patches: Vec<f32>,
    patch_len: usize,
    dense_rows: Vec<bool>,
    ext: Option<Box<dyn std::any::Any + Send + Sync>>,
}

impl BandContext {
    /// A context carrying no prepared state (the scalar engine's answer).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether no prepared state is attached at all.
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty() && self.patches.is_empty() && self.ext.is_none()
    }

    /// Attaches a densified operand map (channel-major `C × H × W`).
    pub fn set_dense(&mut self, map: Vec<f32>) {
        self.dense = map;
    }

    /// The densified operand map, or `&[]` when none was prepared.
    pub fn dense(&self) -> &[f32] {
        &self.dense
    }

    /// Attaches an im2row patch matrix: one `patch_len`-wide row per
    /// output position, plus the per-output-row flags saying which rows
    /// were materialized (and thus qualify for the dense micro-kernel).
    pub fn set_patches(&mut self, patches: Vec<f32>, patch_len: usize, dense_rows: Vec<bool>) {
        self.patches = patches;
        self.patch_len = patch_len;
        self.dense_rows = dense_rows;
    }

    /// The im2row patch matrix, or `&[]` when none was prepared.
    pub fn patches(&self) -> &[f32] {
        &self.patches
    }

    /// Patch-row width of [`BandContext::patches`] (0 when none).
    pub fn patch_len(&self) -> usize {
        self.patch_len
    }

    /// Per-output-row micro-kernel eligibility flags (empty when no patch
    /// matrix was prepared).
    pub fn dense_rows(&self) -> &[bool] {
        &self.dense_rows
    }

    /// Attaches an engine-specific payload (for backends outside this
    /// crate).
    pub fn set_ext<T: std::any::Any + Send + Sync>(&mut self, value: T) {
        self.ext = Some(Box::new(value));
    }

    /// Downcasts the engine-specific payload, if one of type `T` is
    /// attached.
    pub fn ext<T: std::any::Any>(&self) -> Option<&T> {
        self.ext.as_deref().and_then(|e| e.downcast_ref())
    }
}

/// Layer-level execution of the three training-stage convolutions.
///
/// All methods accumulate into caller-provided tensors (which the `*_into`
/// contract requires to be pre-zeroed or pre-seeded by the caller) and
/// must produce results bitwise identical to [`ScalarEngine`].
pub trait KernelEngine: Send + Sync {
    /// Engine name for reports and benches.
    fn name(&self) -> &'static str;

    /// Forward step: `out[fi] += Σ_ci SRC(input[ci], W[fi][ci])` (+ bias if
    /// given, which overwrites `out` first).
    ///
    /// The default validates shapes and runs [`KernelEngine::forward_band`]
    /// over the whole filter range.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between `input`, `weights`, `geom` and
    /// `out`.
    fn forward_into(
        &self,
        input: &SparseFeatureMap,
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
        out: &mut Tensor3,
    ) {
        check_forward(input, weights, bias, geom, out);
        let (_, oh, ow) = out.shape();
        let ctx = self.prepare_forward(input, weights, bias, geom);
        self.forward_band(&ctx, input, weights, bias, geom, oh, ow, 0, out.as_mut_slice());
    }

    /// GTA step: scatters `dout` through the rotated kernels into `din`,
    /// skipping positions absent from `masks` (the forward non-zero masks,
    /// one per `(channel, input row)` in channel-major order).
    ///
    /// The default validates shapes and runs
    /// [`KernelEngine::input_grad_band`] over the whole channel range.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    fn input_grad_into(
        &self,
        dout: &SparseFeatureMap,
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[RowMask],
        din: &mut Tensor3,
    ) {
        check_input_grad(dout, weights, geom, masks, din);
        let (_, in_h, in_w) = din.shape();
        let ctx = self.prepare_input_grad(dout, weights, geom, masks, in_h, in_w);
        self.input_grad_band(
            &ctx,
            dout,
            weights,
            geom,
            masks,
            in_h,
            in_w,
            0,
            din.as_mut_slice(),
        );
    }

    /// GTW step: accumulates `dW[fi][ci][u] += Σ_oy OSRC(I row, dO row)`
    /// directly into the kernel rows of `dw`.
    ///
    /// The default validates shapes and runs
    /// [`KernelEngine::weight_grad_band`] over the whole filter range.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    fn weight_grad_into(
        &self,
        input: &SparseFeatureMap,
        dout: &SparseFeatureMap,
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        check_weight_grad(input, dout, geom, dw);
        let ctx = self.prepare_weight_grad(input, dout, geom);
        self.weight_grad_band(&ctx, input, dout, geom, 0, dw.as_mut_slice());
    }

    // -- Band-level workers --------------------------------------------------
    //
    // The banding seam: `ParallelEngine` splits a stage's independent
    // output units into contiguous bands and delegates the per-band
    // computation to an *inner* engine through these methods, so a
    // vectorized backend composes with band parallelism (`"parallel:simd"`,
    // `"parallel:im2row"`) without reimplementing the banding. The defaults
    // are the scalar reference loops; every override must stay bitwise
    // identical to them. Band methods trust their caller for shape
    // validation (the `*_into` entry points run the checks), and every
    // band of one call shares the [`BandContext`] the executing engine's
    // matching `prepare_*` hook built from the same operands. An empty or
    // foreign context never changes results: band workers re-prepare
    // locally or take the scalar path.

    /// Builds the per-call operand state for a forward call — invoked
    /// **once**, above the band fan-out. The default prepares nothing.
    fn prepare_forward(
        &self,
        input: &SparseFeatureMap,
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
    ) -> BandContext {
        let _ = (input, weights, bias, geom);
        BandContext::empty()
    }

    /// Builds the per-call operand state for a GTA call — invoked once,
    /// above the band fan-out. The default prepares nothing.
    fn prepare_input_grad(
        &self,
        dout: &SparseFeatureMap,
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[RowMask],
        in_h: usize,
        in_w: usize,
    ) -> BandContext {
        let _ = (dout, weights, geom, masks, in_h, in_w);
        BandContext::empty()
    }

    /// Builds the per-call operand state for a GTW call — invoked once,
    /// above the band fan-out. The default prepares nothing.
    fn prepare_weight_grad(
        &self,
        input: &SparseFeatureMap,
        dout: &SparseFeatureMap,
        geom: ConvGeometry,
    ) -> BandContext {
        let _ = (input, dout, geom);
        BandContext::empty()
    }

    /// Computes the forward rows of filters `f_lo..f_lo + n` into
    /// `out_band`, which holds `n` contiguous pre-seeded `oh × ow` filter
    /// planes. `ctx` is the call's shared [`BandContext`] (from
    /// [`KernelEngine::prepare_forward`] on the same operands).
    #[allow(clippy::too_many_arguments)]
    fn forward_band(
        &self,
        ctx: &BandContext,
        input: &SparseFeatureMap,
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
        oh: usize,
        ow: usize,
        f_lo: usize,
        out_band: &mut [f32],
    ) {
        let _ = ctx;
        scalar_forward_band(input, weights, bias, geom, oh, ow, f_lo, out_band);
    }

    /// Computes the input-gradient rows of channels `c_lo..c_lo + n` into
    /// `din_band`, which holds `n` contiguous pre-seeded `in_h × in_w`
    /// channel planes. `ctx` is the call's shared [`BandContext`].
    #[allow(clippy::too_many_arguments)]
    fn input_grad_band(
        &self,
        ctx: &BandContext,
        dout: &SparseFeatureMap,
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[RowMask],
        in_h: usize,
        in_w: usize,
        c_lo: usize,
        din_band: &mut [f32],
    ) {
        let _ = ctx;
        scalar_input_grad_band(dout, weights, geom, masks, in_h, in_w, c_lo, din_band);
    }

    /// Accumulates the weight gradients of filters `f_lo..f_lo + n` into
    /// `dw_band`, which holds `n` contiguous `C × K × K` filter blocks.
    /// `ctx` is the call's shared [`BandContext`].
    fn weight_grad_band(
        &self,
        ctx: &BandContext,
        input: &SparseFeatureMap,
        dout: &SparseFeatureMap,
        geom: ConvGeometry,
        f_lo: usize,
        dw_band: &mut [f32],
    ) {
        let _ = ctx;
        scalar_weight_grad_band(input, dout, geom, f_lo, dw_band);
    }

    // -- Batched entry points ------------------------------------------------
    //
    // One engine call per batch: the accelerator streams whole batches
    // through the datapath to amortize control overhead, and the software
    // engines mirror that here. The defaults fall back to the per-sample
    // methods in sample order, which *defines* the result: every override
    // must stay bitwise identical to it (verified by the `engine_parity`
    // property tests).

    /// Forward step for a whole batch: `outs[s]` receives the forward
    /// output of `inputs[s]`, exactly as `forward_into` would produce it.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != outs.len()` or on per-sample shape
    /// mismatches.
    fn forward_batch_into(
        &self,
        inputs: &[SparseFeatureMap],
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
        outs: &mut [Tensor3],
    ) {
        assert_eq!(inputs.len(), outs.len(), "batch length mismatch");
        for (input, out) in inputs.iter().zip(outs.iter_mut()) {
            self.forward_into(input, weights, bias, geom, out);
        }
    }

    /// GTA step for a whole batch; `masks[s]` carries sample `s`'s forward
    /// non-zero masks (one per `(channel, input row)` in channel-major
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if the batch slices disagree in length or on per-sample shape
    /// mismatches.
    fn input_grad_batch_into(
        &self,
        douts: &[SparseFeatureMap],
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[Vec<RowMask>],
        dins: &mut [Tensor3],
    ) {
        assert_eq!(douts.len(), dins.len(), "batch length mismatch");
        assert_eq!(douts.len(), masks.len(), "batch mask length mismatch");
        for ((dout, mask), din) in douts.iter().zip(masks).zip(dins.iter_mut()) {
            self.input_grad_into(dout, weights, geom, mask, din);
        }
    }

    /// GTW step for a whole batch: accumulates every sample's weight
    /// gradient into the shared `dw`, in sample order — the batch-level
    /// gradient the optimizer consumes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != douts.len()` or on per-sample shape
    /// mismatches.
    fn weight_grad_batch_into(
        &self,
        inputs: &[SparseFeatureMap],
        douts: &[SparseFeatureMap],
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        assert_eq!(inputs.len(), douts.len(), "batch length mismatch");
        for (input, dout) in inputs.iter().zip(douts) {
            self.weight_grad_into(input, dout, geom, dw);
        }
    }

    // -- Elementwise batch work ----------------------------------------------

    /// Runs `work` over a batch of independent mutable parts (e.g. one
    /// gradient tensor per sample), covering every element of every part
    /// exactly once: each invocation `work(part, offset, chunk)` receives a
    /// sub-slice of `parts[part]` beginning at element `offset` of that
    /// part. The default visits whole parts sequentially in order; engines
    /// may split parts into chunks and run them concurrently in any order.
    ///
    /// This is the seam the stochastic pruning stage executes through:
    /// because its per-element decisions are keyed by *position*
    /// (counter-based RNG streams), any chunking of the element space
    /// produces bitwise-identical results. `work` must therefore be
    /// position-pure — its effect on an element may depend only on
    /// `(part, element index, element value)`, never on visitation order.
    fn for_each_batch_chunk(&self, parts: Vec<&mut [f32]>, work: &(dyn Fn(usize, usize, &mut [f32]) + Sync)) {
        for (p, part) in parts.into_iter().enumerate() {
            work(p, 0, part);
        }
    }

    // -- Allocating conveniences ---------------------------------------------

    /// Forward step into a freshly allocated output tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    fn forward(
        &self,
        input: &SparseFeatureMap,
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
    ) -> Tensor3 {
        let oh = geom.output_extent(input.height());
        let ow = geom.output_extent(input.width());
        let mut out = Tensor3::zeros(weights.filters(), oh, ow);
        self.forward_into(input, weights, bias, geom, &mut out);
        out
    }

    /// GTA step into a freshly allocated input-gradient tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    fn input_grad(
        &self,
        dout: &SparseFeatureMap,
        weights: &Tensor4,
        geom: ConvGeometry,
        in_h: usize,
        in_w: usize,
        masks: &[RowMask],
    ) -> Tensor3 {
        let mut din = Tensor3::zeros(weights.channels(), in_h, in_w);
        self.input_grad_into(dout, weights, geom, masks, &mut din);
        din
    }

    /// GTW step into a freshly allocated weight-gradient tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    fn weight_grad(&self, input: &SparseFeatureMap, dout: &SparseFeatureMap, geom: ConvGeometry) -> Tensor4 {
        let mut dw = Tensor4::zeros(dout.channels(), input.channels(), geom.kernel, geom.kernel);
        self.weight_grad_into(input, dout, geom, &mut dw);
        dw
    }

    /// Batched forward step into freshly allocated output tensors.
    ///
    /// # Panics
    ///
    /// Panics on per-sample shape mismatches.
    fn forward_batch(
        &self,
        inputs: &[SparseFeatureMap],
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
    ) -> Vec<Tensor3> {
        let mut outs: Vec<Tensor3> = inputs
            .iter()
            .map(|input| {
                let oh = geom.output_extent(input.height());
                let ow = geom.output_extent(input.width());
                Tensor3::zeros(weights.filters(), oh, ow)
            })
            .collect();
        self.forward_batch_into(inputs, weights, bias, geom, &mut outs);
        outs
    }

    /// Batched GTA step into freshly allocated input-gradient tensors (all
    /// samples share the `in_h × in_w` spatial extent).
    ///
    /// # Panics
    ///
    /// Panics if the batch slices disagree in length or on per-sample shape
    /// mismatches.
    fn input_grad_batch(
        &self,
        douts: &[SparseFeatureMap],
        weights: &Tensor4,
        geom: ConvGeometry,
        in_h: usize,
        in_w: usize,
        masks: &[Vec<RowMask>],
    ) -> Vec<Tensor3> {
        let mut dins: Vec<Tensor3> = douts
            .iter()
            .map(|_| Tensor3::zeros(weights.channels(), in_h, in_w))
            .collect();
        self.input_grad_batch_into(douts, weights, geom, masks, &mut dins);
        dins
    }
}

// ---------------------------------------------------------------------------
// Shared shape validation
// ---------------------------------------------------------------------------

fn check_forward(
    input: &SparseFeatureMap,
    weights: &Tensor4,
    bias: Option<&[f32]>,
    geom: ConvGeometry,
    out: &Tensor3,
) {
    let (f, wc, kh, kw) = weights.shape();
    assert_eq!(wc, input.channels(), "weight/input channel mismatch");
    assert_eq!(kh, geom.kernel);
    assert_eq!(kw, geom.kernel);
    if let Some(b) = bias {
        assert_eq!(b.len(), f, "bias length mismatch");
    }
    let oh = geom.output_extent(input.height());
    let ow = geom.output_extent(input.width());
    assert_eq!(out.shape(), (f, oh, ow), "output tensor shape mismatch");
}

fn check_input_grad(
    dout: &SparseFeatureMap,
    weights: &Tensor4,
    geom: ConvGeometry,
    masks: &[RowMask],
    din: &Tensor3,
) {
    let (f, c, kh, kw) = weights.shape();
    assert_eq!(f, dout.channels(), "weight filters != dout channels");
    assert_eq!(kh, geom.kernel);
    assert_eq!(kw, geom.kernel);
    let (dc, in_h, _) = din.shape();
    assert_eq!(dc, c, "din channels != weight channels");
    assert_eq!(masks.len(), c * in_h, "need one mask per (channel, input row)");
}

fn check_weight_grad(input: &SparseFeatureMap, dout: &SparseFeatureMap, geom: ConvGeometry, dw: &Tensor4) {
    assert_eq!(dout.height(), geom.output_extent(input.height()));
    assert_eq!(dout.width(), geom.output_extent(input.width()));
    assert_eq!(
        dw.shape(),
        (dout.channels(), input.channels(), geom.kernel, geom.kernel),
        "dw tensor shape mismatch"
    );
}

// ---------------------------------------------------------------------------
// Scalar band workers (the trait's default band bodies; the scalar engine
// is one big band)
// ---------------------------------------------------------------------------

/// Computes the forward rows of filters `f_lo..f_lo + n` into `out_band`
/// (`n` contiguous `Oh × Ow` filter planes).
#[allow(clippy::too_many_arguments)]
pub(crate) fn scalar_forward_band(
    input: &SparseFeatureMap,
    weights: &Tensor4,
    bias: Option<&[f32]>,
    geom: ConvGeometry,
    oh: usize,
    ow: usize,
    f_lo: usize,
    out_band: &mut [f32],
) {
    let h = input.height() as isize;
    for (bf, plane) in out_band.chunks_mut(oh * ow).enumerate() {
        let fi = f_lo + bf;
        if let Some(b) = bias {
            plane.fill(b[fi]);
        }
        for (oy, out_row) in plane.chunks_mut(ow).enumerate() {
            for u in 0..geom.kernel {
                let iy = (oy * geom.stride) as isize - geom.pad as isize + u as isize;
                if iy < 0 || iy >= h {
                    continue;
                }
                for ci in 0..input.channels() {
                    let krow = weights.kernel_row(fi, ci, u);
                    src_accumulate(input.row(ci, iy as usize), krow, geom, out_row);
                }
            }
        }
    }
}

/// Computes the input-gradient rows of channels `c_lo..c_lo + n` into
/// `din_band` (`n` contiguous `H × W` channel planes).
#[allow(clippy::too_many_arguments)]
pub(crate) fn scalar_input_grad_band(
    dout: &SparseFeatureMap,
    weights: &Tensor4,
    geom: ConvGeometry,
    masks: &[RowMask],
    in_h: usize,
    in_w: usize,
    c_lo: usize,
    din_band: &mut [f32],
) {
    for (bc, plane) in din_band.chunks_mut(in_h * in_w).enumerate() {
        let ci = c_lo + bc;
        for fi in 0..dout.channels() {
            for oy in 0..dout.height() {
                let grow = dout.row(fi, oy);
                if grow.nnz() == 0 {
                    continue;
                }
                for u in 0..geom.kernel {
                    let iy = (oy * geom.stride) as isize - geom.pad as isize + u as isize;
                    if iy < 0 || iy >= in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    let out_row = &mut plane[iy * in_w..(iy + 1) * in_w];
                    msrc_accumulate(
                        grow,
                        weights.kernel_row(fi, ci, u),
                        geom,
                        &masks[ci * in_h + iy],
                        out_row,
                    );
                }
            }
        }
    }
}

/// Accumulates the weight gradients of filters `f_lo..f_lo + n` into
/// `dw_band` (`n` contiguous `C × K × K` filter blocks).
pub(crate) fn scalar_weight_grad_band(
    input: &SparseFeatureMap,
    dout: &SparseFeatureMap,
    geom: ConvGeometry,
    f_lo: usize,
    dw_band: &mut [f32],
) {
    let c = input.channels();
    let k = geom.kernel;
    for (bf, block) in dw_band.chunks_mut(c * k * k).enumerate() {
        let fi = f_lo + bf;
        for ci in 0..c {
            for u in 0..k {
                let taps = &mut block[(ci * k + u) * k..(ci * k + u + 1) * k];
                for oy in 0..dout.height() {
                    let iy = (oy * geom.stride) as isize - geom.pad as isize + u as isize;
                    if iy < 0 || iy >= input.height() as isize {
                        continue;
                    }
                    let irow = input.row(ci, iy as usize);
                    let grow = dout.row(fi, oy);
                    if irow.nnz() == 0 || grow.nnz() == 0 {
                        continue;
                    }
                    osrc_accumulate(irow, grow, geom, taps);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ScalarEngine
// ---------------------------------------------------------------------------

/// The reference single-threaded engine; its iteration order defines the
/// exact floating-point result every engine must reproduce.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarEngine;

impl KernelEngine for ScalarEngine {
    // The trait defaults (shape checks + the scalar band workers over the
    // whole unit range) *are* the reference semantics.
    fn name(&self) -> &'static str {
        "scalar"
    }
}

// ---------------------------------------------------------------------------
// ParallelEngine
// ---------------------------------------------------------------------------

/// Band-parallel engine: splits the layer's independent output units
/// (filters or channels) into one contiguous band per worker and runs the
/// bands on rayon's fork-join scope.
///
/// The per-band computation is delegated to an **inner** engine through
/// the [`KernelEngine`] band methods — the scalar reference by default
/// (`"parallel"`), or any other backend (the registry wires
/// `"parallel:simd"` as bands over [`crate::simd_engine::SimdEngine`]), so
/// thread-level and lane-level parallelism compose.
///
/// Each band writes a disjoint region of the output tensor and the inner
/// engine reproduces the exact scalar per-row accumulation order, so
/// results are bitwise equal to [`ScalarEngine`] — parallelism changes
/// wall-clock, never values.
#[derive(Clone, Copy)]
pub struct ParallelEngine {
    name: &'static str,
    threads: usize,
    inner: &'static dyn KernelEngine,
}

impl std::fmt::Debug for ParallelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEngine")
            .field("name", &self.name)
            .field("threads", &self.threads)
            .field("inner", &self.inner.name())
            .finish()
    }
}

impl Default for ParallelEngine {
    fn default() -> Self {
        Self::auto()
    }
}

impl ParallelEngine {
    /// Engine sizing bands to the machine's hardware parallelism, with the
    /// scalar reference inside each band.
    pub const fn auto() -> Self {
        Self::over("parallel", &ScalarEngine)
    }

    /// Engine with an explicit worker-band count (0 = auto) over the
    /// scalar reference.
    pub const fn with_threads(threads: usize) -> Self {
        Self {
            name: "parallel",
            threads,
            inner: &ScalarEngine,
        }
    }

    /// Band-parallel engine delegating each band's computation to `inner`,
    /// reported under `name` (e.g. `"parallel:simd"`). `inner` must be
    /// bitwise-identical to the scalar reference for the composition to be
    /// so too.
    pub const fn over(name: &'static str, inner: &'static dyn KernelEngine) -> Self {
        Self {
            name,
            threads: 0,
            inner,
        }
    }

    /// This engine with an explicit worker-band count (0 = auto), keeping
    /// its name and inner engine.
    pub const fn banded(self, threads: usize) -> Self {
        Self { threads, ..self }
    }

    /// The engine executing inside each band.
    pub fn inner(&self) -> &'static dyn KernelEngine {
        self.inner
    }

    /// Rough MAC count below which a band is not worth a worker: spawning
    /// a scope task costs on the order of tens of microseconds (a fresh OS
    /// thread under the compat rayon shim), which is itself worth tens of
    /// thousands of sparse MACs — a band must carry several multiples of
    /// that to amortize the fork-join. Applied in auto mode only — an
    /// explicit `with_threads` count is honoured as given.
    const MIN_OPS_PER_BAND: usize = 128 * 1024;

    fn bands(&self, units: usize, ops_per_unit: usize) -> usize {
        self.bands_for_total(units, units.saturating_mul(ops_per_unit))
    }

    /// Band count for `units` independent output units carrying `total_ops`
    /// MACs altogether (used directly by the batched paths, where per-unit
    /// work varies across samples).
    fn bands_for_total(&self, units: usize, total_ops: usize) -> usize {
        if self.threads != 0 {
            return self.threads.clamp(1, units.max(1));
        }
        let by_work = total_ops.max(1).div_ceil(Self::MIN_OPS_PER_BAND);
        rayon::current_num_threads().min(by_work).clamp(1, units.max(1))
    }
}

/// Splits `data` (holding `units` blocks of `unit_len` elements) into
/// `bands` near-equal contiguous bands and runs `work(first_unit, band)`
/// for each band in parallel.
fn for_each_band<F>(data: &mut [f32], units: usize, unit_len: usize, bands: usize, work: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(data.len(), units * unit_len);
    if bands <= 1 || units <= 1 {
        work(0, data);
        return;
    }
    let per_band = units.div_ceil(bands);
    let work = &work;
    rayon::scope(|scope| {
        let mut rest = data;
        let mut unit = 0usize;
        while unit < units {
            let n = per_band.min(units - unit);
            let (band, tail) = rest.split_at_mut(n * unit_len);
            rest = tail;
            let first = unit;
            unit += n;
            if unit >= units {
                // Final band runs on the calling thread, which would
                // otherwise idle inside the scope — saves one task spawn.
                work(first, band);
            } else {
                scope.spawn(move |_| work(first, band));
            }
        }
    });
}

/// Splits a batch of per-sample slices (each holding `units` blocks of
/// `unit_len` elements) into `bands` near-equal contiguous chunks of the
/// *global* `samples × units` space and runs
/// `work(sample, first_unit, chunk)` for each chunk in parallel.
///
/// Chunks never span samples (a global band that crosses a sample boundary
/// becomes one chunk per sample), so each worker sees one sample's
/// contiguous unit range — the per-unit iteration order is exactly the
/// scalar order and results stay bitwise identical.
fn for_each_batch_band<F>(samples: Vec<&mut [f32]>, units: usize, unit_len: usize, bands: usize, work: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    let total_units = samples.len() * units;
    if bands <= 1 || total_units <= 1 {
        for (s, slice) in samples.into_iter().enumerate() {
            work(s, 0, slice);
        }
        return;
    }
    let per_band = total_units.div_ceil(bands);
    let work = &work;
    rayon::scope(|scope| {
        for (s, slice) in samples.into_iter().enumerate() {
            debug_assert_eq!(slice.len(), units * unit_len);
            let mut rest = slice;
            let mut unit = 0usize;
            while unit < units {
                let global = s * units + unit;
                // End of the global band this unit falls into, clamped to
                // the sample boundary.
                let band_end = (global / per_band + 1) * per_band;
                let n = (band_end - global).min(units - unit);
                let (chunk, tail) = rest.split_at_mut(n * unit_len);
                rest = tail;
                let first = unit;
                unit += n;
                scope.spawn(move |_| work(s, first, chunk));
            }
        }
    });
}

/// Splits a batch of per-part element slices (lengths may differ) into
/// `bands` near-equal contiguous chunks of the *global* element space and
/// runs `work(part, first_element, chunk)` for each chunk in parallel.
///
/// Chunks never span parts (a global band crossing a part boundary becomes
/// one chunk per part), mirroring [`for_each_batch_band`] with per-element
/// granularity and non-uniform part lengths. Chunk boundaries are rounded
/// up to the vector lane-block width: every chunk starts at a part-local
/// offset that is a multiple of [`crate::simd_engine::LANES`], so
/// lane-blocked consumers of the seam (the pruned-gradient snap/zero
/// writes, whose draw buffers fill in fixed-width runs) see whole blocks.
/// Position-pure work is chunking-invariant, so the alignment never
/// changes a result.
fn for_each_element_chunk(
    parts: Vec<&mut [f32]>,
    bands: usize,
    work: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    if bands <= 1 || total <= 1 {
        for (p, part) in parts.into_iter().enumerate() {
            work(p, 0, part);
        }
        return;
    }
    let per_band = total.div_ceil(bands);
    rayon::scope(|scope| {
        let mut global = 0usize;
        for (p, part) in parts.into_iter().enumerate() {
            let mut rest = part;
            let mut offset = 0usize;
            while !rest.is_empty() {
                // End of the global band this element falls into, clamped
                // to the part boundary, then lane-aligned within the part
                // (the final chunk keeps its remainder).
                let band_end = (global / per_band + 1) * per_band;
                let mut n = (band_end - global).min(rest.len());
                if n < rest.len() {
                    n = (offset + n)
                        .next_multiple_of(crate::simd_engine::LANES)
                        .saturating_sub(offset)
                        .min(rest.len());
                }
                let (chunk, tail) = rest.split_at_mut(n);
                rest = tail;
                let first = offset;
                offset += n;
                global += n;
                scope.spawn(move |_| work(p, first, chunk));
            }
        }
    });
}

impl KernelEngine for ParallelEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn forward_into(
        &self,
        input: &SparseFeatureMap,
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
        out: &mut Tensor3,
    ) {
        check_forward(input, weights, bias, geom, out);
        let (f, oh, ow) = out.shape();
        // Per-filter work ≈ every input non-zero hits K kernel taps.
        let bands = self.bands(f, input.nnz() * geom.kernel);
        // One preparation for the whole call: every band borrows the same
        // operand state instead of rebuilding it.
        let ctx = self.inner.prepare_forward(input, weights, bias, geom);
        for_each_band(out.as_mut_slice(), f, oh * ow, bands, |f_lo, band| {
            self.inner
                .forward_band(&ctx, input, weights, bias, geom, oh, ow, f_lo, band);
        });
    }

    fn input_grad_into(
        &self,
        dout: &SparseFeatureMap,
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[RowMask],
        din: &mut Tensor3,
    ) {
        check_input_grad(dout, weights, geom, masks, din);
        let (c, in_h, in_w) = din.shape();
        // Per-channel work ≈ every gradient non-zero scatters K taps.
        let bands = self.bands(c, dout.nnz() * geom.kernel);
        let ctx = self
            .inner
            .prepare_input_grad(dout, weights, geom, masks, in_h, in_w);
        for_each_band(din.as_mut_slice(), c, in_h * in_w, bands, |c_lo, band| {
            self.inner
                .input_grad_band(&ctx, dout, weights, geom, masks, in_h, in_w, c_lo, band);
        });
    }

    fn weight_grad_into(
        &self,
        input: &SparseFeatureMap,
        dout: &SparseFeatureMap,
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        check_weight_grad(input, dout, geom, dw);
        let (f, c, k, _) = dw.shape();
        // Per-filter work ≈ the input swept once per kernel row.
        let bands = self.bands(f, input.nnz() * geom.kernel);
        let ctx = self.inner.prepare_weight_grad(input, dout, geom);
        for_each_band(dw.as_mut_slice(), f, c * k * k, bands, |f_lo, band| {
            self.inner.weight_grad_band(&ctx, input, dout, geom, f_lo, band);
        });
    }

    fn forward_batch_into(
        &self,
        inputs: &[SparseFeatureMap],
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
        outs: &mut [Tensor3],
    ) {
        assert_eq!(inputs.len(), outs.len(), "batch length mismatch");
        let Some(first) = inputs.first() else { return };
        // Mixed-shape batches band per sample instead (still bitwise equal
        // to the scalar order — banding never reorders accumulation).
        if !inputs
            .iter()
            .all(|i| i.height() == first.height() && i.width() == first.width())
        {
            for (input, out) in inputs.iter().zip(outs.iter_mut()) {
                self.forward_into(input, weights, bias, geom, out);
            }
            return;
        }
        let mut oh = 0;
        let mut ow = 0;
        for (input, out) in inputs.iter().zip(outs.iter()) {
            check_forward(input, weights, bias, geom, out);
            (_, oh, ow) = out.shape();
        }
        let f = weights.filters();
        let total_ops: usize = inputs.iter().map(|i| i.nnz() * geom.kernel).sum();
        let bands = self.bands_for_total(inputs.len() * f, total_ops);
        // One preparation per sample, shared by every band that touches it.
        let ctxs: Vec<BandContext> = inputs
            .iter()
            .map(|input| self.inner.prepare_forward(input, weights, bias, geom))
            .collect();
        let slices: Vec<&mut [f32]> = outs.iter_mut().map(Tensor3::as_mut_slice).collect();
        for_each_batch_band(slices, f, oh * ow, bands, |s, f_lo, chunk| {
            self.inner
                .forward_band(&ctxs[s], &inputs[s], weights, bias, geom, oh, ow, f_lo, chunk);
        });
    }

    fn input_grad_batch_into(
        &self,
        douts: &[SparseFeatureMap],
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[Vec<RowMask>],
        dins: &mut [Tensor3],
    ) {
        assert_eq!(douts.len(), dins.len(), "batch length mismatch");
        assert_eq!(douts.len(), masks.len(), "batch mask length mismatch");
        let Some(first) = dins.first() else { return };
        let (c, in_h, in_w) = first.shape();
        if !dins.iter().all(|d| d.shape() == (c, in_h, in_w)) {
            for ((dout, mask), din) in douts.iter().zip(masks).zip(dins.iter_mut()) {
                self.input_grad_into(dout, weights, geom, mask, din);
            }
            return;
        }
        for ((dout, mask), din) in douts.iter().zip(masks).zip(dins.iter()) {
            check_input_grad(dout, weights, geom, mask, din);
        }
        let total_ops: usize = douts.iter().map(|d| d.nnz() * geom.kernel).sum();
        let bands = self.bands_for_total(dins.len() * c, total_ops);
        let ctxs: Vec<BandContext> = douts
            .iter()
            .zip(masks)
            .map(|(dout, mask)| {
                self.inner
                    .prepare_input_grad(dout, weights, geom, mask, in_h, in_w)
            })
            .collect();
        let slices: Vec<&mut [f32]> = dins.iter_mut().map(Tensor3::as_mut_slice).collect();
        for_each_batch_band(slices, c, in_h * in_w, bands, |s, c_lo, chunk| {
            self.inner.input_grad_band(
                &ctxs[s], &douts[s], weights, geom, &masks[s], in_h, in_w, c_lo, chunk,
            );
        });
    }

    fn for_each_batch_chunk(&self, parts: Vec<&mut [f32]>, work: &(dyn Fn(usize, usize, &mut [f32]) + Sync)) {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        // A position-keyed element visit costs a handful of MACs' worth of
        // work (one counter-based draw at most), so weight elements
        // accordingly when sizing bands in auto mode.
        let bands = self.bands_for_total(total, total.saturating_mul(8));
        for_each_element_chunk(parts, bands, work);
    }

    fn weight_grad_batch_into(
        &self,
        inputs: &[SparseFeatureMap],
        douts: &[SparseFeatureMap],
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        assert_eq!(inputs.len(), douts.len(), "batch length mismatch");
        for (input, dout) in inputs.iter().zip(douts) {
            check_weight_grad(input, dout, geom, dw);
        }
        let (f, c, k, _) = dw.shape();
        // The batch shares one dW, so parallelism stays across filters;
        // each filter band accumulates its samples in order, keeping the
        // per-tap accumulation sequence identical to the per-sample path.
        let total_ops: usize = inputs.iter().map(|i| i.nnz() * geom.kernel).sum();
        let bands = self.bands_for_total(f, total_ops);
        let ctxs: Vec<BandContext> = inputs
            .iter()
            .zip(douts)
            .map(|(input, dout)| self.inner.prepare_weight_grad(input, dout, geom))
            .collect();
        for_each_band(dw.as_mut_slice(), f, c * k * k, bands, |f_lo, band| {
            for ((input, dout), ctx) in inputs.iter().zip(douts).zip(&ctxs) {
                self.inner.weight_grad_band(ctx, input, dout, geom, f_lo, band);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

/// Reusable scratch buffers for row-at-a-time kernel execution.
///
/// A `Workspace` owns one output-row buffer and one tap buffer that grow to
/// the largest size requested and are then reused, so driving the 1-D
/// kernels row by row (op-stream executors, benches, PE-level harnesses)
/// performs no per-row allocation:
///
/// ```
/// use sparsetrain_sparse::{engine::Workspace, SparseVec};
/// use sparsetrain_tensor::conv::ConvGeometry;
///
/// let mut ws = Workspace::new();
/// let row = SparseVec::from_dense(&[0.0, 2.0, 0.0, 4.0]);
/// let out = ws.src(&row, &[1.0], ConvGeometry::new(1, 1, 0), 4);
/// assert_eq!(out, &[0.0, 2.0, 0.0, 4.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    row: Vec<f32>,
    taps: Vec<f32>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for rows of `row_len` and kernels of `k` taps.
    pub fn with_capacity(row_len: usize, k: usize) -> Self {
        Self {
            row: vec![0.0; row_len],
            taps: vec![0.0; k],
        }
    }

    /// A zeroed output-row buffer of length `len`, reused across calls.
    pub fn row(&mut self, len: usize) -> &mut [f32] {
        if self.row.len() < len {
            self.row.resize(len, 0.0);
        }
        let row = &mut self.row[..len];
        row.fill(0.0);
        row
    }

    /// A zeroed tap buffer of length `k`, reused across calls.
    pub fn taps(&mut self, k: usize) -> &mut [f32] {
        if self.taps.len() < k {
            self.taps.resize(k, 0.0);
        }
        let taps = &mut self.taps[..k];
        taps.fill(0.0);
        taps
    }

    /// One SRC operation into the reused row buffer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_row.len() != geom.kernel`.
    pub fn src(
        &mut self,
        input: &SparseVec,
        kernel_row: &[f32],
        geom: ConvGeometry,
        out_len: usize,
    ) -> &[f32] {
        let out = self.row(out_len);
        src_accumulate(input, kernel_row, geom, out);
        out
    }

    /// One MSRC operation into the reused row buffer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_row.len() != geom.kernel` or
    /// `mask.len() != out_len`.
    pub fn msrc(
        &mut self,
        grad: &SparseVec,
        kernel_row: &[f32],
        geom: ConvGeometry,
        mask: &RowMask,
        out_len: usize,
    ) -> &[f32] {
        let out = self.row(out_len);
        msrc_accumulate(grad, kernel_row, geom, mask, out);
        out
    }

    /// One OSRC operation into the reused tap buffer.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if operand lengths are inconsistent with
    /// `geom`.
    pub fn osrc(&mut self, input: &SparseVec, grad: &SparseVec, geom: ConvGeometry) -> &[f32] {
        let taps = self.taps(geom.kernel);
        osrc_accumulate(input, grad, geom, taps);
        taps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetrain_tensor::Tensor3;

    fn pseudo(seed: &mut u64) -> f32 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((*seed % 2000) as f32 / 1000.0) - 1.0
    }

    fn sparse_tensor(c: usize, h: usize, w: usize, density_pct: u64, seed: &mut u64) -> Tensor3 {
        Tensor3::from_fn(c, h, w, |_, _, _| {
            let v = pseudo(seed);
            let keep = {
                *seed ^= *seed << 13;
                *seed ^= *seed >> 7;
                *seed % 100 < density_pct
            };
            if keep {
                v
            } else {
                0.0
            }
        })
    }

    fn fixtures(
        seed: u64,
    ) -> (
        SparseFeatureMap,
        Tensor4,
        Vec<f32>,
        SparseFeatureMap,
        ConvGeometry,
    ) {
        let geom = ConvGeometry::new(3, 1, 1);
        let mut s = seed;
        let input = sparse_tensor(3, 8, 8, 40, &mut s);
        let weights = Tensor4::from_fn(4, 3, 3, 3, |_, _, _, _| pseudo(&mut s));
        let bias: Vec<f32> = (0..4).map(|_| pseudo(&mut s)).collect();
        let dout = sparse_tensor(4, 8, 8, 35, &mut s);
        (
            SparseFeatureMap::from_tensor(&input),
            weights,
            bias,
            SparseFeatureMap::from_tensor(&dout),
            geom,
        )
    }

    #[test]
    fn parallel_forward_bitwise_matches_scalar() {
        let (input, weights, bias, _, geom) = fixtures(99);
        let scalar = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
        let parallel = ParallelEngine::auto().forward(&input, &weights, Some(&bias), geom);
        assert_eq!(scalar.as_slice(), parallel.as_slice());
    }

    #[test]
    fn parallel_input_grad_bitwise_matches_scalar() {
        let (input, weights, _, dout, geom) = fixtures(7);
        let masks = input.masks();
        let scalar = ScalarEngine.input_grad(&dout, &weights, geom, 8, 8, &masks);
        let parallel = ParallelEngine::auto().input_grad(&dout, &weights, geom, 8, 8, &masks);
        assert_eq!(scalar.as_slice(), parallel.as_slice());
    }

    #[test]
    fn parallel_weight_grad_bitwise_matches_scalar() {
        let (input, _, _, dout, geom) = fixtures(23);
        let scalar = ScalarEngine.weight_grad(&input, &dout, geom);
        let parallel = ParallelEngine::auto().weight_grad(&input, &dout, geom);
        assert_eq!(scalar.as_slice(), parallel.as_slice());
    }

    fn batch_fixtures(n: usize) -> (Vec<SparseFeatureMap>, Tensor4, Vec<f32>, Vec<SparseFeatureMap>) {
        let mut inputs = Vec::new();
        let mut douts = Vec::new();
        let (mut weights, mut bias) = (None, None);
        for s in 0..n {
            let (input, w, b, dout, _) = fixtures(100 + s as u64 * 17);
            inputs.push(input);
            douts.push(dout);
            weights.get_or_insert(w);
            bias.get_or_insert(b);
        }
        (inputs, weights.unwrap(), bias.unwrap(), douts)
    }

    #[test]
    fn parallel_batched_forward_matches_per_sample() {
        let geom = ConvGeometry::new(3, 1, 1);
        let (inputs, weights, bias, _) = batch_fixtures(5);
        for threads in [1usize, 2, 3, 8] {
            let engine = ParallelEngine::with_threads(threads);
            let batched = engine.forward_batch(&inputs, &weights, Some(&bias), geom);
            for (input, got) in inputs.iter().zip(&batched) {
                let want = ScalarEngine.forward(input, &weights, Some(&bias), geom);
                assert_eq!(got.as_slice(), want.as_slice(), "threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_batched_weight_grad_matches_per_sample() {
        let geom = ConvGeometry::new(3, 1, 1);
        let (inputs, _, _, douts) = batch_fixtures(4);
        for threads in [1usize, 2, 7] {
            let engine = ParallelEngine::with_threads(threads);
            let mut batched = Tensor4::zeros(4, 3, 3, 3);
            engine.weight_grad_batch_into(&inputs, &douts, geom, &mut batched);
            let mut want = Tensor4::zeros(4, 3, 3, 3);
            for (input, dout) in inputs.iter().zip(&douts) {
                ScalarEngine.weight_grad_into(input, dout, geom, &mut want);
            }
            assert_eq!(batched.as_slice(), want.as_slice(), "threads {threads}");
        }
    }

    #[test]
    fn parallel_batched_input_grad_matches_per_sample() {
        let geom = ConvGeometry::new(3, 1, 1);
        let (inputs, weights, _, douts) = batch_fixtures(3);
        let masks: Vec<Vec<RowMask>> = inputs.iter().map(SparseFeatureMap::masks).collect();
        for threads in [1usize, 2, 5] {
            let engine = ParallelEngine::with_threads(threads);
            let batched = engine.input_grad_batch(&douts, &weights, geom, 8, 8, &masks);
            for ((dout, mask), got) in douts.iter().zip(&masks).zip(&batched) {
                let want = ScalarEngine.input_grad(dout, &weights, geom, 8, 8, mask);
                assert_eq!(got.as_slice(), want.as_slice(), "threads {threads}");
            }
        }
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let geom = ConvGeometry::new(3, 1, 1);
        let weights = Tensor4::from_fn(2, 2, 3, 3, |_, _, _, _| 1.0);
        let mut dw = Tensor4::zeros(2, 2, 3, 3);
        for engine in [&ScalarEngine as &dyn KernelEngine, &ParallelEngine::auto()] {
            engine.forward_batch_into(&[], &weights, None, geom, &mut []);
            engine.input_grad_batch_into(&[], &weights, geom, &[], &mut []);
            engine.weight_grad_batch_into(&[], &[], geom, &mut dw);
        }
        assert!(dw.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn band_split_covers_all_units_for_any_band_count() {
        for units in 1..10usize {
            for bands in 1..6usize {
                let mut data = vec![0.0f32; units * 4];
                for_each_band(&mut data, units, 4, bands, |first, band| {
                    for (i, chunk) in band.chunks_mut(4).enumerate() {
                        chunk.fill((first + i) as f32 + 1.0);
                    }
                });
                for u in 0..units {
                    assert!(
                        data[u * 4..(u + 1) * 4].iter().all(|&v| v == u as f32 + 1.0),
                        "unit {u} not covered for units {units} bands {bands}"
                    );
                }
            }
        }
    }

    #[test]
    fn element_chunk_split_covers_every_element_once() {
        // Uneven part lengths, including an empty part, for several band
        // counts: every element must be visited exactly once with its
        // correct (part, offset) coordinates.
        for bands in 1..8usize {
            let mut a = vec![0.0f32; 5];
            let mut b: Vec<f32> = Vec::new();
            let mut c = vec![0.0f32; 9];
            let mut d = vec![0.0f32; 2];
            let parts: Vec<&mut [f32]> = vec![&mut a, &mut b, &mut c, &mut d];
            for_each_element_chunk(parts, bands, &|p, offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    // Encode the coordinates; a second visit would clobber.
                    assert_eq!(*v, 0.0, "element visited twice (bands {bands})");
                    *v = (p * 100 + offset + i) as f32 + 1.0;
                }
            });
            for (p, part) in [&a[..], &b[..], &c[..], &d[..]].iter().enumerate() {
                for (i, &v) in part.iter().enumerate() {
                    assert_eq!(v, (p * 100 + i) as f32 + 1.0, "bands {bands}");
                }
            }
        }
    }

    #[test]
    fn engines_agree_on_position_pure_batch_work() {
        // A position-pure transform must come out identical under the
        // default sequential visit and the parallel chunked visit.
        let make = || -> Vec<Vec<f32>> {
            (0..4)
                .map(|p| (0..257).map(|i| (p * 1000 + i) as f32).collect())
                .collect()
        };
        let run = |engine: &dyn KernelEngine| -> Vec<Vec<f32>> {
            let mut data = make();
            let parts: Vec<&mut [f32]> = data.iter_mut().map(|v| v.as_mut_slice()).collect();
            engine.for_each_batch_chunk(parts, &|p, offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = v.mul_add(0.5, (p + offset + i) as f32);
                }
            });
            data
        };
        let scalar = run(&ScalarEngine);
        for threads in [1usize, 2, 5, 16] {
            assert_eq!(
                run(&ParallelEngine::with_threads(threads)),
                scalar,
                "threads {threads}"
            );
        }
        assert_eq!(run(&ParallelEngine::auto()), scalar);
    }

    #[test]
    fn workspace_reuses_buffers() {
        let mut ws = Workspace::new();
        let row = SparseVec::from_dense(&[1.0, 0.0, 2.0]);
        let geom = ConvGeometry::new(1, 1, 0);
        let a = ws.src(&row, &[2.0], geom, 3).to_vec();
        assert_eq!(a, vec![2.0, 0.0, 4.0]);
        // A second call must see a freshly zeroed buffer, not stale data.
        let b = ws.src(&row, &[1.0], geom, 3).to_vec();
        assert_eq!(b, vec![1.0, 0.0, 2.0]);
        // Shrinking requests reuse the same storage.
        let c = ws.src(&row, &[1.0], geom, 2).to_vec();
        assert_eq!(c, vec![1.0, 0.0]);
    }

    #[test]
    fn workspace_osrc_matches_allocating_wrapper() {
        let mut ws = Workspace::new();
        let geom = ConvGeometry::new(3, 1, 1);
        let input = SparseVec::from_dense(&[0.0, 1.0, 0.0, 2.0, 3.0, 0.0]);
        let grad = SparseVec::from_dense(&[1.0, 0.0, -1.0, 0.0, 2.0, 0.0]);
        let got = ws.osrc(&input, &grad, geom).to_vec();
        assert_eq!(got, crate::osrc::osrc_conv(&input, &grad, geom));
    }

    #[test]
    fn workspace_msrc_honours_mask() {
        let mut ws = Workspace::new();
        let geom = ConvGeometry::new(1, 1, 0);
        let grad = SparseVec::from_dense(&[1.0, 1.0, 1.0]);
        let mask = RowMask::from_offsets(3, &[1]);
        assert_eq!(ws.msrc(&grad, &[1.0], geom, &mask, 3), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn explicit_thread_counts_are_clamped() {
        let (input, weights, bias, _, geom) = fixtures(5);
        for threads in [1usize, 2, 7, 64] {
            let engine = ParallelEngine::with_threads(threads);
            let got = engine.forward(&input, &weights, Some(&bias), geom);
            let want = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
            assert_eq!(got.as_slice(), want.as_slice(), "threads {threads}");
        }
    }
}
