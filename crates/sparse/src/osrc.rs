//! OSRC — Output-Store Row Convolution, the GTW-step primitive (Fig. 6c).
//!
//! Both operands are long sparse rows: an input-activation row `I` and an
//! output-gradient row `dO`. Only `K` results are needed (one kernel row of
//! `dW`), so the PE holds them in a scratchpad register for the whole
//! convolution:
//!
//! `dw[v] = Σ_ox dO[ox] · I[ox · stride − pad + v]`, `v ∈ [0, K)`.

use crate::compressed::SparseVec;
use sparsetrain_tensor::conv::ConvGeometry;

/// Accumulates one OSRC operation into a caller-provided `K`-tap slice —
/// the scratchpad register the PE holds for the convolution's lifetime.
///
/// Uses a two-cursor sweep over the non-zeros of both operands, so the work
/// is proportional to the number of *overlapping* non-zero pairs — the same
/// quantity the hardware PE spends cycles on. The zero-allocation form used
/// by the execution engines; taps accumulate into `dw`, so successive calls
/// over the output rows of one kernel row build the full weight gradient in
/// place.
///
/// # Panics
///
/// Panics if `dw.len() != geom.kernel`; panics in debug builds if the
/// operand lengths are inconsistent with `geom`.
pub fn osrc_accumulate(input: &SparseVec, grad: &SparseVec, geom: ConvGeometry, dw: &mut [f32]) {
    assert_eq!(dw.len(), geom.kernel, "tap buffer length mismatch");
    debug_assert_eq!(
        grad.len(),
        geom.output_extent(input.len()),
        "gradient row length inconsistent with convolution geometry"
    );
    let k = geom.kernel;
    let stride = geom.stride as isize;
    let pad = geom.pad as isize;
    // For each non-zero gradient, the matching input window is
    // [ox*stride - pad, ox*stride - pad + K). Both offset lists are sorted,
    // so a cursor into the input advances monotonically.
    let in_offsets = input.offsets();
    let in_values = input.values();
    let mut cursor = 0usize;
    for (ox, g) in grad.iter() {
        let base = ox as isize * stride - pad;
        let win_start = base.max(0) as u32;
        while cursor < in_offsets.len() && in_offsets[cursor] < win_start {
            cursor += 1;
        }
        let mut j = cursor;
        while j < in_offsets.len() {
            let ix = in_offsets[j] as isize;
            let v = ix - base;
            if v >= k as isize {
                break;
            }
            // v >= 0 is guaranteed by the cursor advance above.
            dw[v as usize] += g * in_values[j];
            j += 1;
        }
    }
}

/// Performs one OSRC operation, producing `K` weight-gradient taps in a
/// fresh vector. Thin allocating wrapper over [`osrc_accumulate`].
///
/// ```
/// use sparsetrain_sparse::{SparseVec, osrc::osrc_conv};
/// use sparsetrain_tensor::conv::ConvGeometry;
///
/// let input = SparseVec::from_dense(&[1.0, 2.0, 3.0, 4.0]);
/// let grad = SparseVec::from_dense(&[1.0, 0.0, 1.0]);
/// // K=2, stride 1, no pad: dw[v] = sum_ox g[ox] * i[ox+v]
/// let dw = osrc_conv(&input, &grad, ConvGeometry::new(2, 1, 0));
/// assert_eq!(dw, vec![1.0 + 3.0, 2.0 + 4.0]);
/// ```
///
/// # Panics
///
/// Panics (in debug builds) if the operand lengths are inconsistent with
/// `geom` — i.e. `grad.len() != geom.output_extent(input.len())`.
pub fn osrc_conv(input: &SparseVec, grad: &SparseVec, geom: ConvGeometry) -> Vec<f32> {
    let mut dw = vec![0.0; geom.kernel];
    osrc_accumulate(input, grad, geom, &mut dw);
    dw
}

/// Number of overlapping non-zero `(input, grad)` pairs — the MAC count of
/// an OSRC operation, used by the analytic work model.
pub fn osrc_pair_count(input: &SparseVec, grad: &SparseVec, geom: ConvGeometry) -> u64 {
    let k = geom.kernel as isize;
    let stride = geom.stride as isize;
    let pad = geom.pad as isize;
    let in_offsets = input.offsets();
    let mut cursor = 0usize;
    let mut pairs = 0u64;
    for (ox, _) in grad.iter() {
        let base = ox as isize * stride - pad;
        let win_start = base.max(0) as u32;
        while cursor < in_offsets.len() && in_offsets[cursor] < win_start {
            cursor += 1;
        }
        let mut j = cursor;
        while j < in_offsets.len() && (in_offsets[j] as isize) < base + k {
            pairs += 1;
            j += 1;
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_osrc(input: &[f32], grad: &[f32], geom: ConvGeometry) -> Vec<f32> {
        let mut dw = vec![0.0; geom.kernel];
        for (ox, &g) in grad.iter().enumerate() {
            for (v, d) in dw.iter_mut().enumerate() {
                let ix = ox as isize * geom.stride as isize - geom.pad as isize + v as isize;
                if ix >= 0 && (ix as usize) < input.len() {
                    *d += g * input[ix as usize];
                }
            }
        }
        dw
    }

    #[test]
    fn matches_dense_reference() {
        let input = [0.0, 1.0, 0.0, 2.0, 3.0, 0.0, 4.0, 0.0];
        let geom = ConvGeometry::new(3, 1, 1);
        let grad = [1.0, 0.0, -1.0, 0.0, 2.0, 0.0, 0.0, 1.0];
        let got = osrc_conv(
            &SparseVec::from_dense(&input),
            &SparseVec::from_dense(&grad),
            geom,
        );
        let want = dense_osrc(&input, &grad, geom);
        assert_eq!(got, want);
    }

    #[test]
    fn matches_dense_reference_stride2() {
        let input = [1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 5.0, 0.0];
        let geom = ConvGeometry::new(3, 2, 1);
        let out_len = geom.output_extent(input.len());
        let grad_dense: Vec<f32> = (0..out_len).map(|i| if i % 2 == 0 { 1.5 } else { 0.0 }).collect();
        let got = osrc_conv(
            &SparseVec::from_dense(&input),
            &SparseVec::from_dense(&grad_dense),
            geom,
        );
        let want = dense_osrc(&input, &grad_dense, geom);
        assert_eq!(got, want);
    }

    #[test]
    fn zero_operands_give_zero() {
        let geom = ConvGeometry::new(3, 1, 1);
        let dw = osrc_conv(&SparseVec::zeros(8), &SparseVec::zeros(8), geom);
        assert_eq!(dw, vec![0.0; 3]);
    }

    #[test]
    fn pair_count_matches_manual() {
        let input = SparseVec::from_dense(&[1.0, 0.0, 1.0, 0.0]);
        let grad = SparseVec::from_dense(&[0.0, 1.0, 0.0, 1.0]);
        let geom = ConvGeometry::new(3, 1, 1);
        // grad nz at ox=1 (window ix 0..3): input nz 0, 2 -> 2 pairs
        // grad nz at ox=3 (window ix 2..5): input nz 2 -> 1 pair
        assert_eq!(osrc_pair_count(&input, &grad, geom), 3);
    }

    #[test]
    fn cursor_never_misses_window_restart() {
        // Overlapping windows must both see the shared input non-zero.
        let input = SparseVec::from_dense(&[0.0, 5.0, 0.0, 0.0]);
        let grad = SparseVec::from_dense(&[1.0, 1.0, 0.0, 0.0]);
        let geom = ConvGeometry::new(3, 1, 1);
        let dw = osrc_conv(&input, &grad, geom);
        // ox=0 base=-1: ix=1 -> v=2 ; ox=1 base=0: ix=1 -> v=1
        assert_eq!(dw, vec![0.0, 5.0, 5.0]);
    }
}
