//! Density-adaptive execution planning: one engine per (layer, stage).
//!
//! The registry's engines have *disjoint win regions* — the cache-blocked
//! im2row lowering dominates dense forward legs, the simd engine wins
//! mid-density gradient legs, and the sparse scalar kernels win once
//! pruning pushes operand density toward 0.05 — yet a global engine name
//! applies one backend to every convolution of every stage. This module
//! closes that gap the way the paper's hardware scheduler does: execution
//! is planned **per cell**, where a cell is a `(layer id, stage)` pair and
//! the stages are the three training convolutions ([`Stage::Forward`],
//! [`Stage::InputGrad`] for GTA, [`Stage::WeightGrad`] for GTW).
//!
//! Three layers of machinery:
//!
//! * [`Plan`] — the frozen decision table mapping cells to
//!   [`EngineHandle`]s, with a default engine for unplanned cells. Plans
//!   serialize to a line-oriented text format (see [`Plan::from_text`])
//!   and to the compiled binary program format
//!   ([`crate::plan_program::ExecutionProgram`], via [`Plan::to_program`])
//!   so a probed plan can be saved and replayed via the
//!   [`PLAN_ENV`] (`SPARSETRAIN_PLAN`) environment variable — which
//!   accepts either format, sniffing the binary magic — and render
//!   as a Markdown table ([`Plan::to_markdown`]) for reports.
//! * [`Planner`] — the online decision state
//!   [`crate::ExecutionContext`] carries when the `"auto"` engine is
//!   selected. In **probe mode** the first execution of each cell times
//!   every candidate engine (via `std::time::Instant`) and caches the
//!   winner; afterwards the frozen plan replays. Probing happens entirely
//!   outside the deterministic numeric path: every candidate is
//!   bitwise-identical to the scalar reference (the parity suites enforce
//!   this), so the plan affects speed, never results — the fixed-point
//!   engines are deliberately **not** candidates.
//! * [`AutoEngine`] — the `"auto"` registry entry itself: a
//!   [`KernelEngine`] that picks a delegate per call from the observed
//!   operand density ([`SparseFeatureMap::density`]) and the win-region
//!   heuristic ([`heuristic_name`]). It covers every call site that has
//!   no layer identity to plan against (benches, raw engine calls); the
//!   planned entry points on `ExecutionContext` add the per-cell
//!   measure-and-cache layer on top.

use crate::engine::KernelEngine;
use crate::mask::RowMask;
use crate::registry::{lookup, lookup_or_parse, EngineHandle};
use crate::rowconv::SparseFeatureMap;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::{Tensor3, Tensor4};
use std::collections::BTreeMap;
use std::fmt;

/// Environment variable naming a serialized plan file — either the
/// line-oriented text format or a compiled `STPLAN` binary program
/// ([`load_plan`] sniffs the magic). When set (and the `"auto"` engine is
/// selected), the plan is loaded and replayed instead of probing — see
/// [`env_plan`].
pub const PLAN_ENV: &str = "SPARSETRAIN_PLAN";

/// The three training-stage convolutions a plan decides independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// SRC: the forward convolution (sparse activations × weights).
    Forward,
    /// MSRC / GTA: the input-gradient convolution (sparse output
    /// gradients × rotated weights, forward masks fused).
    InputGrad,
    /// OSRC / GTW: the weight-gradient correlation (sparse activations ×
    /// sparse output gradients).
    WeightGrad,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 3] = [Stage::Forward, Stage::InputGrad, Stage::WeightGrad];

    /// The stable serialization name (`forward`, `input_grad`,
    /// `weight_grad`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Forward => "forward",
            Stage::InputGrad => "input_grad",
            Stage::WeightGrad => "weight_grad",
        }
    }

    /// Parses a serialization name back to the stage.
    pub fn parse(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The probe candidate set: every float engine, all bitwise-identical to
/// the scalar reference. The fixed-point engines are excluded on purpose —
/// swapping one in would change numeric results, and the planner must only
/// ever trade speed.
pub const CANDIDATE_NAMES: [&str; 6] = [
    "scalar",
    "parallel",
    "simd",
    "parallel:simd",
    "im2row",
    "parallel:im2row",
];

/// Resolves [`CANDIDATE_NAMES`] to handles.
pub fn candidates() -> Vec<EngineHandle> {
    CANDIDATE_NAMES
        .iter()
        .map(|name| lookup(name).expect("candidate engines are always registered"))
        .collect()
}

/// Density above which the forward stage takes the cache-blocked im2row
/// dense lowering (its internal per-row cutoff is 1/8; by 0.20 aggregate
/// density the dense micro-kernel carries the call).
const IM2ROW_FORWARD_DENSITY: f64 = 0.20;

/// Density below which rows are too sparse for lane sweeps to pay off and
/// the work-proportional sparse scalar kernels win (the d ≈ 0.05 regime of
/// pruned gradients).
const SPARSE_SCALAR_DENSITY: f64 = 0.08;

/// The win-region heuristic: the engine name for one cell, given the
/// stage, the observed density of the cell's sparse operand (activations
/// for Forward, pruned output gradients for the backward stages), and
/// whether band parallelism is worth composing (more than one rayon
/// worker).
///
/// Rules distilled from the committed bench baselines: im2row dominates
/// dense forward legs (aggregate density ≥ 0.20), simd wins mid-density
/// legs on every stage, and below ≈ 0.08 density the sparse scalar kernels
/// win — work proportional to nnz beats any dense sweep.
pub fn heuristic_name(stage: Stage, density: f64, parallel: bool) -> &'static str {
    let base = match stage {
        Stage::Forward if density >= IM2ROW_FORWARD_DENSITY => "im2row",
        _ if density >= SPARSE_SCALAR_DENSITY => "simd",
        _ => "scalar",
    };
    match (parallel, base) {
        (false, base) => base,
        (true, "im2row") => "parallel:im2row",
        (true, "simd") => "parallel:simd",
        (true, _) => "parallel",
    }
}

/// [`heuristic_name`] resolved to a handle, with band parallelism composed
/// in when the rayon pool has more than one worker.
pub fn heuristic_handle(stage: Stage, density: f64) -> EngineHandle {
    let name = heuristic_name(stage, density, rayon::current_num_threads() > 1);
    lookup(name).expect("heuristic engines are always registered")
}

/// Mean density over a batch of sparse maps (total nnz / total elements).
pub fn batch_density(maps: &[SparseFeatureMap]) -> f64 {
    let mut nnz = 0usize;
    let mut total = 0usize;
    for m in maps {
        nnz += m.nnz();
        total += m.channels() * m.height() * m.width();
    }
    if total == 0 {
        0.0
    } else {
        nnz as f64 / total as f64
    }
}

/// Error from plan parsing or loading ([`Plan::from_text`], [`env_plan`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(String);

impl PlanError {
    /// A plan error carrying `detail` — the crate-internal constructor
    /// sibling modules (the binary program codec) build errors through.
    pub(crate) fn new(detail: impl Into<String>) -> Self {
        PlanError(detail.into())
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid execution plan: {}", self.0)
    }
}

/// Layer ids must survive the text format, where they are
/// whitespace-delimited and `#` starts a comment; both serializers refuse
/// anything else up front rather than emitting lines that parse back
/// differently (or not at all).
fn check_layer_id(layer: &str) -> Result<(), PlanError> {
    if layer.is_empty() || layer.chars().any(char::is_whitespace) || layer.contains('#') {
        return Err(PlanError(format!(
            "layer id {layer:?} must be non-empty, whitespace-free and '#'-free"
        )));
    }
    Ok(())
}

impl std::error::Error for PlanError {}

/// A frozen execution plan: `(layer id, stage) → engine`, with a default
/// engine for cells the plan does not name.
///
/// ```
/// use sparsetrain_sparse::planner::{Plan, Stage};
/// use sparsetrain_sparse::registry;
///
/// let mut plan = Plan::new(registry::lookup("scalar").unwrap());
/// plan.set("conv1", Stage::Forward, registry::lookup("im2row").unwrap());
/// assert_eq!(plan.resolve("conv1", Stage::Forward).name(), "im2row");
/// assert_eq!(plan.resolve("conv1", Stage::WeightGrad).name(), "scalar");
/// let text = plan.to_text();
/// assert_eq!(Plan::from_text(&text).unwrap(), plan);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    default: EngineHandle,
    cells: BTreeMap<(String, Stage), EngineHandle>,
}

impl Plan {
    /// An empty plan resolving every cell to `default`.
    pub fn new(default: EngineHandle) -> Self {
        Self {
            default,
            cells: BTreeMap::new(),
        }
    }

    /// The engine unplanned cells resolve to.
    pub fn default_engine(&self) -> EngineHandle {
        self.default
    }

    /// Pins `layer`'s `stage` to `engine`.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is empty, contains whitespace, or contains
    /// `#` — ids the text format cannot round-trip (whitespace-delimited
    /// fields, `#` comments). Use [`Plan::try_set`] where the layer id is
    /// untrusted input.
    pub fn set(&mut self, layer: &str, stage: Stage, engine: EngineHandle) {
        self.try_set(layer, stage, engine)
            .unwrap_or_else(|e| panic!("{}", e.0));
    }

    /// Fallible [`Plan::set`]: the insertion path deserializers use
    /// ([`Plan::from_text`], [`Plan::from_program`]), rejecting layer ids
    /// the text format cannot round-trip instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when `layer` is empty, contains whitespace,
    /// or contains `#`.
    pub fn try_set(&mut self, layer: &str, stage: Stage, engine: EngineHandle) -> Result<(), PlanError> {
        check_layer_id(layer)?;
        self.cells.insert((layer.to_string(), stage), engine);
        Ok(())
    }

    /// The planned engine for a cell, if one was decided.
    pub fn get(&self, layer: &str, stage: Stage) -> Option<EngineHandle> {
        self.cells.get(&(layer.to_string(), stage)).copied()
    }

    /// The engine a cell executes on: the planned one, or the default.
    pub fn resolve(&self, layer: &str, stage: Stage) -> EngineHandle {
        self.get(layer, stage).unwrap_or(self.default)
    }

    /// Number of decided cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell has been decided yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates the decided cells in `(layer, stage)` order.
    pub fn cells(&self) -> impl Iterator<Item = (&str, Stage, EngineHandle)> {
        self.cells
            .iter()
            .map(|((layer, stage), h)| (layer.as_str(), *stage, *h))
    }

    /// Serializes the plan to the line-oriented text format
    /// [`Plan::from_text`] parses.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# sparsetrain execution plan v1\n");
        out.push_str(&format!("default {}\n", self.default.name()));
        for (layer, stage, handle) in self.cells() {
            // `set`/`try_set` enforce serializable ids; a violation here
            // means a cell bypassed them.
            debug_assert!(check_layer_id(layer).is_ok(), "unserializable layer id {layer:?}");
            out.push_str(&format!("{layer} {stage} {}\n", handle.name()));
        }
        out
    }

    /// Parses the text format: one `layer stage engine` triple per line
    /// (stage ∈ `forward` / `input_grad` / `weight_grad`), an optional
    /// `default <engine>` line, blank lines and `#` comments ignored.
    /// Engine names resolve through the open registry, so a plan may name
    /// anything registered — including `fixed:qI.F` grids, though plans
    /// mixing fixed-point cells trade bitwise reproducibility away.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] on malformed lines, unknown stages, or engine
    /// names that do not resolve.
    pub fn from_text(text: &str) -> Result<Self, PlanError> {
        let engine = |name: &str, line_no: usize| {
            lookup_or_parse(name).map_err(|e| PlanError(format!("line {line_no}: {e}")))
        };
        let mut plan = Plan::new(lookup("scalar").expect("scalar engine is always registered"));
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["default", name] => plan.default = engine(name, i + 1)?,
                [layer, stage, name] => {
                    let stage = Stage::parse(stage).ok_or_else(|| {
                        PlanError(format!(
                            "line {}: unknown stage {stage:?} (expected forward, input_grad or weight_grad)",
                            i + 1
                        ))
                    })?;
                    plan.try_set(layer, stage, engine(name, i + 1)?)
                        .map_err(|e| PlanError(format!("line {}: {}", i + 1, e.0)))?;
                }
                _ => {
                    return Err(PlanError(format!(
                        "line {}: expected \"layer stage engine\" or \"default engine\", got {line:?}",
                        i + 1
                    )))
                }
            }
        }
        Ok(plan)
    }

    /// Renders the plan as a Markdown table: one row per layer, one column
    /// per stage, unplanned cells shown as the default engine.
    pub fn to_markdown(&self) -> String {
        let mut layers: Vec<&str> = Vec::new();
        for (layer, _, _) in self.cells() {
            if layers.last() != Some(&layer) {
                layers.push(layer);
            }
        }
        let mut out = String::from("| layer | forward | input_grad | weight_grad |\n|---|---|---|---|\n");
        for layer in layers {
            let cell = |stage| {
                self.get(layer, stage)
                    .map_or_else(|| format!("({})", self.default.name()), |h| h.name().to_string())
            };
            out.push_str(&format!(
                "| {layer} | {} | {} | {} |\n",
                cell(Stage::Forward),
                cell(Stage::InputGrad),
                cell(Stage::WeightGrad)
            ));
        }
        out.push_str(&format!("\nDefault engine: `{}`.\n", self.default.name()));
        out
    }
}

/// Loads and parses a serialized plan file — a compiled `STPLAN` binary
/// program or the legacy text format, distinguished by sniffing the
/// binary magic ([`crate::plan_program::is_binary_plan`]).
///
/// # Errors
///
/// Returns [`PlanError`] when the file cannot be read or parsed in the
/// format its leading bytes select.
pub fn load_plan(path: &str) -> Result<Plan, PlanError> {
    let mut bytes = std::fs::read(path).map_err(|e| PlanError(format!("cannot read {path}: {e}")))?;
    // Fault seam: a plan-decode fault flips one seeded bit in the bytes
    // read, which must surface as a typed PlanError, never a panic.
    if let Some(salt) = sparsetrain_faults::on_plan_decode() {
        sparsetrain_faults::flip_bit(&mut bytes, salt);
    }
    if crate::plan_program::is_binary_plan(&bytes) {
        let program = crate::plan_program::ExecutionProgram::decode(&bytes)
            .map_err(|e| PlanError(format!("{path}: {e}")))?;
        return Plan::from_program(&program).map_err(|e| PlanError(format!("{path}: {}", e.0)));
    }
    let text = String::from_utf8(bytes).map_err(|_| {
        PlanError(format!(
            "{path}: not UTF-8 text (and not an STPLAN binary program)"
        ))
    })?;
    Plan::from_text(&text).map_err(|e| PlanError(format!("{path}: {}", e.0)))
}

/// Reads the [`PLAN_ENV`] override: `Ok(None)` when unset or empty,
/// otherwise the plan loaded from the file the variable points at.
///
/// # Errors
///
/// Returns [`PlanError`] when the named file cannot be read or parsed.
pub fn env_plan() -> Result<Option<Plan>, PlanError> {
    match std::env::var(PLAN_ENV) {
        Ok(path) if !path.is_empty() => load_plan(&path).map(Some),
        _ => Ok(None),
    }
}

/// The online decision state a planned [`crate::ExecutionContext`]
/// carries: a [`Plan`] under construction (probe mode) or under replay,
/// plus the probe candidate set.
#[derive(Debug, Clone)]
pub struct Planner {
    plan: Plan,
    probe: bool,
    candidates: Vec<EngineHandle>,
}

impl Planner {
    /// A measure-and-cache planner: the first execution of each cell
    /// probes every candidate and freezes the fastest.
    pub fn probing() -> Self {
        Self {
            plan: Plan::new(lookup("scalar").expect("scalar engine is always registered")),
            probe: true,
            candidates: candidates(),
        }
    }

    /// A replay planner: cells named by `plan` execute on their pinned
    /// engine; cells the plan misses fall back to the density heuristic
    /// (decided once, then frozen) instead of probing.
    pub fn replay(plan: Plan) -> Self {
        Self {
            plan,
            probe: false,
            candidates: candidates(),
        }
    }

    /// Whether undecided cells are probed (vs decided heuristically).
    pub fn probing_enabled(&self) -> bool {
        self.probe
    }

    /// The engines an undecided cell races in probe mode.
    pub fn candidates(&self) -> &[EngineHandle] {
        &self.candidates
    }

    /// The plan as decided so far.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The frozen decision for a cell, if one exists.
    pub fn decided(&self, layer: &str, stage: Stage) -> Option<EngineHandle> {
        self.plan.get(layer, stage)
    }

    /// Freezes a cell's decision.
    pub fn record(&mut self, layer: &str, stage: Stage, engine: EngineHandle) {
        self.plan.set(layer, stage, engine);
    }

    /// The heuristic fallback for an undecided cell in replay mode.
    pub fn fallback(&self, stage: Stage, density: f64) -> EngineHandle {
        heuristic_handle(stage, density)
    }
}

/// The `"auto"` registry engine: density-adaptive per-call dispatch.
///
/// Every call inspects its sparse operand's density and delegates to the
/// win-region heuristic's engine ([`heuristic_name`]) — the activations
/// for Forward, the (pruned) output gradients for GTA and GTW. All
/// delegates are float engines bitwise-identical to the scalar reference,
/// so `auto` is itself bitwise-identical to `scalar` on every call, at
/// whatever speed the densities allow. Call sites with a layer identity
/// get the stronger per-(layer, stage) measure-and-cache treatment through
/// [`crate::ExecutionContext`]'s planned entry points; this engine is the
/// zero-configuration floor underneath.
#[derive(Debug, Default, Clone, Copy)]
pub struct AutoEngine;

impl AutoEngine {
    fn pick(stage: Stage, density: f64) -> &'static dyn KernelEngine {
        heuristic_handle(stage, density).engine()
    }
}

impl KernelEngine for AutoEngine {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn forward_into(
        &self,
        input: &SparseFeatureMap,
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
        out: &mut Tensor3,
    ) {
        Self::pick(Stage::Forward, input.density()).forward_into(input, weights, bias, geom, out);
    }

    fn input_grad_into(
        &self,
        dout: &SparseFeatureMap,
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[RowMask],
        din: &mut Tensor3,
    ) {
        Self::pick(Stage::InputGrad, dout.density()).input_grad_into(dout, weights, geom, masks, din);
    }

    fn weight_grad_into(
        &self,
        input: &SparseFeatureMap,
        dout: &SparseFeatureMap,
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        Self::pick(Stage::WeightGrad, dout.density()).weight_grad_into(input, dout, geom, dw);
    }

    fn forward_batch_into(
        &self,
        inputs: &[SparseFeatureMap],
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
        outs: &mut [Tensor3],
    ) {
        Self::pick(Stage::Forward, batch_density(inputs))
            .forward_batch_into(inputs, weights, bias, geom, outs);
    }

    fn input_grad_batch_into(
        &self,
        douts: &[SparseFeatureMap],
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[Vec<RowMask>],
        dins: &mut [Tensor3],
    ) {
        Self::pick(Stage::InputGrad, batch_density(douts))
            .input_grad_batch_into(douts, weights, geom, masks, dins);
    }

    fn weight_grad_batch_into(
        &self,
        inputs: &[SparseFeatureMap],
        douts: &[SparseFeatureMap],
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        Self::pick(Stage::WeightGrad, batch_density(douts)).weight_grad_batch_into(inputs, douts, geom, dw);
    }

    fn for_each_batch_chunk(&self, parts: Vec<&mut [f32]>, work: &(dyn Fn(usize, usize, &mut [f32]) + Sync)) {
        // Elementwise batch work (the pruning seam) is position-pure by
        // contract, so any chunking is bitwise-identical — hand it to the
        // band-parallel engine, which degenerates to sequential on one
        // worker.
        lookup("parallel")
            .expect("parallel engine is always registered")
            .engine()
            .for_each_batch_chunk(parts, work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScalarEngine;
    use sparsetrain_tensor::Tensor3;

    fn handle(name: &str) -> EngineHandle {
        lookup(name).expect(name)
    }

    #[test]
    fn heuristic_matches_the_measured_win_regions() {
        // Dense forward → the cache-blocked im2row lowering.
        assert_eq!(heuristic_name(Stage::Forward, 0.95, false), "im2row");
        assert_eq!(heuristic_name(Stage::Forward, 0.30, false), "im2row");
        // Mid-density forward and gradient legs → lane sweeps.
        assert_eq!(heuristic_name(Stage::Forward, 0.10, false), "simd");
        assert_eq!(heuristic_name(Stage::InputGrad, 0.15, false), "simd");
        assert_eq!(heuristic_name(Stage::WeightGrad, 0.25, false), "simd");
        // The pruned d ≈ 0.05 backward regime → sparse scalar kernels.
        assert_eq!(heuristic_name(Stage::InputGrad, 0.05, false), "scalar");
        assert_eq!(heuristic_name(Stage::WeightGrad, 0.05, false), "scalar");
        // Gradient stages never take the forward-only im2row lowering.
        assert_eq!(heuristic_name(Stage::InputGrad, 0.95, false), "simd");
        // Band parallelism composes on multi-worker pools.
        assert_eq!(heuristic_name(Stage::Forward, 0.95, true), "parallel:im2row");
        assert_eq!(heuristic_name(Stage::InputGrad, 0.15, true), "parallel:simd");
        assert_eq!(heuristic_name(Stage::WeightGrad, 0.05, true), "parallel");
    }

    #[test]
    fn candidates_exclude_fixed_point_engines() {
        let set = candidates();
        assert_eq!(set.len(), CANDIDATE_NAMES.len());
        for h in &set {
            assert!(
                !h.name().starts_with("fixed"),
                "{} would change numerics",
                h.name()
            );
            assert_ne!(h.name(), "auto", "auto must not probe itself");
        }
    }

    #[test]
    fn plan_resolves_cells_and_falls_back_to_default() {
        let mut plan = Plan::new(handle("scalar"));
        assert!(plan.is_empty());
        plan.set("conv1", Stage::Forward, handle("im2row"));
        plan.set("conv1", Stage::WeightGrad, handle("simd"));
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.resolve("conv1", Stage::Forward).name(), "im2row");
        assert_eq!(plan.resolve("conv1", Stage::WeightGrad).name(), "simd");
        assert_eq!(plan.resolve("conv1", Stage::InputGrad).name(), "scalar");
        assert_eq!(plan.resolve("conv9", Stage::Forward).name(), "scalar");
        assert_eq!(plan.get("conv9", Stage::Forward), None);
    }

    #[test]
    #[should_panic(expected = "whitespace-free")]
    fn plan_rejects_whitespace_layer_ids() {
        Plan::new(handle("scalar")).set("conv 1", Stage::Forward, handle("simd"));
    }

    #[test]
    #[should_panic(expected = "'#'")]
    fn plan_rejects_comment_chars_in_layer_ids() {
        // Regression: `to_text` wrote `conv#1` unescaped while `from_text`
        // strips everything after `#`, so the round-trip silently dropped
        // the cell. Such ids are now rejected at insertion.
        Plan::new(handle("scalar")).set("conv#1", Stage::Forward, handle("simd"));
    }

    #[test]
    fn try_set_reports_unserializable_layer_ids() {
        let mut plan = Plan::new(handle("scalar"));
        for hostile in ["conv #1", "my conv", "", "tab\tid", "line\nid"] {
            let err = plan.try_set(hostile, Stage::Forward, handle("simd")).unwrap_err();
            assert!(err.to_string().contains("non-empty"), "{hostile:?}: {err}");
            assert!(plan.is_empty(), "{hostile:?} must not be inserted");
        }
        plan.try_set("conv1", Stage::Forward, handle("simd")).unwrap();
        assert_eq!(plan.resolve("conv1", Stage::Forward).name(), "simd");
        // The serialized form stays parseable — the round-trip the bug broke.
        assert_eq!(Plan::from_text(&plan.to_text()).unwrap(), plan);
    }

    #[test]
    fn plan_text_roundtrips() {
        let mut plan = Plan::new(handle("simd"));
        plan.set("conv1", Stage::Forward, handle("parallel:im2row"));
        plan.set("conv2", Stage::InputGrad, handle("scalar"));
        plan.set("conv2", Stage::WeightGrad, handle("fixed:q4.12"));
        let text = plan.to_text();
        assert_eq!(Plan::from_text(&text).unwrap(), plan);
        // Comments, blank lines and inline comments are tolerated.
        let relaxed = format!("\n# a comment\n{text}\nconv3 forward im2row # trailing\n");
        let parsed = Plan::from_text(&relaxed).unwrap();
        assert_eq!(parsed.resolve("conv3", Stage::Forward).name(), "im2row");
        assert_eq!(parsed.default_engine().name(), "simd");
    }

    #[test]
    fn plan_parse_errors_are_descriptive() {
        let unknown_engine = Plan::from_text("conv1 forward warp-drive").unwrap_err();
        assert!(
            unknown_engine.to_string().contains("warp-drive"),
            "{unknown_engine}"
        );
        let unknown_stage = Plan::from_text("conv1 sideways simd").unwrap_err();
        assert!(unknown_stage.to_string().contains("sideways"), "{unknown_stage}");
        assert!(
            unknown_stage.to_string().contains("input_grad"),
            "{unknown_stage}"
        );
        let malformed = Plan::from_text("conv1 forward simd extra words").unwrap_err();
        assert!(malformed.to_string().contains("line 1"), "{malformed}");
        let bad_default = Plan::from_text("default warp-drive").unwrap_err();
        assert!(bad_default.to_string().contains("warp-drive"), "{bad_default}");
    }

    #[test]
    fn plan_unknown_engine_surfaces_registry_detail() {
        // Regression: an unregistered engine in a plan must carry the full
        // `UnknownEngine` detail (registered names + spec forms), not a bare
        // "not registered" message.
        for text in ["conv1 forward warp-drive", "default warp-drive"] {
            let err = Plan::from_text(text).unwrap_err().to_string();
            assert!(err.contains("warp-drive"), "{err}");
            assert!(err.contains("registered:"), "missing registry list: {err}");
            assert!(err.contains("scalar"), "missing registered names: {err}");
            assert!(err.contains("fixed:qI.F"), "missing spec forms: {err}");
        }
        // A parameterized spec that isn't pre-registered still resolves.
        let plan = Plan::from_text("default fixed:q4.12").unwrap();
        assert_eq!(plan.default_engine().name(), "fixed:q4.12");
    }

    #[test]
    fn plan_renders_markdown() {
        let mut plan = Plan::new(handle("scalar"));
        plan.set("conv1", Stage::Forward, handle("im2row"));
        plan.set("conv1", Stage::InputGrad, handle("simd"));
        plan.set("conv2", Stage::WeightGrad, handle("parallel"));
        let md = plan.to_markdown();
        assert!(
            md.contains("| layer | forward | input_grad | weight_grad |"),
            "{md}"
        );
        assert!(md.contains("| conv1 | im2row | simd | (scalar) |"), "{md}");
        assert!(md.contains("| conv2 | (scalar) | (scalar) | parallel |"), "{md}");
        assert!(md.contains("Default engine: `scalar`"), "{md}");
    }

    #[test]
    fn plan_file_loads_through_env_path_machinery() {
        let path = std::env::temp_dir().join(format!("sparsetrain-plan-{}.txt", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_string();
        std::fs::write(&path, "default simd\nconv1 forward im2row\n").unwrap();
        let plan = load_plan(&path).unwrap();
        assert_eq!(plan.default_engine().name(), "simd");
        assert_eq!(plan.resolve("conv1", Stage::Forward).name(), "im2row");
        std::fs::remove_file(&path).ok();
        let err = load_plan(&path).unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
    }

    #[test]
    fn planner_probe_and_replay_state() {
        let mut probing = Planner::probing();
        assert!(probing.probing_enabled());
        assert!(probing.decided("c1", Stage::Forward).is_none());
        probing.record("c1", Stage::Forward, handle("im2row"));
        assert_eq!(
            probing.decided("c1", Stage::Forward).map(|h| h.name()),
            Some("im2row")
        );

        let mut plan = Plan::new(handle("scalar"));
        plan.set("c1", Stage::InputGrad, handle("simd"));
        let replay = Planner::replay(plan);
        assert!(!replay.probing_enabled());
        assert_eq!(
            replay.decided("c1", Stage::InputGrad).map(|h| h.name()),
            Some("simd")
        );
        // Replay fallback is the heuristic, never a probe.
        assert_eq!(
            replay.fallback(Stage::WeightGrad, 0.05).name(),
            heuristic_name(Stage::WeightGrad, 0.05, rayon::current_num_threads() > 1)
        );
    }

    #[test]
    fn auto_engine_is_bitwise_identical_to_scalar() {
        let geom = ConvGeometry::new(3, 1, 1);
        // One dense map (im2row territory) and one sparse map (scalar
        // territory): the delegate changes, the bits must not.
        for density in [90u64, 5] {
            let mut seed = 0x5EED + density;
            let mut pseudo = move || {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((seed >> 33) % 1000) as f32 / 1000.0 - 0.5
            };
            let input = Tensor3::from_fn(3, 9, 9, |c, y, x| {
                if (c + 3 * y + 7 * x) as u64 % 100 < density {
                    pseudo()
                } else {
                    0.0
                }
            });
            let dout = Tensor3::from_fn(4, 9, 9, |c, y, x| {
                if (5 * c + y + 2 * x) as u64 % 100 < density {
                    pseudo()
                } else {
                    0.0
                }
            });
            let weights = Tensor4::from_fn(4, 3, 3, 3, |_, _, _, _| pseudo());
            let bias: Vec<f32> = (0..4).map(|_| pseudo()).collect();
            let input = SparseFeatureMap::from_tensor(&input);
            let dout = SparseFeatureMap::from_tensor(&dout);
            let masks = input.masks();

            let auto = AutoEngine;
            assert_eq!(
                auto.forward(&input, &weights, Some(&bias), geom).as_slice(),
                ScalarEngine
                    .forward(&input, &weights, Some(&bias), geom)
                    .as_slice()
            );
            assert_eq!(
                auto.input_grad(&dout, &weights, geom, 9, 9, &masks).as_slice(),
                ScalarEngine
                    .input_grad(&dout, &weights, geom, 9, 9, &masks)
                    .as_slice()
            );
            assert_eq!(
                auto.weight_grad(&input, &dout, geom).as_slice(),
                ScalarEngine.weight_grad(&input, &dout, geom).as_slice()
            );
        }
    }

    #[test]
    fn batch_density_aggregates_over_samples() {
        let dense = SparseFeatureMap::from_tensor(&Tensor3::from_fn(1, 2, 2, |_, _, _| 1.0));
        let empty = SparseFeatureMap::from_tensor(&Tensor3::zeros(1, 2, 2));
        assert_eq!(batch_density(std::slice::from_ref(&dense)), 1.0);
        assert_eq!(batch_density(&[dense, empty]), 0.5);
        assert_eq!(batch_density(&[]), 0.0);
    }
}
