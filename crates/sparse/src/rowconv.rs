//! Row-decomposed 2-D convolutions — the functional model of the dataflow.
//!
//! These functions rebuild the three training-stage convolutions exactly as
//! the accelerator executes them: each 2-D convolution is disassembled into
//! channel-level and then row-level 1-D operations (Fig. 6), dispatched to
//! the SRC/MSRC/OSRC primitives. They must produce bit-identical results to
//! the dense references in [`sparsetrain_tensor::conv`] (up to f32
//! accumulation order), which the tests verify.
//!
//! Execution is delegated to a [`KernelEngine`]: the plain functions keep
//! the original signatures and run on [`crate::engine::ScalarEngine`],
//! while arbitrary engines are driven through the trait's own convenience
//! methods ([`KernelEngine::forward`], [`KernelEngine::input_grad`],
//! [`KernelEngine::weight_grad`] and their batched variants).
//! All engines accumulate through the kernels' scratch APIs, so no per-row
//! heap allocation happens on any path.

use crate::compressed::SparseVec;
use crate::engine::{KernelEngine, ScalarEngine};
use crate::mask::RowMask;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::{Tensor3, Tensor4};

/// A feature map stored as compressed rows — the on-chip layout of sparse
/// activations and gradients.
///
/// ```
/// use sparsetrain_sparse::rowconv::SparseFeatureMap;
/// use sparsetrain_tensor::Tensor3;
///
/// let t = Tensor3::from_fn(2, 2, 4, |_, _, x| if x % 2 == 0 { 1.0 } else { 0.0 });
/// let fm = SparseFeatureMap::from_tensor(&t);
/// assert_eq!(fm.density(), 0.5);
/// assert_eq!(fm.to_tensor(), t);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseFeatureMap {
    channels: usize,
    height: usize,
    width: usize,
    rows: Vec<SparseVec>,
}

impl SparseFeatureMap {
    /// Compresses a dense feature map row by row.
    pub fn from_tensor(t: &Tensor3) -> Self {
        let (c, h, w) = t.shape();
        let mut rows = Vec::with_capacity(c * h);
        for ci in 0..c {
            for y in 0..h {
                rows.push(SparseVec::from_dense(t.row(ci, y)));
            }
        }
        Self {
            channels: c,
            height: h,
            width: w,
            rows,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The compressed row for channel `c`, spatial row `y`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, c: usize, y: usize) -> &SparseVec {
        assert!(c < self.channels && y < self.height);
        &self.rows[c * self.height + y]
    }

    /// Total non-zero count.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(SparseVec::nnz).sum()
    }

    /// Overall density (1.0 if the map has no elements).
    pub fn density(&self) -> f64 {
        let total = self.channels * self.height * self.width;
        if total == 0 {
            1.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Expands back to a dense tensor.
    pub fn to_tensor(&self) -> Tensor3 {
        let mut t = Tensor3::zeros(self.channels, self.height, self.width);
        for ci in 0..self.channels {
            for y in 0..self.height {
                let dense = self.row(ci, y).to_dense();
                t.row_mut(ci, y).copy_from_slice(&dense);
            }
        }
        t
    }

    /// Returns a copy with every stored value mapped through `f`; values
    /// that map to exactly `0.0` are dropped from the compressed rows
    /// (quantization underflow produces genuinely empty positions, exactly
    /// as a fixed-point datapath would store them).
    pub fn map_values(&self, f: impl Fn(f32) -> f32) -> Self {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut mapped = SparseVec::zeros(row.len());
                for (offset, value) in row.iter() {
                    let m = f(value);
                    if m != 0.0 {
                        mapped.push(offset, m);
                    }
                }
                mapped
            })
            .collect();
        Self {
            channels: self.channels,
            height: self.height,
            width: self.width,
            rows,
        }
    }

    /// Per-row non-zero masks (the Forward-step masks consumed by GTA).
    pub fn masks(&self) -> Vec<RowMask> {
        self.rows
            .iter()
            .map(|r| RowMask::from_offsets(r.len(), r.offsets()))
            .collect()
    }

    /// Size of the compressed representation in 16-bit words.
    pub fn storage_words(&self) -> usize {
        self.rows.iter().map(SparseVec::storage_words).sum()
    }
}

/// Forward step on the reference [`ScalarEngine`].
///
/// Equivalent to [`sparsetrain_tensor::conv::forward`]; every output row is
/// the accumulation of `C × K` SRC operations.
///
/// # Panics
///
/// Panics on shape mismatches between `input`, `weights` and `geom`.
pub fn forward_rows(
    input: &SparseFeatureMap,
    weights: &Tensor4,
    bias: Option<&[f32]>,
    geom: ConvGeometry,
) -> Tensor3 {
    ScalarEngine.forward(input, weights, bias, geom)
}

/// GTA step on the reference [`ScalarEngine`].
///
/// `dout` is the (sparse) output-gradient map; `masks` are the per-row
/// non-zero masks of the layer's forward *input* (one per `(channel, row)`
/// in channel-major order, as produced by [`SparseFeatureMap::masks`]).
/// Positions absent from the mask are skipped and left zero — exactly the
/// ReLU-backward fusion of the paper.
///
/// Equivalent to [`sparsetrain_tensor::conv::input_grad`] followed by
/// masking.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn input_grad_rows(
    dout: &SparseFeatureMap,
    weights: &Tensor4,
    geom: ConvGeometry,
    in_h: usize,
    in_w: usize,
    masks: &[RowMask],
) -> Tensor3 {
    ScalarEngine.input_grad(dout, weights, geom, in_h, in_w, masks)
}

/// GTW step on the reference [`ScalarEngine`].
///
/// Equivalent to [`sparsetrain_tensor::conv::weight_grad`]; each kernel row
/// of `dW[fi][ci]` accumulates `Ho` OSRC results in place (no per-row tap
/// scratch).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn weight_grad_rows(input: &SparseFeatureMap, dout: &SparseFeatureMap, geom: ConvGeometry) -> Tensor4 {
    ScalarEngine.weight_grad(input, dout, geom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetrain_tensor::conv;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    fn pseudo(seed: &mut u64) -> f32 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((*seed % 2000) as f32 / 1000.0) - 1.0
    }

    fn sparse_tensor(c: usize, h: usize, w: usize, density_pct: u64, seed: &mut u64) -> Tensor3 {
        Tensor3::from_fn(c, h, w, |_, _, _| {
            let v = pseudo(seed);
            let keep = {
                *seed ^= *seed << 13;
                *seed ^= *seed >> 7;
                *seed % 100 < density_pct
            };
            if keep {
                v
            } else {
                0.0
            }
        })
    }

    #[test]
    fn forward_rows_matches_dense() {
        for &(stride, pad) in &[(1usize, 1usize), (2, 1), (1, 0)] {
            let geom = ConvGeometry::new(3, stride, pad);
            let mut seed = 42;
            let input = sparse_tensor(3, 8, 8, 40, &mut seed);
            let weights = Tensor4::from_fn(4, 3, 3, 3, |_, _, _, _| pseudo(&mut seed));
            let bias: Vec<f32> = (0..4).map(|_| pseudo(&mut seed)).collect();
            let want = conv::forward(&input, &weights, Some(&bias), geom);
            let fm = SparseFeatureMap::from_tensor(&input);
            let got = forward_rows(&fm, &weights, Some(&bias), geom);
            assert_close(got.as_slice(), want.as_slice(), 1e-5);
        }
    }

    #[test]
    fn input_grad_rows_matches_dense_with_full_mask() {
        for &(stride, pad) in &[(1usize, 1usize), (2, 1)] {
            let geom = ConvGeometry::new(3, stride, pad);
            let mut seed = 7;
            let (h, w) = (8, 8);
            let oh = geom.output_extent(h);
            let dout = sparse_tensor(4, oh, oh, 35, &mut seed);
            let weights = Tensor4::from_fn(4, 3, 3, 3, |_, _, _, _| pseudo(&mut seed));
            let want = conv::input_grad(&dout, &weights, geom, h, w);
            let fm = SparseFeatureMap::from_tensor(&dout);
            let masks: Vec<RowMask> = (0..3 * h).map(|_| RowMask::full(w)).collect();
            let got = input_grad_rows(&fm, &weights, geom, h, w, &masks);
            assert_close(got.as_slice(), want.as_slice(), 1e-5);
        }
    }

    #[test]
    fn input_grad_rows_respects_masks() {
        let geom = ConvGeometry::new(3, 1, 1);
        let mut seed = 17;
        let dout = sparse_tensor(2, 6, 6, 50, &mut seed);
        let weights = Tensor4::from_fn(2, 2, 3, 3, |_, _, _, _| pseudo(&mut seed));
        let forward_input = sparse_tensor(2, 6, 6, 50, &mut seed);
        let in_fm = SparseFeatureMap::from_tensor(&forward_input);
        let masks = in_fm.masks();
        let fm = SparseFeatureMap::from_tensor(&dout);
        let got = input_grad_rows(&fm, &weights, geom, 6, 6, &masks);
        // Reference: dense input grad, then zero where forward input was zero
        // (the ReLU-backward rule).
        let mut want = conv::input_grad(&dout, &weights, geom, 6, 6);
        for c in 0..2 {
            for y in 0..6 {
                for x in 0..6 {
                    if forward_input.get(c, y, x) == 0.0 {
                        want.set(c, y, x, 0.0);
                    }
                }
            }
        }
        assert_close(got.as_slice(), want.as_slice(), 1e-5);
    }

    #[test]
    fn weight_grad_rows_matches_dense() {
        for &(stride, pad) in &[(1usize, 1usize), (2, 1)] {
            let geom = ConvGeometry::new(3, stride, pad);
            let mut seed = 23;
            let input = sparse_tensor(3, 8, 8, 45, &mut seed);
            let oh = geom.output_extent(8);
            let dout = sparse_tensor(2, oh, oh, 30, &mut seed);
            let want = conv::weight_grad(&input, &dout, geom);
            let got = weight_grad_rows(
                &SparseFeatureMap::from_tensor(&input),
                &SparseFeatureMap::from_tensor(&dout),
                geom,
            );
            assert_close(got.as_slice(), want.as_slice(), 1e-5);
        }
    }

    #[test]
    fn feature_map_roundtrip_and_masks() {
        let t = Tensor3::from_fn(2, 3, 4, |c, y, x| if (c + y + x) % 3 == 0 { 1.0 } else { 0.0 });
        let fm = SparseFeatureMap::from_tensor(&t);
        assert_eq!(fm.to_tensor(), t);
        let masks = fm.masks();
        assert_eq!(masks.len(), 6);
        assert_eq!(
            masks.iter().map(RowMask::count).sum::<usize>(),
            t.as_slice().iter().filter(|&&v| v != 0.0).count()
        );
    }
}
