//! Q-format fixed-point kernel engine mirroring the 16-bit RTL datapath.
//!
//! The paper's accelerator computes in 16-bit fixed point while the
//! reference training runs in float. [`FixedPointEngine`] models that
//! datapath at the engine seam: every operand entering a convolution stage
//! (activation/gradient rows, kernel taps, bias) is first rounded to the
//! engine's [`QFormat`], the row accumulation itself runs in `f32`
//! (modelling the hardware's wide accumulator), and the stage's result
//! tensor is rounded again on store — so outputs, input gradients and the
//! accumulated weight gradients all live on the 16-bit grid.
//!
//! Two consequences the tests pin down:
//!
//! * values already on the grid round-trip exactly, so a convolution whose
//!   inputs, taps and exact results are representable matches
//!   [`ScalarEngine`] bit for bit;
//! * otherwise the error per output is bounded by the accumulated
//!   per-term rounding (see `fixed_point_error_bounds` in the
//!   `engine_parity` suite).
//!
//! This is a *modelling* backend: it clones and quantizes its operands per
//! call and makes no attempt at speed. It overrides the `*_into` entry
//! points directly (quantize, run the scalar reference, round the store),
//! so the band seam ([`crate::engine::BandContext`], the `prepare_*` /
//! `*_band` split the float engines hoist operand state through) never
//! engages — banding a quantization model would model nothing. Select it
//! by name (`"fixed"`) via the [registry](crate::registry).

use crate::engine::{KernelEngine, ScalarEngine};
use crate::mask::RowMask;
use crate::rowconv::SparseFeatureMap;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::qformat::QFormat;
use sparsetrain_tensor::{Tensor3, Tensor4};

/// Kernel engine that executes all three training stages on a 16-bit
/// Q-format grid (default Q8.8, the paper-typical activation format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPointEngine {
    fmt: QFormat,
}

impl FixedPointEngine {
    /// Engine computing in the given 16-bit Q-format.
    pub const fn new(fmt: QFormat) -> Self {
        Self { fmt }
    }

    /// The paper-typical Q8.8 datapath.
    pub const fn q8_8() -> Self {
        Self::new(QFormat::q8_8())
    }

    /// The Q-format this engine computes in.
    pub const fn format(&self) -> QFormat {
        self.fmt
    }

    fn quantize_map(&self, fm: &SparseFeatureMap) -> SparseFeatureMap {
        fm.map_values(|v| self.fmt.roundtrip(v))
    }

    fn quantize_weights(&self, weights: &Tensor4) -> Tensor4 {
        let mut q = weights.clone();
        self.fmt.roundtrip_slice(q.as_mut_slice());
        q
    }
}

impl Default for FixedPointEngine {
    fn default() -> Self {
        Self::q8_8()
    }
}

impl KernelEngine for FixedPointEngine {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn forward_into(
        &self,
        input: &SparseFeatureMap,
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
        out: &mut Tensor3,
    ) {
        let q_input = self.quantize_map(input);
        let q_weights = self.quantize_weights(weights);
        let q_bias = bias.map(|b| b.iter().map(|&v| self.fmt.roundtrip(v)).collect::<Vec<f32>>());
        ScalarEngine.forward_into(&q_input, &q_weights, q_bias.as_deref(), geom, out);
        self.fmt.roundtrip_slice(out.as_mut_slice());
    }

    fn input_grad_into(
        &self,
        dout: &SparseFeatureMap,
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[RowMask],
        din: &mut Tensor3,
    ) {
        let q_dout = self.quantize_map(dout);
        let q_weights = self.quantize_weights(weights);
        ScalarEngine.input_grad_into(&q_dout, &q_weights, geom, masks, din);
        self.fmt.roundtrip_slice(din.as_mut_slice());
    }

    fn weight_grad_into(
        &self,
        input: &SparseFeatureMap,
        dout: &SparseFeatureMap,
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        let q_input = self.quantize_map(input);
        let q_dout = self.quantize_map(dout);
        ScalarEngine.weight_grad_into(&q_input, &q_dout, geom, dw);
        // dW accumulates across the batch in caller-owned storage; rounding
        // after every sample models a Q-format gradient accumulator memory.
        self.fmt.roundtrip_slice(dw.as_mut_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A feature map whose values (multiples of 0.25) and whose products
    /// with 0.25-grid weights stay exactly representable in Q8.8.
    fn grid_map() -> SparseFeatureMap {
        SparseFeatureMap::from_tensor(&Tensor3::from_fn(2, 4, 4, |c, y, x| {
            if (c + y + x) % 2 == 0 {
                (y as f32 - x as f32) * 0.25 + c as f32 * 0.5
            } else {
                0.0
            }
        }))
    }

    fn grid_weights() -> Tensor4 {
        Tensor4::from_fn(3, 2, 3, 3, |f, c, u, v| {
            ((f + c + u + v) % 4) as f32 * 0.25 - 0.25
        })
    }

    #[test]
    fn exact_on_representable_values() {
        let geom = ConvGeometry::new(3, 1, 1);
        let input = grid_map();
        let weights = grid_weights();
        let bias = [0.5f32, -0.25, 0.0];
        let fixed = FixedPointEngine::q8_8().forward(&input, &weights, Some(&bias), geom);
        let float = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
        assert_eq!(fixed.as_slice(), float.as_slice());
    }

    #[test]
    fn output_sits_on_the_q_grid() {
        let geom = ConvGeometry::new(3, 1, 1);
        let input = SparseFeatureMap::from_tensor(&Tensor3::from_fn(2, 5, 5, |c, y, x| {
            ((c * 13 + y * 7 + x * 3) % 11) as f32 * 0.137 - 0.6
        }));
        let weights = Tensor4::from_fn(2, 2, 3, 3, |f, c, u, v| {
            ((f * 31 + c * 17 + u * 5 + v) % 9) as f32 * 0.211 - 0.8
        });
        let engine = FixedPointEngine::q8_8();
        let out = engine.forward(&input, &weights, None, geom);
        let eps = engine.format().epsilon();
        for &v in out.as_slice() {
            let steps = v / eps;
            assert_eq!(steps, steps.round(), "output {v} is off the Q8.8 grid");
        }
    }

    #[test]
    fn saturation_clamps_to_format_range() {
        let geom = ConvGeometry::unit();
        let input = SparseFeatureMap::from_tensor(&Tensor3::from_vec(1, 1, 2, vec![100.0, -100.0]));
        let weights = Tensor4::from_vec(1, 1, 1, 1, vec![100.0]);
        let engine = FixedPointEngine::q8_8();
        let out = engine.forward(&input, &weights, None, geom);
        let eps = engine.format().epsilon();
        // The operands are representable but their product is far outside
        // the format's range; the 16-bit store saturates it (two's
        // complement: the negative rail reaches one epsilon further).
        assert_eq!(out.get(0, 0, 0), engine.format().max_value());
        assert_eq!(out.get(0, 0, 1), i16::MIN as f32 * eps);
    }

    #[test]
    fn format_is_configurable() {
        let coarse = FixedPointEngine::new(QFormat::new(4));
        assert_eq!(coarse.format().frac_bits(), 4);
        assert_eq!(coarse.name(), "fixed");
        let geom = ConvGeometry::unit();
        let input = SparseFeatureMap::from_tensor(&Tensor3::from_vec(1, 1, 1, vec![0.51]));
        let weights = Tensor4::from_vec(1, 1, 1, 1, vec![1.0]);
        // Q11.4 rounds 0.51 to 0.5.
        let out = coarse.forward(&input, &weights, None, geom);
        assert_eq!(out.get(0, 0, 0), 0.5);
    }

    #[test]
    fn weight_grad_accumulator_stays_on_grid() {
        let geom = ConvGeometry::new(3, 1, 1);
        let engine = FixedPointEngine::q8_8();
        let input = grid_map();
        let dout = SparseFeatureMap::from_tensor(&Tensor3::from_fn(3, 4, 4, |c, y, x| {
            if (c + y * x) % 3 == 0 {
                0.375 - c as f32 * 0.125
            } else {
                0.0
            }
        }));
        let mut dw = Tensor4::zeros(3, 2, 3, 3);
        engine.weight_grad_into(&input, &dout, geom, &mut dw);
        engine.weight_grad_into(&input, &dout, geom, &mut dw);
        let eps = engine.format().epsilon();
        for &v in dw.as_slice() {
            let steps = v / eps;
            assert_eq!(steps, steps.round(), "dW {v} is off the Q8.8 grid");
        }
        assert!(dw.as_slice().iter().any(|&v| v != 0.0));
    }
}
