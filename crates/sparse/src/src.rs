//! SRC — Sparse Row Convolution, the Forward-step primitive (Fig. 6a).
//!
//! One operand is a row of the convolution kernel (short, dense); the other
//! is a row of the input activations (long, sparse after the preceding
//! ReLU/MaxPool). Each non-zero input element loaded by the PE is multiplied
//! by all `K` kernel weights in one cycle and scattered into the output
//! partial-sum register.

use crate::compressed::SparseVec;
use sparsetrain_tensor::conv::ConvGeometry;

/// Accumulates one SRC operation into a dense output row.
///
/// For every non-zero `input[ix]` and kernel tap `v`, the product
/// `input[ix] · kernel_row[v]` is added to `out[ox]` where
/// `ox · stride − pad + v = ix` (when such an integer `ox` exists and is in
/// range). This is exactly one of the `K` 1-D convolutions whose sum forms
/// one output row of the Forward step.
///
/// # Panics
///
/// Panics if `kernel_row.len() != geom.kernel`.
pub fn src_accumulate(input: &SparseVec, kernel_row: &[f32], geom: ConvGeometry, out: &mut [f32]) {
    assert_eq!(kernel_row.len(), geom.kernel, "kernel row length mismatch");
    let stride = geom.stride as isize;
    let pad = geom.pad as isize;
    let out_len = out.len() as isize;
    for (ix, val) in input.iter() {
        for (v, &w) in kernel_row.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let t = ix as isize + pad - v as isize;
            if t < 0 || t % stride != 0 {
                continue;
            }
            let ox = t / stride;
            if ox >= out_len {
                continue;
            }
            out[ox as usize] += val * w;
        }
    }
}

/// Performs one SRC operation into a fresh zeroed output row of length
/// `out_len`.
///
/// ```
/// use sparsetrain_sparse::{SparseVec, src::src_conv};
/// use sparsetrain_tensor::conv::ConvGeometry;
///
/// // Identity 1-tap kernel reproduces the input row.
/// let row = SparseVec::from_dense(&[0.0, 2.0, 0.0, 4.0]);
/// let out = src_conv(&row, &[1.0], ConvGeometry::new(1, 1, 0), 4);
/// assert_eq!(out, vec![0.0, 2.0, 0.0, 4.0]);
/// ```
pub fn src_conv(input: &SparseVec, kernel_row: &[f32], geom: ConvGeometry, out_len: usize) -> Vec<f32> {
    let mut out = vec![0.0; out_len];
    src_accumulate(input, kernel_row, geom, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_row_conv(input: &[f32], kernel: &[f32], geom: ConvGeometry) -> Vec<f32> {
        let out_len = geom.output_extent(input.len());
        let mut out = vec![0.0; out_len];
        for (ox, o) in out.iter_mut().enumerate() {
            for (v, &w) in kernel.iter().enumerate() {
                let ix = ox as isize * geom.stride as isize - geom.pad as isize + v as isize;
                if ix >= 0 && (ix as usize) < input.len() {
                    *o += w * input[ix as usize];
                }
            }
        }
        out
    }

    #[test]
    fn matches_dense_reference_stride1() {
        let dense = [0.0, 1.0, 0.0, 2.0, 3.0, 0.0, 0.0, 4.0];
        let kernel = [0.5, -1.0, 2.0];
        let geom = ConvGeometry::new(3, 1, 1);
        let sparse = SparseVec::from_dense(&dense);
        let got = src_conv(&sparse, &kernel, geom, geom.output_extent(dense.len()));
        let want = dense_row_conv(&dense, &kernel, geom);
        assert_eq!(got, want);
    }

    #[test]
    fn matches_dense_reference_stride2() {
        let dense = [1.0, 0.0, -2.0, 0.0, 3.0, 0.0, 0.0, 5.0, 0.0];
        let kernel = [1.0, 2.0, 3.0];
        let geom = ConvGeometry::new(3, 2, 1);
        let sparse = SparseVec::from_dense(&dense);
        let got = src_conv(&sparse, &kernel, geom, geom.output_extent(dense.len()));
        let want = dense_row_conv(&dense, &kernel, geom);
        assert_eq!(got, want);
    }

    #[test]
    fn all_zero_input_produces_zero() {
        let sparse = SparseVec::zeros(16);
        let geom = ConvGeometry::new(3, 1, 1);
        let out = src_conv(&sparse, &[1.0, 1.0, 1.0], geom, 16);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let sparse = SparseVec::from_dense(&[1.0, 0.0, 0.0]);
        let geom = ConvGeometry::new(1, 1, 0);
        let mut out = vec![10.0, 20.0, 30.0];
        src_accumulate(&sparse, &[2.0], geom, &mut out);
        assert_eq!(out, vec![12.0, 20.0, 30.0]);
    }

    #[test]
    fn no_padding_edges_handled() {
        let dense = [1.0, 2.0, 3.0, 4.0];
        let kernel = [1.0, 1.0];
        let geom = ConvGeometry::new(2, 1, 0);
        let sparse = SparseVec::from_dense(&dense);
        let got = src_conv(&sparse, &kernel, geom, geom.output_extent(4));
        assert_eq!(got, vec![3.0, 5.0, 7.0]);
    }
}
