//! Analytic PE work model for the three 1-D primitives.
//!
//! The PE (§V) consumes one sparse operand element per cycle and performs up
//! to `K` multiply–accumulates against the register-held operand in that
//! cycle. These formulas give the exact cycle and MAC counts of one 1-D
//! operation; the cycle-exact PE model in `sparsetrain-sim` is tested to
//! agree with them, and the fast whole-network simulator is built on them.

use crate::compressed::SparseVec;
use crate::mask::RowMask;
use crate::msrc::fully_masked_loads;
use crate::osrc::osrc_pair_count;
use sparsetrain_tensor::conv::ConvGeometry;

/// Fixed pipeline-fill overhead of starting one 1-D convolution on a PE:
/// load the register operand, prime the multiplier array.
pub const OP_SETUP_CYCLES: u64 = 2;

/// Cycle and MAC cost of a single 1-D operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpWork {
    /// Cycles the PE is busy (including [`OP_SETUP_CYCLES`] if any work exists).
    pub cycles: u64,
    /// Multiply–accumulates actually performed.
    pub macs: u64,
    /// Operand words streamed through Port-1 (sparse operand loads).
    pub loads: u64,
}

impl OpWork {
    /// An operation that was skipped entirely (no non-zero work).
    pub fn skipped() -> Self {
        Self::default()
    }

    /// Component-wise sum.
    pub fn add(&self, other: &OpWork) -> OpWork {
        OpWork {
            cycles: self.cycles + other.cycles,
            macs: self.macs + other.macs,
            loads: self.loads + other.loads,
        }
    }
}

/// Work of one SRC operation: one cycle per non-zero input element, `K`
/// MACs per cycle (the multiplier array covers the whole kernel row).
///
/// A fully-zero input row is skipped with zero cycles (the controller never
/// dispatches it — its compressed form is empty).
pub fn src_work(input: &SparseVec, geom: ConvGeometry) -> OpWork {
    let nnz = input.nnz() as u64;
    if nnz == 0 {
        return OpWork::skipped();
    }
    OpWork {
        cycles: OP_SETUP_CYCLES + nnz,
        macs: nnz * geom.kernel as u64,
        loads: nnz,
    }
}

/// Work of one MSRC operation: like SRC over the non-zero gradients, but
/// gradient elements whose whole scatter window is masked out are skipped
/// by the Port-3 look-ahead at no cycle cost (§V).
pub fn msrc_work(grad: &SparseVec, geom: ConvGeometry, mask: &RowMask) -> OpWork {
    let nnz = grad.nnz() as u64;
    if nnz == 0 {
        return OpWork::skipped();
    }
    let skipped = fully_masked_loads(grad, geom, mask) as u64;
    let useful = nnz - skipped;
    if useful == 0 {
        return OpWork::skipped();
    }
    OpWork {
        cycles: OP_SETUP_CYCLES + useful,
        macs: useful * geom.kernel as u64,
        loads: useful,
    }
}

/// Work of one OSRC operation.
///
/// The PE streams the input row from Port-1 (one non-zero per cycle) while
/// the matching `K`-element gradient window sits in Reg-1; gradient
/// non-zeros stream through Port-2 concurrently. An input element overlapped
/// by `m` gradient non-zeros costs `max(m, 1)` effective MAC slots but the
/// element itself is a single load; the dominant term is
/// `max(loads, pairs / K)` since the multiplier array retires `K` pairs per
/// cycle. Rows with no overlapping non-zero pairs are skipped.
pub fn osrc_work(input: &SparseVec, grad: &SparseVec, geom: ConvGeometry) -> OpWork {
    let pairs = osrc_pair_count(input, grad, geom);
    if pairs == 0 {
        return OpWork::skipped();
    }
    let in_nnz = input.nnz() as u64;
    let g_nnz = grad.nnz() as u64;
    let k = geom.kernel as u64;
    // Both operands must be streamed at one word per port per cycle; the
    // MAC array retires up to K pairs per cycle.
    let stream_cycles = in_nnz.max(g_nnz);
    let mac_cycles = pairs.div_ceil(k);
    OpWork {
        cycles: OP_SETUP_CYCLES + stream_cycles.max(mac_cycles),
        macs: pairs,
        loads: in_nnz + g_nnz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn src_work_counts_nonzeros() {
        let v = SparseVec::from_dense(&[0.0, 1.0, 0.0, 2.0, 3.0]);
        let w = src_work(&v, ConvGeometry::new(3, 1, 1));
        assert_eq!(w.cycles, OP_SETUP_CYCLES + 3);
        assert_eq!(w.macs, 9);
        assert_eq!(w.loads, 3);
    }

    #[test]
    fn src_zero_row_skipped() {
        let v = SparseVec::zeros(32);
        assert_eq!(src_work(&v, ConvGeometry::new(3, 1, 1)), OpWork::skipped());
    }

    #[test]
    fn msrc_masked_loads_cost_nothing() {
        let grad = SparseVec::from_dense(&[1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let geom = ConvGeometry::new(3, 1, 1);
        let mask = RowMask::from_offsets(6, &[3]); // only grad[4]'s window hits
        let w = msrc_work(&grad, geom, &mask);
        assert_eq!(w.cycles, OP_SETUP_CYCLES + 1);
        assert_eq!(w.loads, 1);
    }

    #[test]
    fn msrc_fully_masked_row_skipped() {
        let grad = SparseVec::from_dense(&[1.0, 1.0]);
        let geom = ConvGeometry::new(1, 1, 0);
        let mask = RowMask::empty(2);
        assert_eq!(msrc_work(&grad, geom, &mask), OpWork::skipped());
    }

    #[test]
    fn osrc_work_streams_both_operands() {
        let input = SparseVec::from_dense(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let grad = SparseVec::from_dense(&[1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let geom = ConvGeometry::new(3, 1, 1);
        let w = osrc_work(&input, &grad, geom);
        assert!(w.macs > 0);
        assert_eq!(w.loads, 8);
        assert!(w.cycles >= OP_SETUP_CYCLES + 6); // input stream dominates
    }

    #[test]
    fn osrc_disjoint_operands_skipped() {
        let input = SparseVec::from_dense(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let grad = SparseVec::from_dense(&[0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        let geom = ConvGeometry::new(1, 1, 0);
        assert_eq!(osrc_work(&input, &grad, geom), OpWork::skipped());
    }

    #[test]
    fn opwork_add_sums_components() {
        let a = OpWork {
            cycles: 1,
            macs: 2,
            loads: 3,
        };
        let b = OpWork {
            cycles: 10,
            macs: 20,
            loads: 30,
        };
        assert_eq!(
            a.add(&b),
            OpWork {
                cycles: 11,
                macs: 22,
                loads: 33
            }
        );
    }
}
