//! Non-zero position masks recorded in the Forward step.
//!
//! ReLU and MaxPool layers record which positions survived (§II); the GTA
//! step replays these masks, and MSRC uses them to skip computing gradient
//! values that the mask would zero anyway (§IV-A).

/// A per-row bitmask of positions that are allowed to be non-zero.
///
/// ```
/// use sparsetrain_sparse::RowMask;
/// let m = RowMask::from_dense(&[0.0, 1.0, 0.0, 2.0]);
/// assert!(m.contains(1));
/// assert!(!m.contains(2));
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMask {
    len: usize,
    bits: Vec<u64>,
}

impl RowMask {
    /// Creates an all-false mask of logical length `len`.
    pub fn empty(len: usize) -> Self {
        Self {
            len,
            bits: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates an all-true mask (everything allowed — "no mask").
    pub fn full(len: usize) -> Self {
        let mut m = Self::empty(len);
        for i in 0..len {
            m.set(i);
        }
        m
    }

    /// Mask of the non-zero positions in a dense slice.
    pub fn from_dense(dense: &[f32]) -> Self {
        let mut m = Self::empty(dense.len());
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                m.set(i);
            }
        }
        m
    }

    /// Mask from sorted offsets.
    ///
    /// # Panics
    ///
    /// Panics if any offset is `>= len`.
    pub fn from_offsets(len: usize, offsets: &[u32]) -> Self {
        let mut m = Self::empty(len);
        for &o in offsets {
            assert!((o as usize) < len, "offset {o} out of range {len}");
            m.set(o as usize);
        }
        m
    }

    /// Logical length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks position `i` as allowed.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "mask index {i} out of range {}", self.len);
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Marks position `i` as disallowed.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "mask index {i} out of range {}", self.len);
        self.bits[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether position `i` is allowed.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "mask index {i} out of range {}", self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of allowed positions.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether any position in `[start, end)` (clamped to the mask) is allowed.
    pub fn any_in_range(&self, start: usize, end: usize) -> bool {
        let end = end.min(self.len);
        if start >= end {
            return false;
        }
        // Scan word by word; ranges here are kernel-sized (tiny), so a
        // simple loop is fine.
        (start..end).any(|i| self.contains(i))
    }

    /// Iterates over the allowed positions in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }

    /// Intersection with another mask of the same length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and(&self, other: &RowMask) -> RowMask {
        assert_eq!(self.len, other.len, "mask length mismatch");
        let bits = self.bits.iter().zip(&other.bits).map(|(a, b)| a & b).collect();
        RowMask { len: self.len, bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = RowMask::empty(70);
        assert_eq!(e.count(), 0);
        let f = RowMask::full(70);
        assert_eq!(f.count(), 70);
        assert!(f.contains(69));
    }

    #[test]
    fn set_clear_contains() {
        let mut m = RowMask::empty(10);
        m.set(3);
        assert!(m.contains(3));
        m.clear(3);
        assert!(!m.contains(3));
    }

    #[test]
    fn from_dense_matches_nonzeros() {
        let m = RowMask::from_dense(&[1.0, 0.0, -2.0, 0.0]);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn any_in_range_detects() {
        let m = RowMask::from_offsets(10, &[5]);
        assert!(m.any_in_range(3, 6));
        assert!(!m.any_in_range(0, 5));
        assert!(!m.any_in_range(6, 10));
        assert!(m.any_in_range(5, 100)); // end clamped
    }

    #[test]
    fn and_intersects() {
        let a = RowMask::from_offsets(8, &[1, 3, 5]);
        let b = RowMask::from_offsets(8, &[3, 5, 7]);
        assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut m = RowMask::empty(4);
        m.set(4);
    }

    #[test]
    fn word_boundary_behaviour() {
        let mut m = RowMask::empty(130);
        m.set(63);
        m.set(64);
        m.set(129);
        assert_eq!(m.count(), 3);
        assert!(m.contains(63) && m.contains(64) && m.contains(129));
        assert!(!m.contains(65));
    }
}
