//! The execution context: one resolved engine plus reusable scratch.
//!
//! [`ExecutionContext`] is the object call sites thread through a training
//! or executor pass instead of re-resolving an engine token at every
//! layer: it owns the resolved `&'static dyn KernelEngine` (picked once,
//! by [`EngineHandle`]) and a [`Workspace`] of reusable scratch buffers for
//! row-at-a-time callers. Construction is name-driven — from a registry
//! handle, a string (`"scalar"`, `"parallel"`, `"simd"`,
//! `"parallel:simd"`, `"im2row"`, `"parallel:im2row"`, `"fixed"`,
//! `"fixed:qI.F"`, `"auto"`, or anything registered), or the
//! `SPARSETRAIN_ENGINE` environment variable — so adding a backend never
//! changes a call-site signature again: the simd and im2row engines each
//! slotted into every selection path without touching one. Per-call
//! operand state travels on the engine seam itself
//! ([`crate::engine::BandContext`], built by the engine's `prepare_*`
//! hooks), not in this context, so a context stays valid across calls of
//! any shape.
//!
//! # Planned execution
//!
//! Selecting the `"auto"` engine attaches a [`Planner`]: the planned
//! entry points ([`ExecutionContext::forward_batch_for`] and friends) then
//! resolve their engine **per (layer, stage) cell** instead of globally.
//! The first execution of an undecided cell races every bitwise-safe
//! candidate engine and freezes the fastest (probe mode); when
//! `SPARSETRAIN_PLAN` names a serialized plan file, that plan replays
//! instead and no probing happens. Every candidate is bitwise-identical
//! to the scalar reference, so planning — probed or replayed — affects
//! speed, never results. Contexts on any other engine treat the planned
//! entry points as plain batched calls on the resolved engine.
//!
//! ```
//! use sparsetrain_sparse::ExecutionContext;
//!
//! let mut ctx = ExecutionContext::by_name("parallel:simd").unwrap();
//! assert_eq!(ctx.engine_name(), "parallel:simd");
//! assert!(ctx.plan().is_none()); // not a planned context
//! ctx.workspace().row(64); // reusable zeroed scratch
//! ```

use crate::engine::{KernelEngine, Workspace};
use crate::mask::RowMask;
use crate::planner::{batch_density, env_plan, Plan, Planner, Stage};
use crate::registry::{env_override, lookup, EngineHandle, UnknownEngine};
use crate::rowconv::SparseFeatureMap;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::{Tensor3, Tensor4};
use std::cell::Cell;
use std::time::Instant;

/// A resolved engine plus the scratch it executes with.
///
/// Cheap to construct; the workspace grows lazily to the largest row it is
/// asked for and is then reused, so one context per trainer/executor keeps
/// every row-level call allocation-free.
///
/// # Quarantine
///
/// A supervisor that catches an engine panicking mid-band can
/// [`quarantine`](ExecutionContext::quarantine) that engine: every
/// subsequent dispatch of it (direct, planned, or probed) silently falls
/// back to the `scalar` reference engine instead. Because every float
/// engine is parity-pinned bitwise to scalar, quarantine degrades speed,
/// never the training trajectory. (`fixed` is outside that parity
/// guarantee — quarantining a fixed-point context changes its numerics,
/// which is why the supervisor only ever quarantines float engines.)
#[derive(Debug)]
pub struct ExecutionContext {
    handle: EngineHandle,
    workspace: Workspace,
    planner: Option<Planner>,
    quarantined: Vec<String>,
    last_dispatch: Cell<Option<&'static str>>,
}

impl ExecutionContext {
    /// Context executing on the engine `handle` resolves to. Selecting the
    /// `"auto"` engine attaches a [`Planner`] — probing by default,
    /// replaying the plan file `SPARSETRAIN_PLAN` names when set.
    ///
    /// # Panics
    ///
    /// Panics when `SPARSETRAIN_PLAN` is set but names a file that cannot
    /// be read or parsed (consistent with the other misconfigured-
    /// environment panics on the selection paths).
    pub fn new(handle: EngineHandle) -> Self {
        let planner = (handle.name() == "auto").then(|| match env_plan().unwrap_or_else(|e| panic!("{e}")) {
            Some(plan) => Planner::replay(plan),
            None => Planner::probing(),
        });
        Self {
            handle,
            workspace: Workspace::new(),
            planner,
            quarantined: Vec::new(),
            last_dispatch: Cell::new(None),
        }
    }

    /// Context on the reference scalar engine.
    pub fn scalar() -> Self {
        Self::new(lookup("scalar").expect("scalar engine is always registered"))
    }

    /// A planned context replaying `plan`: the planned entry points
    /// resolve each (layer, stage) cell through it, with the density
    /// heuristic (not probing) deciding cells the plan misses.
    pub fn with_plan(plan: Plan) -> Self {
        Self {
            handle: lookup("auto").expect("auto engine is always registered"),
            workspace: Workspace::new(),
            planner: Some(Planner::replay(plan)),
            quarantined: Vec::new(),
            last_dispatch: Cell::new(None),
        }
    }

    /// Context on a registered engine, by name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownEngine`] when `name` is not registered.
    pub fn by_name(name: &str) -> Result<Self, UnknownEngine> {
        name.parse().map(Self::new)
    }

    /// Context from the `SPARSETRAIN_ENGINE` environment override, falling
    /// back to the scalar engine when the variable is unset.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownEngine`] when the variable names an unregistered
    /// engine.
    pub fn from_env() -> Result<Self, UnknownEngine> {
        Ok(env_override()?.map_or_else(Self::scalar, Self::new))
    }

    /// The registry handle this context resolved.
    pub fn handle(&self) -> EngineHandle {
        self.handle
    }

    /// The resolved engine (quarantine-mapped; see
    /// [`quarantine`](ExecutionContext::quarantine)).
    pub fn engine(&self) -> &'static dyn KernelEngine {
        self.dispatch(self.handle)
    }

    /// The resolved engine's registered name. This is the *configured*
    /// name — it does not change when the engine is quarantined, so
    /// identity checks (auto-selection reporting, snapshot validation)
    /// keep working; [`last_dispatched_engine`](Self::last_dispatched_engine)
    /// reports what actually ran.
    pub fn engine_name(&self) -> &'static str {
        self.handle.name()
    }

    // -- Quarantine ----------------------------------------------------------

    /// Quarantines `name`: every later dispatch of that engine falls back
    /// to `scalar`. Returns `true` if the engine was newly quarantined,
    /// `false` for duplicates and for `"scalar"` itself (the reference
    /// engine is the fallback and can never be quarantined).
    pub fn quarantine(&mut self, name: &str) -> bool {
        if name == "scalar" || self.is_quarantined(name) {
            return false;
        }
        self.quarantined.push(name.to_string());
        true
    }

    /// Whether `name` is currently quarantined.
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.quarantined.iter().any(|q| q == name)
    }

    /// Names of all quarantined engines, in quarantine order.
    pub fn quarantined(&self) -> &[String] {
        &self.quarantined
    }

    /// The engine name of the most recent dispatch through this context
    /// (after quarantine mapping), if any — a supervisor's hint for which
    /// engine was live when a step panicked.
    pub fn last_dispatched_engine(&self) -> Option<&'static str> {
        self.last_dispatch.get()
    }

    /// Maps `handle` through the quarantine list: a quarantined engine
    /// resolves to `scalar`, anything else resolves to itself.
    fn effective(&self, handle: EngineHandle) -> EngineHandle {
        if self.is_quarantined(handle.name()) {
            lookup("scalar").expect("scalar engine is always registered")
        } else {
            handle
        }
    }

    /// The single choke point every execution goes through: applies the
    /// quarantine mapping, records the dispatched engine, and gives the
    /// fault-injection layer its engine-panic seam.
    fn dispatch(&self, handle: EngineHandle) -> &'static dyn KernelEngine {
        let effective = self.effective(handle);
        self.last_dispatch.set(Some(effective.name()));
        if sparsetrain_faults::on_engine_dispatch(effective.name()) {
            sparsetrain_faults::panic_injected(sparsetrain_faults::Site::EnginePanic, effective.name());
        }
        effective.engine()
    }

    /// The execution plan as decided so far — `Some` only on planned
    /// (`"auto"`) contexts. Probed cells appear here once their first
    /// execution froze a winner.
    pub fn plan(&self) -> Option<&Plan> {
        self.planner.as_ref().map(Planner::plan)
    }

    /// The reusable scratch buffers for row-at-a-time execution.
    pub fn workspace(&mut self) -> &mut Workspace {
        &mut self.workspace
    }

    /// Batched forward step on the resolved engine (see
    /// [`KernelEngine::forward_batch_into`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward_batch(
        &mut self,
        inputs: &[SparseFeatureMap],
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
    ) -> Vec<Tensor3> {
        self.engine().forward_batch(inputs, weights, bias, geom)
    }

    /// Batched GTA step on the resolved engine (see
    /// [`KernelEngine::input_grad_batch_into`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn input_grad_batch(
        &mut self,
        douts: &[SparseFeatureMap],
        weights: &Tensor4,
        geom: ConvGeometry,
        in_h: usize,
        in_w: usize,
        masks: &[Vec<RowMask>],
    ) -> Vec<Tensor3> {
        self.engine()
            .input_grad_batch(douts, weights, geom, in_h, in_w, masks)
    }

    /// Batched GTW step on the resolved engine, accumulating into `dw`
    /// (see [`KernelEngine::weight_grad_batch_into`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn weight_grad_batch(
        &mut self,
        inputs: &[SparseFeatureMap],
        douts: &[SparseFeatureMap],
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        self.engine().weight_grad_batch_into(inputs, douts, geom, dw);
    }

    // -- Planned entry points ------------------------------------------------
    //
    // The per-(layer, stage) seam: callers with a layer identity (Conv2d,
    // the dataflow executor) resolve their engine through the plan. Each
    // method decides its cell once — probing every candidate with a timed
    // full execution, or taking the replayed/heuristic decision — and then
    // replays the frozen choice forever. Probe runs execute candidates
    // into cloned scratch so accumulate-into contracts see exactly one
    // execution's worth of updates, and every candidate is bitwise equal
    // to scalar, so which one's output is kept can never matter.

    /// Resolves the engine for one planned cell, deciding (and freezing)
    /// it if necessary. Returns `None` when the cell is undecided and must
    /// be probed by the caller.
    fn planned_engine(
        &mut self,
        layer: &str,
        stage: Stage,
        density: impl Fn() -> f64,
    ) -> Option<EngineHandle> {
        match &mut self.planner {
            None => Some(self.handle),
            Some(p) => {
                if let Some(h) = p.decided(layer, stage) {
                    Some(h)
                } else if p.probing_enabled() {
                    None
                } else {
                    let h = p.fallback(stage, density());
                    p.record(layer, stage, h);
                    Some(h)
                }
            }
        }
    }

    fn record(&mut self, layer: &str, stage: Stage, handle: EngineHandle) {
        self.planner
            .as_mut()
            .expect("probe implies a planner")
            .record(layer, stage, handle);
    }

    fn probe_candidates(&self) -> Vec<EngineHandle> {
        // Quarantined engines never compete (their wins would be remapped to
        // scalar at dispatch anyway, freezing a lie into the plan). `scalar`
        // is always a candidate and never quarantinable, so the set stays
        // non-empty.
        self.planner
            .as_ref()
            .expect("probe implies a planner")
            .candidates()
            .iter()
            .filter(|h| !self.is_quarantined(h.name()))
            .copied()
            .collect()
    }

    /// Planned batched forward step: like
    /// [`ExecutionContext::forward_batch`], but the engine is resolved per
    /// `(layer, Forward)` cell on planned contexts.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward_batch_for(
        &mut self,
        layer: &str,
        inputs: &[SparseFeatureMap],
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
    ) -> Vec<Tensor3> {
        if let Some(h) = self.planned_engine(layer, Stage::Forward, || batch_density(inputs)) {
            return self.dispatch(h).forward_batch(inputs, weights, bias, geom);
        }
        let mut best: Option<(std::time::Duration, EngineHandle, Vec<Tensor3>)> = None;
        for cand in self.probe_candidates() {
            let start = Instant::now();
            let outs = self.dispatch(cand).forward_batch(inputs, weights, bias, geom);
            let elapsed = start.elapsed();
            if best.as_ref().is_none_or(|(t, _, _)| elapsed < *t) {
                best = Some((elapsed, cand, outs));
            }
        }
        let (_, winner, outs) = best.expect("candidate set is never empty");
        self.record(layer, Stage::Forward, winner);
        outs
    }

    /// Planned batched GTA step, accumulating into the pre-seeded `dins`:
    /// like [`KernelEngine::input_grad_batch_into`] on the resolved
    /// engine, but resolved per `(layer, InputGrad)` cell on planned
    /// contexts.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn input_grad_batch_for_into(
        &mut self,
        layer: &str,
        douts: &[SparseFeatureMap],
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[Vec<RowMask>],
        dins: &mut [Tensor3],
    ) {
        if let Some(h) = self.planned_engine(layer, Stage::InputGrad, || batch_density(douts)) {
            self.dispatch(h)
                .input_grad_batch_into(douts, weights, geom, masks, dins);
            return;
        }
        let mut best: Option<(std::time::Duration, EngineHandle, Vec<Tensor3>)> = None;
        for cand in self.probe_candidates() {
            let mut scratch: Vec<Tensor3> = dins.to_vec();
            let start = Instant::now();
            self.dispatch(cand)
                .input_grad_batch_into(douts, weights, geom, masks, &mut scratch);
            let elapsed = start.elapsed();
            if best.as_ref().is_none_or(|(t, _, _)| elapsed < *t) {
                best = Some((elapsed, cand, scratch));
            }
        }
        let (_, winner, scratch) = best.expect("candidate set is never empty");
        self.record(layer, Stage::InputGrad, winner);
        for (din, s) in dins.iter_mut().zip(scratch) {
            *din = s;
        }
    }

    /// Planned batched GTW step, accumulating into `dw`: like
    /// [`ExecutionContext::weight_grad_batch`], but resolved per
    /// `(layer, WeightGrad)` cell on planned contexts. Probe runs
    /// accumulate each candidate into a clone of `dw`, so `dw` receives
    /// exactly one execution's gradients.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn weight_grad_batch_for(
        &mut self,
        layer: &str,
        inputs: &[SparseFeatureMap],
        douts: &[SparseFeatureMap],
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        if let Some(h) = self.planned_engine(layer, Stage::WeightGrad, || batch_density(douts)) {
            self.dispatch(h).weight_grad_batch_into(inputs, douts, geom, dw);
            return;
        }
        let mut best: Option<(std::time::Duration, EngineHandle, Tensor4)> = None;
        for cand in self.probe_candidates() {
            let mut scratch = dw.clone();
            let start = Instant::now();
            self.dispatch(cand)
                .weight_grad_batch_into(inputs, douts, geom, &mut scratch);
            let elapsed = start.elapsed();
            if best.as_ref().is_none_or(|(t, _, _)| elapsed < *t) {
                best = Some((elapsed, cand, scratch));
            }
        }
        let (_, winner, scratch) = best.expect("candidate set is never empty");
        self.record(layer, Stage::WeightGrad, winner);
        *dw = scratch;
    }
}

impl Default for ExecutionContext {
    fn default() -> Self {
        Self::scalar()
    }
}

impl From<EngineHandle> for ExecutionContext {
    fn from(handle: EngineHandle) -> Self {
        Self::new(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_scalar() {
        let ctx = ExecutionContext::default();
        assert_eq!(ctx.engine_name(), "scalar");
        assert_eq!(ctx.handle().name(), "scalar");
        assert!(ctx.plan().is_none());
    }

    #[test]
    fn by_name_resolves_every_builtin() {
        for name in ["scalar", "parallel", "fixed"] {
            let ctx = ExecutionContext::by_name(name).unwrap();
            assert_eq!(ctx.engine_name(), name);
            assert!(ctx.plan().is_none(), "{name} must not attach a planner");
        }
        assert_eq!(ExecutionContext::by_name("auto").unwrap().engine_name(), "auto");
        assert!(ExecutionContext::by_name("nope").is_err());
    }

    fn batch_fixture() -> (Vec<SparseFeatureMap>, Tensor4, ConvGeometry) {
        let geom = ConvGeometry::new(3, 1, 1);
        let inputs: Vec<SparseFeatureMap> = (0..3)
            .map(|s| {
                SparseFeatureMap::from_tensor(&Tensor3::from_fn(2, 5, 5, |c, y, x| {
                    if (s + c + y + x) % 2 == 0 {
                        (y + x) as f32 * 0.25 - s as f32 * 0.125
                    } else {
                        0.0
                    }
                }))
            })
            .collect();
        let weights = Tensor4::from_fn(2, 2, 3, 3, |f, c, u, v| ((f + c + u + v) % 3) as f32 * 0.5 - 0.5);
        (inputs, weights, geom)
    }

    #[test]
    fn batch_helpers_execute_on_the_resolved_engine() {
        let mut ctx = ExecutionContext::by_name("parallel").unwrap();
        let (inputs, weights, geom) = batch_fixture();
        let outs = ctx.forward_batch(&inputs, &weights, None, geom);
        assert_eq!(outs.len(), 3);
        for (input, out) in inputs.iter().zip(&outs) {
            let want = crate::engine::ScalarEngine.forward(input, &weights, None, geom);
            assert_eq!(out.as_slice(), want.as_slice());
        }
        let mut dw = Tensor4::zeros(2, 2, 3, 3);
        ctx.weight_grad_batch(&inputs, &inputs, geom, &mut dw);
        assert!(dw.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn planned_entry_points_are_plain_calls_on_unplanned_contexts() {
        let mut ctx = ExecutionContext::by_name("simd").unwrap();
        let (inputs, weights, geom) = batch_fixture();
        let planned = ctx.forward_batch_for("conv1", &inputs, &weights, None, geom);
        let plain = ctx.forward_batch(&inputs, &weights, None, geom);
        for (a, b) in planned.iter().zip(&plain) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        assert!(ctx.plan().is_none(), "no plan state accrues without a planner");
    }

    #[test]
    fn probing_context_freezes_each_cell_and_stays_bitwise_scalar() {
        let mut auto = ExecutionContext::by_name("auto").unwrap();
        let mut scalar = ExecutionContext::scalar();
        let (inputs, weights, geom) = batch_fixture();
        assert_eq!(auto.plan().map(Plan::len), Some(0));

        // Forward: the probe decides the cell and returns scalar's bits.
        let probed = auto.forward_batch_for("c1", &inputs, &weights, None, geom);
        let reference = scalar.forward_batch_for("c1", &inputs, &weights, None, geom);
        for (a, b) in probed.iter().zip(&reference) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        let frozen = auto
            .plan()
            .unwrap()
            .get("c1", Stage::Forward)
            .expect("cell frozen");
        // The replayed second call takes the frozen engine and agrees.
        let replayed = auto.forward_batch_for("c1", &inputs, &weights, None, geom);
        for (a, b) in replayed.iter().zip(&reference) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        assert_eq!(auto.plan().unwrap().get("c1", Stage::Forward), Some(frozen));

        // GTW: probing must accumulate exactly one execution into dw.
        let mut dw_auto = Tensor4::zeros(2, 2, 3, 3);
        let mut dw_scalar = Tensor4::zeros(2, 2, 3, 3);
        auto.weight_grad_batch_for("c1", &inputs, &inputs, geom, &mut dw_auto);
        scalar.weight_grad_batch_for("c1", &inputs, &inputs, geom, &mut dw_scalar);
        assert_eq!(dw_auto.as_slice(), dw_scalar.as_slice());
        assert!(auto.plan().unwrap().get("c1", Stage::WeightGrad).is_some());

        // GTA likewise, through the into-style planned path.
        let masks: Vec<Vec<RowMask>> = inputs.iter().map(SparseFeatureMap::masks).collect();
        let mut dins_auto: Vec<Tensor3> = inputs.iter().map(|_| Tensor3::zeros(2, 5, 5)).collect();
        let mut dins_scalar = dins_auto.clone();
        auto.input_grad_batch_for_into("c1", &inputs, &weights, geom, &masks, &mut dins_auto);
        scalar.input_grad_batch_for_into("c1", &inputs, &weights, geom, &masks, &mut dins_scalar);
        for (a, b) in dins_auto.iter().zip(&dins_scalar) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        assert_eq!(auto.plan().map(Plan::len), Some(3), "all three cells frozen");
    }

    #[test]
    fn quarantine_falls_back_to_scalar_bitwise() {
        let mut ctx = ExecutionContext::by_name("parallel:simd").unwrap();
        let (inputs, weights, geom) = batch_fixture();
        let before = ctx.forward_batch(&inputs, &weights, None, geom);
        assert_eq!(ctx.last_dispatched_engine(), Some("parallel:simd"));

        assert!(ctx.quarantine("parallel:simd"));
        assert!(!ctx.quarantine("parallel:simd"), "duplicates are refused");
        assert!(!ctx.quarantine("scalar"), "the fallback engine is untouchable");
        assert_eq!(ctx.quarantined(), ["parallel:simd".to_string()]);

        let after = ctx.forward_batch(&inputs, &weights, None, geom);
        assert_eq!(ctx.last_dispatched_engine(), Some("scalar"));
        assert_eq!(ctx.engine_name(), "parallel:simd", "configured name survives");
        for (a, b) in after.iter().zip(&before) {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "parity pin makes fallback bitwise-safe"
            );
        }
    }

    #[test]
    fn quarantined_engines_never_win_probes() {
        let mut auto = ExecutionContext::by_name("auto").unwrap();
        for name in crate::planner::CANDIDATE_NAMES {
            if name != "scalar" {
                assert!(auto.quarantine(name));
            }
        }
        let (inputs, weights, geom) = batch_fixture();
        let outs = auto.forward_batch_for("c1", &inputs, &weights, None, geom);
        let decided = auto
            .plan()
            .unwrap()
            .get("c1", Stage::Forward)
            .expect("cell frozen");
        assert_eq!(decided.name(), "scalar", "only unquarantined candidate left");
        let reference = crate::engine::ScalarEngine.forward_batch(&inputs, &weights, None, geom);
        for (a, b) in outs.iter().zip(&reference) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn replayed_plan_cells_respect_quarantine_at_dispatch() {
        let mut plan = Plan::new(lookup("scalar").unwrap());
        plan.set("c1", Stage::Forward, lookup("simd").unwrap());
        let mut ctx = ExecutionContext::with_plan(plan);
        ctx.quarantine("simd");
        let (inputs, weights, geom) = batch_fixture();
        let outs = ctx.forward_batch_for("c1", &inputs, &weights, None, geom);
        assert_eq!(
            ctx.last_dispatched_engine(),
            Some("scalar"),
            "pinned cell remapped"
        );
        let reference = crate::engine::ScalarEngine.forward_batch(&inputs, &weights, None, geom);
        for (a, b) in outs.iter().zip(&reference) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn replayed_plan_is_honoured_and_heuristic_fills_gaps() {
        let mut plan = Plan::new(lookup("scalar").unwrap());
        plan.set("c1", Stage::Forward, lookup("simd").unwrap());
        let mut ctx = ExecutionContext::with_plan(plan);
        assert_eq!(ctx.engine_name(), "auto");
        let (inputs, weights, geom) = batch_fixture();
        let outs = ctx.forward_batch_for("c1", &inputs, &weights, None, geom);
        let reference = crate::engine::ScalarEngine.forward_batch(&inputs, &weights, None, geom);
        for (a, b) in outs.iter().zip(&reference) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        // The pinned cell stays pinned; an unplanned cell is decided by
        // the heuristic (never probed) and then frozen.
        assert_eq!(
            ctx.plan().unwrap().get("c1", Stage::Forward).unwrap().name(),
            "simd"
        );
        let mut dw = Tensor4::zeros(2, 2, 3, 3);
        ctx.weight_grad_batch_for("c1", &inputs, &inputs, geom, &mut dw);
        let decided = ctx
            .plan()
            .unwrap()
            .get("c1", Stage::WeightGrad)
            .expect("heuristic froze the cell");
        assert!(
            crate::planner::CANDIDATE_NAMES.contains(&decided.name()),
            "heuristic must pick a bitwise-safe candidate, got {}",
            decided.name()
        );
    }
}
