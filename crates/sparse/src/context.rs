//! The execution context: one resolved engine plus reusable scratch.
//!
//! [`ExecutionContext`] is the object call sites thread through a training
//! or executor pass instead of re-resolving an engine token at every
//! layer: it owns the resolved `&'static dyn KernelEngine` (picked once,
//! by [`EngineHandle`]) and a [`Workspace`] of reusable scratch buffers for
//! row-at-a-time callers. Construction is name-driven — from a registry
//! handle, a string (`"scalar"`, `"parallel"`, `"simd"`,
//! `"parallel:simd"`, `"im2row"`, `"parallel:im2row"`, `"fixed"`,
//! `"fixed:qI.F"`, or anything registered), or the `SPARSETRAIN_ENGINE`
//! environment variable — so adding a backend never changes a call-site
//! signature again: the simd and im2row engines each slotted into every
//! selection path without touching one. Per-call operand state travels on
//! the engine seam itself ([`crate::engine::BandContext`], built by the
//! engine's `prepare_*` hooks), not in this context, so a context stays
//! valid across calls of any shape.
//!
//! ```
//! use sparsetrain_sparse::ExecutionContext;
//!
//! let mut ctx = ExecutionContext::by_name("parallel:simd").unwrap();
//! assert_eq!(ctx.engine_name(), "parallel:simd");
//! ctx.workspace().row(64); // reusable zeroed scratch
//! ```

use crate::engine::{KernelEngine, Workspace};
use crate::mask::RowMask;
use crate::registry::{env_override, lookup, EngineHandle, UnknownEngine};
use crate::rowconv::SparseFeatureMap;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::{Tensor3, Tensor4};

/// A resolved engine plus the scratch it executes with.
///
/// Cheap to construct; the workspace grows lazily to the largest row it is
/// asked for and is then reused, so one context per trainer/executor keeps
/// every row-level call allocation-free.
#[derive(Debug)]
pub struct ExecutionContext {
    handle: EngineHandle,
    workspace: Workspace,
}

impl ExecutionContext {
    /// Context executing on the engine `handle` resolves to.
    pub fn new(handle: EngineHandle) -> Self {
        Self {
            handle,
            workspace: Workspace::new(),
        }
    }

    /// Context on the reference scalar engine.
    pub fn scalar() -> Self {
        Self::new(lookup("scalar").expect("scalar engine is always registered"))
    }

    /// Context on a registered engine, by name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownEngine`] when `name` is not registered.
    pub fn by_name(name: &str) -> Result<Self, UnknownEngine> {
        name.parse().map(Self::new)
    }

    /// Context from the `SPARSETRAIN_ENGINE` environment override, falling
    /// back to the scalar engine when the variable is unset.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownEngine`] when the variable names an unregistered
    /// engine.
    pub fn from_env() -> Result<Self, UnknownEngine> {
        Ok(env_override()?.map_or_else(Self::scalar, Self::new))
    }

    /// The registry handle this context resolved.
    pub fn handle(&self) -> EngineHandle {
        self.handle
    }

    /// The resolved engine.
    pub fn engine(&self) -> &'static dyn KernelEngine {
        self.handle.engine()
    }

    /// The resolved engine's registered name.
    pub fn engine_name(&self) -> &'static str {
        self.handle.name()
    }

    /// The reusable scratch buffers for row-at-a-time execution.
    pub fn workspace(&mut self) -> &mut Workspace {
        &mut self.workspace
    }

    /// Batched forward step on the resolved engine (see
    /// [`KernelEngine::forward_batch_into`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward_batch(
        &mut self,
        inputs: &[SparseFeatureMap],
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
    ) -> Vec<Tensor3> {
        self.engine().forward_batch(inputs, weights, bias, geom)
    }

    /// Batched GTA step on the resolved engine (see
    /// [`KernelEngine::input_grad_batch_into`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn input_grad_batch(
        &mut self,
        douts: &[SparseFeatureMap],
        weights: &Tensor4,
        geom: ConvGeometry,
        in_h: usize,
        in_w: usize,
        masks: &[Vec<RowMask>],
    ) -> Vec<Tensor3> {
        self.engine()
            .input_grad_batch(douts, weights, geom, in_h, in_w, masks)
    }

    /// Batched GTW step on the resolved engine, accumulating into `dw`
    /// (see [`KernelEngine::weight_grad_batch_into`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn weight_grad_batch(
        &mut self,
        inputs: &[SparseFeatureMap],
        douts: &[SparseFeatureMap],
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        self.engine().weight_grad_batch_into(inputs, douts, geom, dw);
    }
}

impl Default for ExecutionContext {
    fn default() -> Self {
        Self::scalar()
    }
}

impl From<EngineHandle> for ExecutionContext {
    fn from(handle: EngineHandle) -> Self {
        Self::new(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_scalar() {
        let ctx = ExecutionContext::default();
        assert_eq!(ctx.engine_name(), "scalar");
        assert_eq!(ctx.handle().name(), "scalar");
    }

    #[test]
    fn by_name_resolves_every_builtin() {
        for name in ["scalar", "parallel", "fixed"] {
            assert_eq!(ExecutionContext::by_name(name).unwrap().engine_name(), name);
        }
        assert!(ExecutionContext::by_name("nope").is_err());
    }

    #[test]
    fn batch_helpers_execute_on_the_resolved_engine() {
        let mut ctx = ExecutionContext::by_name("parallel").unwrap();
        let geom = ConvGeometry::new(3, 1, 1);
        let inputs: Vec<SparseFeatureMap> = (0..3)
            .map(|s| {
                SparseFeatureMap::from_tensor(&Tensor3::from_fn(2, 5, 5, |c, y, x| {
                    if (s + c + y + x) % 2 == 0 {
                        (y + x) as f32 * 0.25 - s as f32 * 0.125
                    } else {
                        0.0
                    }
                }))
            })
            .collect();
        let weights = Tensor4::from_fn(2, 2, 3, 3, |f, c, u, v| ((f + c + u + v) % 3) as f32 * 0.5 - 0.5);
        let outs = ctx.forward_batch(&inputs, &weights, None, geom);
        assert_eq!(outs.len(), 3);
        for (input, out) in inputs.iter().zip(&outs) {
            let want = crate::engine::ScalarEngine.forward(input, &weights, None, geom);
            assert_eq!(out.as_slice(), want.as_slice());
        }
        let mut dw = Tensor4::zeros(2, 2, 3, 3);
        ctx.weight_grad_batch(&inputs, &inputs, geom, &mut dw);
        assert!(dw.as_slice().iter().any(|&v| v != 0.0));
    }
}
