//! Offset–value compressed sparse vectors.
//!
//! This is the storage format the PPU writes back to the global buffer
//! (§V: "resulting vector will be converted into a compressed format") and
//! the format PE Port-1 consumes: a list of `(offset, value)` pairs with
//! strictly increasing offsets.

use std::fmt;

/// A sparse 1-D vector of logical length `len`, stored as sorted
/// `(offset, value)` pairs.
///
/// Invariants (checked by constructors and [`SparseVec::validate`]):
/// offsets strictly increase, every offset is `< len`, and stored values
/// are non-zero.
///
/// ```
/// use sparsetrain_sparse::SparseVec;
/// let v = SparseVec::from_dense(&[0.0, 3.0, 0.0, -1.0]);
/// assert_eq!(v.nnz(), 2);
/// assert_eq!(v.to_dense(), vec![0.0, 3.0, 0.0, -1.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec {
    len: usize,
    offsets: Vec<u32>,
    values: Vec<f32>,
}

impl SparseVec {
    /// Creates an empty (all-zero) sparse vector of logical length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            offsets: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Compresses a dense slice, dropping exact zeros.
    pub fn from_dense(dense: &[f32]) -> Self {
        let mut offsets = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                offsets.push(i as u32);
                values.push(v);
            }
        }
        Self {
            len: dense.len(),
            offsets,
            values,
        }
    }

    /// Builds a sparse vector from pre-sorted parts.
    ///
    /// # Panics
    ///
    /// Panics if the invariants do not hold (mismatched part lengths,
    /// unsorted or out-of-range offsets, stored zeros).
    pub fn from_parts(len: usize, offsets: Vec<u32>, values: Vec<f32>) -> Self {
        let v = Self { len, offsets, values };
        v.validate().expect("invalid SparseVec parts");
        v
    }

    /// Checks the representation invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.values.len() {
            return Err(format!(
                "offsets ({}) and values ({}) length mismatch",
                self.offsets.len(),
                self.values.len()
            ));
        }
        let mut prev: Option<u32> = None;
        for &o in &self.offsets {
            if o as usize >= self.len {
                return Err(format!("offset {o} out of range for len {}", self.len));
            }
            if let Some(p) = prev {
                if o <= p {
                    return Err(format!("offsets not strictly increasing at {o}"));
                }
            }
            prev = Some(o);
        }
        if self.values.contains(&0.0) {
            return Err("stored value is zero".to_string());
        }
        Ok(())
    }

    /// Logical length of the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of non-zero elements (1.0 for a zero-length vector).
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.nnz() as f64 / self.len as f64
        }
    }

    /// The sorted offsets of the non-zero elements.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The non-zero values, parallel to [`SparseVec::offsets`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterates over `(offset, value)` pairs in increasing offset order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        self.offsets
            .iter()
            .zip(&self.values)
            .map(|(&o, &v)| (o as usize, v))
    }

    /// Value at `index` (zero when not stored).
    ///
    /// `O(log nnz)` binary search.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> f32 {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        match self.offsets.binary_search(&(index as u32)) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Expands back to a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut dense = vec![0.0; self.len];
        for (o, v) in self.iter() {
            dense[o] = v;
        }
        dense
    }

    /// Appends a non-zero element with an offset beyond the current last.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range, not greater than the last stored
    /// offset, or `value` is zero.
    pub fn push(&mut self, offset: usize, value: f32) {
        assert!(offset < self.len, "offset {offset} out of range {}", self.len);
        assert!(value != 0.0, "cannot store an explicit zero");
        if let Some(&last) = self.offsets.last() {
            assert!(offset as u32 > last, "offsets must strictly increase");
        }
        self.offsets.push(offset as u32);
        self.values.push(value);
    }

    /// Index of the first stored offset `>= index`, for cursor-based scans.
    pub fn lower_bound(&self, index: usize) -> usize {
        self.offsets.partition_point(|&o| (o as usize) < index)
    }

    /// Number of 16-bit words this vector occupies in the compressed
    /// on-chip format (one word per value plus one offset word per value).
    pub fn storage_words(&self) -> usize {
        2 * self.nnz()
    }
}

impl fmt::Display for SparseVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseVec(len={}, nnz={})", self.len, self.nnz())
    }
}

impl FromIterator<f32> for SparseVec {
    fn from_iter<T: IntoIterator<Item = f32>>(iter: T) -> Self {
        let dense: Vec<f32> = iter.into_iter().collect();
        Self::from_dense(&dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_dense() {
        let dense = vec![0.0, 1.5, 0.0, 0.0, -2.5, 3.0];
        let s = SparseVec::from_dense(&dense);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.to_dense(), dense);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn get_is_sparse_aware() {
        let s = SparseVec::from_dense(&[0.0, 7.0, 0.0]);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.get(1), 7.0);
        assert_eq!(s.get(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let s = SparseVec::zeros(3);
        let _ = s.get(3);
    }

    #[test]
    fn push_maintains_order() {
        let mut s = SparseVec::zeros(10);
        s.push(2, 1.0);
        s.push(7, -1.0);
        assert_eq!(s.to_dense()[2], 1.0);
        assert_eq!(s.to_dense()[7], -1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn push_out_of_order_panics() {
        let mut s = SparseVec::zeros(10);
        s.push(5, 1.0);
        s.push(5, 2.0);
    }

    #[test]
    fn density_and_storage() {
        let s = SparseVec::from_dense(&[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(s.density(), 0.25);
        assert_eq!(s.storage_words(), 2);
    }

    #[test]
    fn lower_bound_cursor() {
        let s = SparseVec::from_dense(&[0.0, 1.0, 0.0, 2.0, 0.0, 3.0]);
        assert_eq!(s.lower_bound(0), 0);
        assert_eq!(s.lower_bound(2), 1);
        assert_eq!(s.lower_bound(4), 2);
        assert_eq!(s.lower_bound(6), 3);
    }

    #[test]
    fn from_parts_validates() {
        let ok = SparseVec::from_parts(4, vec![1, 3], vec![1.0, 2.0]);
        assert_eq!(ok.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid SparseVec parts")]
    fn from_parts_rejects_unsorted() {
        let _ = SparseVec::from_parts(4, vec![3, 1], vec![1.0, 2.0]);
    }

    #[test]
    fn from_iterator_collects() {
        let s: SparseVec = vec![0.0, 2.0, 0.0].into_iter().collect();
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.len(), 3);
    }
}
