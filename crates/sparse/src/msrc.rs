//! MSRC — Masked Sparse Row Convolution, the GTA-step primitive (Fig. 6b).
//!
//! Like SRC, but the output is an input-gradient row whose zero pattern is
//! already known: positions where the Forward-step ReLU produced zero will
//! have their gradient forced to zero anyway, so their computation can be
//! skipped entirely (§IV-A). The mask of allowed positions is the non-zero
//! offset list of the forward input activations.

use crate::compressed::SparseVec;
use crate::mask::RowMask;
use sparsetrain_tensor::conv::ConvGeometry;

/// Accumulates one MSRC operation into a dense gradient row, honouring the
/// mask.
///
/// The GTA step scatters: every non-zero output gradient `grad[ox]`
/// contributes `grad[ox] · kernel_row[v]` to input-gradient position
/// `ix = ox · stride − pad + v`. Positions not present in `mask` are
/// skipped (never written).
///
/// `kernel_row` must already be the *rotated* kernel row `W⁺` if the caller
/// is implementing the paper's `dI_j = Σ_i dO_i ∗ W⁺_{i,j}` formulation;
/// this primitive is agnostic and just performs the scatter.
///
/// # Panics
///
/// Panics if `kernel_row.len() != geom.kernel` or `mask.len() != out.len()`.
pub fn msrc_accumulate(
    grad: &SparseVec,
    kernel_row: &[f32],
    geom: ConvGeometry,
    mask: &RowMask,
    out: &mut [f32],
) {
    assert_eq!(kernel_row.len(), geom.kernel, "kernel row length mismatch");
    assert_eq!(mask.len(), out.len(), "mask length must match output row");
    let stride = geom.stride as isize;
    let pad = geom.pad as isize;
    let out_len = out.len() as isize;
    for (ox, g) in grad.iter() {
        let base = ox as isize * stride - pad;
        for (v, &w) in kernel_row.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let ix = base + v as isize;
            if ix < 0 || ix >= out_len {
                continue;
            }
            let ix = ix as usize;
            if !mask.contains(ix) {
                continue; // the downstream ReLU mask zeroes this position
            }
            out[ix] += g * w;
        }
    }
}

/// Performs one MSRC operation into a fresh dense row of length `out_len`.
///
/// ```
/// use sparsetrain_sparse::{SparseVec, RowMask, msrc::msrc_conv};
/// use sparsetrain_tensor::conv::ConvGeometry;
///
/// let grad = SparseVec::from_dense(&[1.0, 0.0, 1.0]);
/// let mask = RowMask::from_offsets(3, &[0, 2]); // position 1 is masked out
/// let out = msrc_conv(&grad, &[1.0], ConvGeometry::new(1, 1, 0), &mask, 3);
/// assert_eq!(out, vec![1.0, 0.0, 1.0]);
/// ```
pub fn msrc_conv(
    grad: &SparseVec,
    kernel_row: &[f32],
    geom: ConvGeometry,
    mask: &RowMask,
    out_len: usize,
) -> Vec<f32> {
    let mut out = vec![0.0; out_len];
    msrc_accumulate(grad, kernel_row, geom, mask, &mut out);
    out
}

/// Counts the gradient non-zeros whose entire scatter window falls outside
/// the mask — the loads the PE skips via look-ahead (§V, Port-3 offsets).
pub fn fully_masked_loads(grad: &SparseVec, geom: ConvGeometry, mask: &RowMask) -> usize {
    let stride = geom.stride as isize;
    let pad = geom.pad as isize;
    grad.iter()
        .filter(|&(ox, _)| {
            let base = ox as isize * stride - pad;
            let start = base.max(0) as usize;
            let end = (base + geom.kernel as isize).max(0) as usize;
            !mask.any_in_range(start, end)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmasked_equals_src_scatter() {
        // With a full mask MSRC is a plain scatter conv; cross-check against
        // a hand-computed example.
        let grad = SparseVec::from_dense(&[0.0, 2.0, 0.0, 1.0]);
        let kernel = [1.0, 10.0, 100.0];
        let geom = ConvGeometry::new(3, 1, 1);
        let mask = RowMask::full(4);
        let out = msrc_conv(&grad, &kernel, geom, &mask, 4);
        // grad[1]=2 scatters to ix 0,1,2 with weights 1,10,100
        // grad[3]=1 scatters to ix 2,3 (ix 4 out of range)
        assert_eq!(out, vec![2.0, 20.0, 201.0, 10.0]);
    }

    #[test]
    fn mask_zeroes_disallowed_positions() {
        let grad = SparseVec::from_dense(&[0.0, 2.0, 0.0, 1.0]);
        let kernel = [1.0, 10.0, 100.0];
        let geom = ConvGeometry::new(3, 1, 1);
        let mask = RowMask::from_offsets(4, &[0, 3]);
        let out = msrc_conv(&grad, &kernel, geom, &mask, 4);
        assert_eq!(out, vec![2.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn fully_masked_loads_counted() {
        let grad = SparseVec::from_dense(&[1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let geom = ConvGeometry::new(3, 1, 1);
        // grad[0] scatters to {0,1}; grad[4] scatters to {3,4,5}.
        let mask = RowMask::from_offsets(6, &[3]);
        assert_eq!(fully_masked_loads(&grad, geom, &mask), 1); // grad[0] skipped
        let mask_none = RowMask::empty(6);
        assert_eq!(fully_masked_loads(&grad, geom, &mask_none), 2);
    }

    #[test]
    fn empty_grad_is_noop() {
        let grad = SparseVec::zeros(8);
        let geom = ConvGeometry::new(3, 1, 1);
        let mask = RowMask::full(8);
        let out = msrc_conv(&grad, &[1.0, 1.0, 1.0], geom, &mask, 8);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stride_two_scatter_positions() {
        let grad = SparseVec::from_dense(&[1.0, 1.0]);
        let kernel = [1.0, 2.0, 3.0];
        let geom = ConvGeometry::new(3, 2, 1);
        let mask = RowMask::full(4);
        // ox=0: base=-1, taps land at ix 0(v=1,w=2),1(v=2,w=3)
        // ox=1: base=1, taps land at ix 1(v=0,w=1),2(v=1,w=2),3(v=2,w=3)
        let out = msrc_conv(&grad, &kernel, geom, &mask, 4);
        assert_eq!(out, vec![2.0, 4.0, 2.0, 3.0]);
    }
}
