//! Compiled binary execution plans: the `STPLAN` container and its VM.
//!
//! The planner's [`Plan`] (one engine per `(layer, stage)` cell) froze as a
//! line-oriented text file until now. This module gives it a compact,
//! versioned **binary program** — the artifact an ahead-of-time compiler
//! ships to a fresh process, the sharded workers, or the checkpoint file —
//! plus a small VM that replays it against the engine registry:
//!
//! * [`ExecutionProgram`] — the container: a header (magic `STPLAN`,
//!   version), a string table interning layer and engine names, the
//!   stage-ordered cell table (layer id, stage, engine id), optional
//!   per-cell workspace-size hints, and optional per-layer prune points
//!   (the pruned gradient population the plan was compiled against).
//!   `sparsetrain_core::dataflow::compile_plan` lowers a [`Plan`] plus a
//!   compiled instruction `Program` into one.
//! * [`ExecutionProgram::encode`] / [`ExecutionProgram::decode`] — the
//!   derive-free section codec, in the same length-prefixed shape as the
//!   checkpoint `.stck` container and the kernel ISA in
//!   `sparsetrain-core`: corruption returns a typed [`DecodeError`] naming
//!   the offending section and field, never a panic.
//! * [`Plan::to_program`] / [`Plan::from_program`] — the lossless bridge:
//!   every cell and the default engine fold into the program and come back
//!   out identical.
//! * [`PlanVm`] — executes a program through the planned entry points of
//!   [`ExecutionContext`] (`forward_batch_for` and friends). Every planned
//!   engine is bitwise-identical to the scalar reference, so a VM replay
//!   is bitwise-identical to the probing run that produced the program.
//!   The VM pre-sizes its workspace from the program's hints and tracks
//!   which program cells have executed ([`PlanVm::pending_cells`]).
//!
//! `SPARSETRAIN_PLAN` accepts both formats: [`crate::planner::load_plan`]
//! sniffs the magic and routes binary files here.

use crate::context::ExecutionContext;
use crate::mask::RowMask;
use crate::planner::{Plan, PlanError, Stage};
use crate::registry::lookup_or_parse;
use crate::rowconv::SparseFeatureMap;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::{Tensor3, Tensor4};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// File magic: "STPLAN" + format epoch byte + NUL.
pub const MAGIC: [u8; 8] = *b"STPLAN\x01\x00";
/// Current execution-program format version.
pub const VERSION: u16 = 1;

const TAG_STRINGS: u16 = 1;
const TAG_CELLS: u16 = 2;
const TAG_WORKSPACE: u16 = 3;
const TAG_PRUNE: u16 = 4;

/// Whether `bytes` look like an `STPLAN` binary program (vs the legacy
/// text plan format). Only the six ASCII magic bytes are sniffed, so a
/// future format epoch still routes to the binary decoder (and fails there
/// with a typed error instead of a text parse error).
pub fn is_binary_plan(bytes: &[u8]) -> bool {
    bytes.len() >= 6 && bytes[..6] == MAGIC[..6]
}

/// The named sections of the program container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// The interned layer/engine name table (mandatory).
    Strings,
    /// Default engine + the `(layer, stage, engine)` cell table (mandatory).
    Cells,
    /// Per-cell workspace-size hints (optional).
    Workspace,
    /// Per-layer prune points (optional).
    Prune,
}

impl Section {
    fn from_tag(tag: u16) -> Option<Self> {
        match tag {
            TAG_STRINGS => Some(Section::Strings),
            TAG_CELLS => Some(Section::Cells),
            TAG_WORKSPACE => Some(Section::Workspace),
            TAG_PRUNE => Some(Section::Prune),
            _ => None,
        }
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Section::Strings => "strings",
            Section::Cells => "cells",
            Section::Workspace => "workspace",
            Section::Prune => "prune",
        };
        f.write_str(name)
    }
}

/// Errors raised while encoding a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A count or length exceeded the width reserved for it on the wire.
    FieldOverflow {
        section: Section,
        field: &'static str,
        value: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::FieldOverflow {
                section,
                field,
                value,
            } => write!(
                f,
                "section {section}: field {field} value {value} exceeds wire width"
            ),
        }
    }
}

impl Error for EncodeError {}

/// Errors raised while decoding a program. Every variant names the region
/// at fault; corrupt inputs must never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the fixed header.
    TruncatedHeader,
    /// Header magic does not match [`MAGIC`].
    BadMagic,
    /// Header version is not [`VERSION`].
    UnsupportedVersion(u16),
    /// A section body ended before its declared content did.
    TruncatedSection { section: Section },
    /// A section header declared a tag this version does not know.
    UnknownSection { tag: u16 },
    /// The same section appeared twice.
    DuplicateSection { section: Section },
    /// A mandatory section was absent.
    MissingSection { section: Section },
    /// Bytes remained after the last declared section.
    TrailingBytes { extra: usize },
    /// A field inside a section held an invalid value.
    InvalidField { section: Section, field: &'static str },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedHeader => write!(f, "program shorter than its header"),
            DecodeError::BadMagic => write!(f, "bad program magic (not an STPLAN execution program)"),
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported program version {v} (this build reads {VERSION})")
            }
            DecodeError::TruncatedSection { section } => write!(f, "section {section} is truncated"),
            DecodeError::UnknownSection { tag } => write!(f, "unknown section tag {tag}"),
            DecodeError::DuplicateSection { section } => {
                write!(f, "section {section} appears more than once")
            }
            DecodeError::MissingSection { section } => {
                write!(f, "mandatory section {section} is missing")
            }
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the last section")
            }
            DecodeError::InvalidField { section, field } => {
                write!(f, "section {section}: invalid value for field {field}")
            }
        }
    }
}

impl Error for DecodeError {}

/// Stable on-wire stage codes (`0`/`1`/`2` in [`Stage::ALL`] order).
fn stage_code(stage: Stage) -> u8 {
    match stage {
        Stage::Forward => 0,
        Stage::InputGrad => 1,
        Stage::WeightGrad => 2,
    }
}

fn stage_from_code(code: u8) -> Option<Stage> {
    match code {
        0 => Some(Stage::Forward),
        1 => Some(Stage::InputGrad),
        2 => Some(Stage::WeightGrad),
        _ => None,
    }
}

/// One decided cell: `(layer, stage) → engine`, with names interned in the
/// program's string table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramCell {
    /// String-table id of the layer name.
    pub layer: u32,
    /// The training stage the cell decides.
    pub stage: Stage,
    /// String-table id of the engine name.
    pub engine: u32,
}

/// A workspace-size hint: the largest single-instruction operand
/// population (values streamed through one row op) observed for a cell
/// when the program was compiled. Advisory — the VM pre-sizes scratch from
/// it, capped at [`PlanVm::MAX_PREWARM_ELEMENTS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkspaceHint {
    /// String-table id of the layer name.
    pub layer: u32,
    /// The stage the hint applies to.
    pub stage: Stage,
    /// Largest per-instruction operand population for the cell.
    pub elements: u64,
}

/// A prune point: the total pruned output-gradient population of one layer
/// at plan-compile time — the density regime the plan's backward-stage
/// decisions were made for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrunePoint {
    /// String-table id of the layer name.
    pub layer: u32,
    /// Non-zeros of the layer's (pruned) output-gradient stream.
    pub grad_nnz: u64,
}

/// A compiled, serializable execution program: the binary form of a
/// planner [`Plan`], enriched with the workspace and prune metadata of the
/// instruction program it was lowered against.
///
/// ```
/// use sparsetrain_sparse::planner::{Plan, Stage};
/// use sparsetrain_sparse::plan_program::ExecutionProgram;
/// use sparsetrain_sparse::registry;
///
/// let mut plan = Plan::new(registry::lookup("scalar").unwrap());
/// plan.set("conv1", Stage::Forward, registry::lookup("im2row").unwrap());
/// let bytes = plan.to_program().encode().unwrap();
/// let back = Plan::from_program(&ExecutionProgram::decode(&bytes).unwrap()).unwrap();
/// assert_eq!(back, plan);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionProgram {
    strings: Vec<String>,
    default_engine: u32,
    cells: Vec<ProgramCell>,
    workspace_hints: Vec<WorkspaceHint>,
    prune_points: Vec<PrunePoint>,
}

impl ExecutionProgram {
    /// An empty program whose unplanned cells resolve to `default_engine`.
    pub fn new(default_engine: &str) -> Self {
        let mut prog = ExecutionProgram {
            strings: Vec::new(),
            default_engine: 0,
            cells: Vec::new(),
            workspace_hints: Vec::new(),
            prune_points: Vec::new(),
        };
        prog.default_engine = prog.intern(default_engine);
        prog
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(id) = self.strings.iter().position(|have| have == s) {
            return id as u32;
        }
        self.strings.push(s.to_string());
        (self.strings.len() - 1) as u32
    }

    fn name(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// The interned name table (layer and engine names).
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// The engine unplanned cells resolve to.
    pub fn default_engine_name(&self) -> &str {
        self.name(self.default_engine)
    }

    /// Appends a decided cell. Cells keep insertion order on the wire;
    /// [`Plan::to_program`] inserts in the plan's canonical
    /// `(layer, stage)` order.
    pub fn push_cell(&mut self, layer: &str, stage: Stage, engine: &str) {
        let layer = self.intern(layer);
        let engine = self.intern(engine);
        self.cells.push(ProgramCell { layer, stage, engine });
    }

    /// The decided cells, in table order.
    pub fn cells(&self) -> &[ProgramCell] {
        &self.cells
    }

    /// The decided cells with names resolved: `(layer, stage, engine)`.
    pub fn cell_names(&self) -> impl Iterator<Item = (&str, Stage, &str)> {
        self.cells
            .iter()
            .map(|c| (self.name(c.layer), c.stage, self.name(c.engine)))
    }

    /// Records a workspace-size observation for a cell, keeping the
    /// maximum across calls.
    pub fn note_workspace(&mut self, layer: &str, stage: Stage, elements: u64) {
        let layer = self.intern(layer);
        if let Some(hint) = self
            .workspace_hints
            .iter_mut()
            .find(|h| h.layer == layer && h.stage == stage)
        {
            hint.elements = hint.elements.max(elements);
            return;
        }
        self.workspace_hints.push(WorkspaceHint {
            layer,
            stage,
            elements,
        });
    }

    /// The recorded workspace hints, in insertion order.
    pub fn workspace_hints(&self) -> &[WorkspaceHint] {
        &self.workspace_hints
    }

    /// The workspace hint for one cell, if recorded.
    pub fn workspace_hint(&self, layer: &str, stage: Stage) -> Option<u64> {
        let layer = self.strings.iter().position(|s| s == layer)? as u32;
        self.workspace_hints
            .iter()
            .find(|h| h.layer == layer && h.stage == stage)
            .map(|h| h.elements)
    }

    /// The largest recorded workspace hint, if any.
    pub fn max_workspace_elements(&self) -> Option<u64> {
        self.workspace_hints.iter().map(|h| h.elements).max()
    }

    /// Records (or replaces) a layer's prune point.
    pub fn note_prune_point(&mut self, layer: &str, grad_nnz: u64) {
        let layer = self.intern(layer);
        if let Some(point) = self.prune_points.iter_mut().find(|p| p.layer == layer) {
            point.grad_nnz = grad_nnz;
            return;
        }
        self.prune_points.push(PrunePoint { layer, grad_nnz });
    }

    /// The recorded prune points, in insertion order.
    pub fn prune_points(&self) -> &[PrunePoint] {
        &self.prune_points
    }

    /// A layer's prune point, if recorded.
    pub fn prune_point(&self, layer: &str) -> Option<u64> {
        let layer = self.strings.iter().position(|s| s == layer)? as u32;
        self.prune_points
            .iter()
            .find(|p| p.layer == layer)
            .map(|p| p.grad_nnz)
    }

    /// Serializes the program into the versioned `STPLAN` container.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when a count exceeds its wire width.
    pub fn encode(&self) -> Result<Vec<u8>, EncodeError> {
        let mut sections: Vec<(u16, Vec<u8>)> = Vec::with_capacity(4);

        let mut w = Writer::new(Section::Strings);
        w.count("string entries", self.strings.len())?;
        for s in &self.strings {
            w.str("string bytes", s)?;
        }
        sections.push((TAG_STRINGS, w.buf));

        let mut w = Writer::new(Section::Cells);
        w.u32(self.default_engine);
        w.count("cell entries", self.cells.len())?;
        for c in &self.cells {
            w.u32(c.layer);
            w.u8(stage_code(c.stage));
            w.u32(c.engine);
        }
        sections.push((TAG_CELLS, w.buf));

        if !self.workspace_hints.is_empty() {
            let mut w = Writer::new(Section::Workspace);
            w.count("workspace hints", self.workspace_hints.len())?;
            for h in &self.workspace_hints {
                w.u32(h.layer);
                w.u8(stage_code(h.stage));
                w.u64(h.elements);
            }
            sections.push((TAG_WORKSPACE, w.buf));
        }

        if !self.prune_points.is_empty() {
            let mut w = Writer::new(Section::Prune);
            w.count("prune points", self.prune_points.len())?;
            for p in &self.prune_points {
                w.u32(p.layer);
                w.u64(p.grad_nnz);
            }
            sections.push((TAG_PRUNE, w.buf));
        }

        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        for (tag, payload) in sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&[0u8; 2]);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        Ok(out)
    }

    /// Parses a program from the versioned `STPLAN` container.
    ///
    /// # Errors
    ///
    /// Returns a typed [`DecodeError`] on any malformation — bad magic or
    /// version, truncated/duplicate/unknown/missing sections, trailing
    /// bytes, out-of-range string ids, invalid stage codes, duplicate
    /// cells/hints/points, or duplicate string-table entries.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() < 16 {
            return Err(DecodeError::TruncatedHeader);
        }
        if bytes[..8] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != VERSION {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let section_count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;

        // Slice the container first (order-independent), then parse the
        // payloads strings-first so the id-bearing sections can validate.
        let mut payloads: [Option<&[u8]>; 4] = [None; 4];
        let mut pos = 16usize;
        for _ in 0..section_count {
            if bytes.len() < pos + 12 {
                return Err(DecodeError::TruncatedHeader);
            }
            let tag = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]);
            let section = Section::from_tag(tag).ok_or(DecodeError::UnknownSection { tag })?;
            let mut raw_len = [0u8; 8];
            raw_len.copy_from_slice(&bytes[pos + 4..pos + 12]);
            let len = u64::from_le_bytes(raw_len) as usize;
            pos += 12;
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or(DecodeError::TruncatedSection { section })?;
            let slot = &mut payloads[tag as usize - 1];
            if slot.is_some() {
                return Err(DecodeError::DuplicateSection { section });
            }
            *slot = Some(&bytes[pos..end]);
            pos = end;
        }
        if pos != bytes.len() {
            return Err(DecodeError::TrailingBytes {
                extra: bytes.len() - pos,
            });
        }

        let mandatory = |tag: u16| {
            payloads[tag as usize - 1].ok_or(DecodeError::MissingSection {
                section: Section::from_tag(tag).expect("known tag"),
            })
        };

        let r = Reader::new(Section::Strings, mandatory(TAG_STRINGS)?);
        let n = r.count()?;
        let mut strings = Vec::with_capacity(n.min(r.remaining() + 1));
        for _ in 0..n {
            let s = r.str("string bytes")?;
            if strings.contains(&s) {
                return Err(r.invalid("duplicate string"));
            }
            strings.push(s);
        }
        r.finish()?;
        let string_id = |r: &Reader<'_>, field: &'static str, id: u32| {
            if (id as usize) < strings.len() {
                Ok(id)
            } else {
                Err(r.invalid(field))
            }
        };

        let r = Reader::new(Section::Cells, mandatory(TAG_CELLS)?);
        let default_engine = string_id(&r, "default engine id", r.u32()?)?;
        let n = r.count()?;
        let mut cells = Vec::with_capacity(n.min(r.remaining() + 1));
        let mut seen_cells = BTreeSet::new();
        for _ in 0..n {
            let layer = string_id(&r, "cell layer id", r.u32()?)?;
            let stage = stage_from_code(r.u8()?).ok_or_else(|| r.invalid("cell stage"))?;
            let engine = string_id(&r, "cell engine id", r.u32()?)?;
            if !seen_cells.insert((layer, stage_code(stage))) {
                return Err(r.invalid("duplicate cell"));
            }
            cells.push(ProgramCell { layer, stage, engine });
        }
        r.finish()?;

        let mut workspace_hints = Vec::new();
        if let Some(payload) = payloads[TAG_WORKSPACE as usize - 1] {
            let r = Reader::new(Section::Workspace, payload);
            let n = r.count()?;
            let mut seen = BTreeSet::new();
            for _ in 0..n {
                let layer = string_id(&r, "hint layer id", r.u32()?)?;
                let stage = stage_from_code(r.u8()?).ok_or_else(|| r.invalid("hint stage"))?;
                let elements = r.u64()?;
                if !seen.insert((layer, stage_code(stage))) {
                    return Err(r.invalid("duplicate workspace hint"));
                }
                workspace_hints.push(WorkspaceHint {
                    layer,
                    stage,
                    elements,
                });
            }
            r.finish()?;
        }

        let mut prune_points = Vec::new();
        if let Some(payload) = payloads[TAG_PRUNE as usize - 1] {
            let r = Reader::new(Section::Prune, payload);
            let n = r.count()?;
            let mut seen = BTreeSet::new();
            for _ in 0..n {
                let layer = string_id(&r, "prune layer id", r.u32()?)?;
                let grad_nnz = r.u64()?;
                if !seen.insert(layer) {
                    return Err(r.invalid("duplicate prune point"));
                }
                prune_points.push(PrunePoint { layer, grad_nnz });
            }
            r.finish()?;
        }

        Ok(ExecutionProgram {
            strings,
            default_engine,
            cells,
            workspace_hints,
            prune_points,
        })
    }
}

// ---------------------------------------------------------------------------
// Writer / Reader helpers (checkpoint-codec style)
// ---------------------------------------------------------------------------

struct Writer {
    section: Section,
    buf: Vec<u8>,
}

impl Writer {
    fn new(section: Section) -> Self {
        Writer {
            section,
            buf: Vec::new(),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn count(&mut self, field: &'static str, n: usize) -> Result<(), EncodeError> {
        let v = u32::try_from(n).map_err(|_| EncodeError::FieldOverflow {
            section: self.section,
            field,
            value: n,
        })?;
        self.u32(v);
        Ok(())
    }

    fn str(&mut self, field: &'static str, s: &str) -> Result<(), EncodeError> {
        self.count(field, s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

struct Reader<'a> {
    section: Section,
    bytes: &'a [u8],
    pos: std::cell::Cell<usize>,
}

impl<'a> Reader<'a> {
    fn new(section: Section, bytes: &'a [u8]) -> Self {
        Reader {
            section,
            bytes,
            pos: std::cell::Cell::new(0),
        }
    }

    fn truncated(&self) -> DecodeError {
        DecodeError::TruncatedSection {
            section: self.section,
        }
    }

    fn invalid(&self, field: &'static str) -> DecodeError {
        DecodeError::InvalidField {
            section: self.section,
            field,
        }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos.get()
    }

    fn take(&self, n: usize) -> Result<&'a [u8], DecodeError> {
        let start = self.pos.get();
        let end = start.checked_add(n).ok_or_else(|| self.truncated())?;
        if end > self.bytes.len() {
            return Err(self.truncated());
        }
        self.pos.set(end);
        Ok(&self.bytes[start..end])
    }

    fn u8(&self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn count(&self) -> Result<usize, DecodeError> {
        Ok(self.u32()? as usize)
    }

    fn str(&self, field: &'static str) -> Result<String, DecodeError> {
        let n = self.count()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| self.invalid(field))
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos.get() != self.bytes.len() {
            return Err(DecodeError::InvalidField {
                section: self.section,
                field: "section length",
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Plan bridge
// ---------------------------------------------------------------------------

impl Plan {
    /// Lowers this plan losslessly into a binary [`ExecutionProgram`]
    /// (cells in canonical `(layer, stage)` order; no workspace or prune
    /// metadata — `sparsetrain_core::dataflow::compile_plan` adds those
    /// from a compiled instruction program).
    pub fn to_program(&self) -> ExecutionProgram {
        let mut prog = ExecutionProgram::new(self.default_engine().name());
        for (layer, stage, handle) in self.cells() {
            prog.push_cell(layer, stage, handle.name());
        }
        prog
    }

    /// Rebuilds the plan a program was lowered from: the inverse of
    /// [`Plan::to_program`].
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when an engine name does not resolve through
    /// the registry or a layer id is unusable as a plan key.
    pub fn from_program(program: &ExecutionProgram) -> Result<Self, PlanError> {
        let resolve = |name: &str| lookup_or_parse(name).map_err(|e| PlanError::new(e.to_string()));
        let mut plan = Plan::new(resolve(program.default_engine_name())?);
        for (layer, stage, engine) in program.cell_names() {
            plan.try_set(layer, stage, resolve(engine)?)?;
        }
        Ok(plan)
    }
}

// ---------------------------------------------------------------------------
// The VM
// ---------------------------------------------------------------------------

/// Executes a compiled [`ExecutionProgram`] against the engine registry.
///
/// The VM wraps a planned [`ExecutionContext`] replaying the program's
/// plan: every batched call resolves its engine through the program's cell
/// table (cells the program misses fall back to the density heuristic,
/// never to probing), so a replay is **bitwise-identical** to the probing
/// run that emitted the program — planning affects speed, never results.
pub struct PlanVm {
    program: ExecutionProgram,
    ctx: ExecutionContext,
    executed: BTreeSet<(String, Stage)>,
}

impl PlanVm {
    /// Cap on workspace pre-sizing from (untrusted) program hints, in f32
    /// elements. Larger hints are clamped; the workspace still grows
    /// on demand if a call genuinely needs more.
    pub const MAX_PREWARM_ELEMENTS: u64 = 1 << 20;

    /// A VM executing `program`. The workspace is pre-sized from the
    /// program's hints (clamped to [`PlanVm::MAX_PREWARM_ELEMENTS`]).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the program's plan does not resolve (see
    /// [`Plan::from_program`]).
    pub fn new(program: ExecutionProgram) -> Result<Self, PlanError> {
        let plan = Plan::from_program(&program)?;
        let mut ctx = ExecutionContext::with_plan(plan);
        if let Some(max) = program.max_workspace_elements() {
            ctx.workspace().row(max.min(Self::MAX_PREWARM_ELEMENTS) as usize);
        }
        Ok(PlanVm {
            program,
            ctx,
            executed: BTreeSet::new(),
        })
    }

    /// A VM decoded straight from `STPLAN` container bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] wrapping the decode failure or unresolvable
    /// plan.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PlanError> {
        let program = ExecutionProgram::decode(bytes).map_err(|e| PlanError::new(e.to_string()))?;
        Self::new(program)
    }

    /// The program under execution.
    pub fn program(&self) -> &ExecutionProgram {
        &self.program
    }

    /// The replayed plan.
    pub fn plan(&self) -> &Plan {
        self.ctx.plan().expect("a plan VM context is always planned")
    }

    /// The underlying planned execution context.
    pub fn context_mut(&mut self) -> &mut ExecutionContext {
        &mut self.ctx
    }

    fn mark(&mut self, layer: &str, stage: Stage) {
        self.executed.insert((layer.to_string(), stage));
    }

    /// Executes a batched forward step on the cell's planned engine.
    pub fn forward_batch(
        &mut self,
        layer: &str,
        inputs: &[SparseFeatureMap],
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
    ) -> Vec<Tensor3> {
        self.mark(layer, Stage::Forward);
        self.ctx.forward_batch_for(layer, inputs, weights, bias, geom)
    }

    /// Executes a batched GTA step on the cell's planned engine,
    /// accumulating into the pre-seeded `dins`.
    pub fn input_grad_batch_into(
        &mut self,
        layer: &str,
        douts: &[SparseFeatureMap],
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[Vec<RowMask>],
        dins: &mut [Tensor3],
    ) {
        self.mark(layer, Stage::InputGrad);
        self.ctx
            .input_grad_batch_for_into(layer, douts, weights, geom, masks, dins);
    }

    /// Executes a batched GTW step on the cell's planned engine,
    /// accumulating into `dw`.
    pub fn weight_grad_batch(
        &mut self,
        layer: &str,
        inputs: &[SparseFeatureMap],
        douts: &[SparseFeatureMap],
        geom: ConvGeometry,
        dw: &mut Tensor4,
    ) {
        self.mark(layer, Stage::WeightGrad);
        self.ctx.weight_grad_batch_for(layer, inputs, douts, geom, dw);
    }

    /// Number of distinct `(layer, stage)` cells executed so far.
    pub fn executed_cells(&self) -> usize {
        self.executed.len()
    }

    /// Program cells that have not executed yet — replay coverage: empty
    /// once every pinned decision has been exercised.
    pub fn pending_cells(&self) -> Vec<(&str, Stage)> {
        self.program
            .cell_names()
            .filter(|(layer, stage, _)| !self.executed.contains(&((*layer).to_string(), *stage)))
            .map(|(layer, stage, _)| (layer, stage))
            .collect()
    }
}

impl fmt::Debug for PlanVm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanVm")
            .field("cells", &self.program.cells().len())
            .field("executed", &self.executed.len())
            .field("default", &self.program.default_engine_name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::KernelEngine;
    use crate::registry::lookup;

    fn handle(name: &str) -> crate::registry::EngineHandle {
        lookup(name).expect(name)
    }

    fn sample_plan() -> Plan {
        let mut plan = Plan::new(handle("simd"));
        plan.set("conv1", Stage::Forward, handle("parallel:im2row"));
        plan.set("conv1", Stage::WeightGrad, handle("scalar"));
        plan.set("conv2", Stage::InputGrad, handle("parallel"));
        plan
    }

    fn sample_program() -> ExecutionProgram {
        let mut prog = sample_plan().to_program();
        prog.note_workspace("conv1", Stage::Forward, 4096);
        prog.note_workspace("conv2", Stage::InputGrad, 512);
        prog.note_prune_point("conv1", 123);
        prog.note_prune_point("conv2", 45);
        prog
    }

    #[test]
    fn plan_program_roundtrips_losslessly() {
        let plan = sample_plan();
        let prog = plan.to_program();
        assert_eq!(Plan::from_program(&prog).unwrap(), plan);

        let bytes = sample_program().encode().unwrap();
        let back = ExecutionProgram::decode(&bytes).unwrap();
        assert_eq!(back, sample_program());
        assert_eq!(Plan::from_program(&back).unwrap(), plan);
        // Canonical bytes: encode ∘ decode is the identity on our output.
        assert_eq!(back.encode().unwrap(), bytes);
    }

    #[test]
    fn interning_dedupes_names() {
        let prog = sample_program();
        let mut seen = std::collections::BTreeSet::new();
        for s in prog.strings() {
            assert!(seen.insert(s.clone()), "duplicate interned string {s:?}");
        }
        assert_eq!(prog.default_engine_name(), "simd");
        assert_eq!(prog.workspace_hint("conv1", Stage::Forward), Some(4096));
        assert_eq!(prog.workspace_hint("conv1", Stage::InputGrad), None);
        assert_eq!(prog.prune_point("conv2"), Some(45));
        assert_eq!(prog.max_workspace_elements(), Some(4096));
    }

    #[test]
    fn workspace_notes_keep_the_max() {
        let mut prog = ExecutionProgram::new("scalar");
        prog.note_workspace("c", Stage::Forward, 10);
        prog.note_workspace("c", Stage::Forward, 7);
        prog.note_workspace("c", Stage::Forward, 19);
        assert_eq!(prog.workspace_hint("c", Stage::Forward), Some(19));
        prog.note_prune_point("c", 5);
        prog.note_prune_point("c", 9);
        assert_eq!(prog.prune_point("c"), Some(9));
        assert_eq!(prog.prune_points().len(), 1);
    }

    #[test]
    fn magic_sniff_distinguishes_binary_from_text() {
        let bytes = sample_program().encode().unwrap();
        assert!(is_binary_plan(&bytes));
        assert!(!is_binary_plan(b"# sparsetrain execution plan v1\n"));
        assert!(!is_binary_plan(b"STPL"));
        // A future format epoch still sniffs as binary.
        let mut epoch2 = bytes.clone();
        epoch2[6] = 0x02;
        assert!(is_binary_plan(&epoch2));
    }

    #[test]
    fn flipped_magic_is_rejected() {
        let mut bytes = sample_program().encode().unwrap();
        bytes[0] ^= 0xFF;
        assert_eq!(ExecutionProgram::decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = sample_program().encode().unwrap();
        bytes[8] = 0x7F;
        assert_eq!(
            ExecutionProgram::decode(&bytes),
            Err(DecodeError::UnsupportedVersion(0x7F))
        );
    }

    #[test]
    fn truncations_are_typed() {
        let bytes = sample_program().encode().unwrap();
        assert_eq!(ExecutionProgram::decode(&[]), Err(DecodeError::TruncatedHeader));
        assert_eq!(
            ExecutionProgram::decode(&bytes[..10]),
            Err(DecodeError::TruncatedHeader)
        );
        // Cut inside the first (strings) section's payload.
        let err = ExecutionProgram::decode(&bytes[..16 + 12 + 2]).unwrap_err();
        assert_eq!(
            err,
            DecodeError::TruncatedSection {
                section: Section::Strings
            }
        );
        // Every prefix must fail without panicking.
        for cut in 0..bytes.len() {
            assert!(ExecutionProgram::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_program().encode().unwrap();
        bytes.extend_from_slice(b"junk");
        assert_eq!(
            ExecutionProgram::decode(&bytes),
            Err(DecodeError::TrailingBytes { extra: 4 })
        );
    }

    #[test]
    fn unknown_and_duplicate_sections_are_rejected() {
        let full = sample_program().encode().unwrap();
        let mut bytes = full.clone();
        bytes[16] = 0xEE;
        bytes[17] = 0xEE;
        assert_eq!(
            ExecutionProgram::decode(&bytes),
            Err(DecodeError::UnknownSection { tag: 0xEEEE })
        );

        // Duplicate the strings section (first section after the header).
        let strings_len = u64::from_le_bytes(full[16 + 4..16 + 12].try_into().unwrap()) as usize + 12;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 2]);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&full[16..16 + strings_len]);
        bytes.extend_from_slice(&full[16..16 + strings_len]);
        assert_eq!(
            ExecutionProgram::decode(&bytes),
            Err(DecodeError::DuplicateSection {
                section: Section::Strings
            })
        );

        // Strings alone is missing the mandatory cells section.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 2]);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&full[16..16 + strings_len]);
        assert_eq!(
            ExecutionProgram::decode(&bytes),
            Err(DecodeError::MissingSection {
                section: Section::Cells
            })
        );
    }

    #[test]
    fn out_of_range_ids_and_stages_are_rejected() {
        // Locate the cells section and corrupt fields inside it.
        let prog = sample_program();
        let bytes = prog.encode().unwrap();
        let strings_len = u64::from_le_bytes(bytes[16 + 4..16 + 12].try_into().unwrap()) as usize;
        let cells_payload = 16 + 12 + strings_len + 12;

        // Default engine id out of range.
        let mut bad = bytes.clone();
        bad[cells_payload..cells_payload + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            ExecutionProgram::decode(&bad),
            Err(DecodeError::InvalidField {
                section: Section::Cells,
                field: "default engine id"
            })
        );

        // First cell's stage byte invalid (offset: default u32 + count u32 + layer u32).
        let mut bad = bytes.clone();
        bad[cells_payload + 12] = 9;
        assert_eq!(
            ExecutionProgram::decode(&bad),
            Err(DecodeError::InvalidField {
                section: Section::Cells,
                field: "cell stage"
            })
        );

        // First cell's layer id out of range.
        let mut bad = bytes.clone();
        bad[cells_payload + 8..cells_payload + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            ExecutionProgram::decode(&bad),
            Err(DecodeError::InvalidField {
                section: Section::Cells,
                field: "cell layer id"
            })
        );
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let mut prog = ExecutionProgram::new("scalar");
        prog.push_cell("c1", Stage::Forward, "simd");
        prog.push_cell("c1", Stage::Forward, "im2row");
        let bytes = prog.encode().unwrap();
        assert_eq!(
            ExecutionProgram::decode(&bytes),
            Err(DecodeError::InvalidField {
                section: Section::Cells,
                field: "duplicate cell"
            })
        );
    }

    #[test]
    fn from_program_rejects_unknown_engines_and_hostile_layers() {
        let mut prog = ExecutionProgram::new("warp-drive");
        let err = Plan::from_program(&prog).unwrap_err();
        assert!(err.to_string().contains("warp-drive"), "{err}");

        prog = ExecutionProgram::new("scalar");
        prog.push_cell("conv #1", Stage::Forward, "simd");
        let err = Plan::from_program(&prog).unwrap_err();
        assert!(err.to_string().contains("conv #1"), "{err}");
    }

    #[test]
    fn vm_replays_and_tracks_coverage() {
        use sparsetrain_tensor::Tensor3;

        let mut plan = Plan::new(handle("scalar"));
        plan.set("conv1", Stage::Forward, handle("simd"));
        plan.set("conv1", Stage::WeightGrad, handle("scalar"));
        let mut prog = plan.to_program();
        prog.note_workspace("conv1", Stage::Forward, 64);
        let mut vm = PlanVm::new(prog).unwrap();
        assert_eq!(vm.plan().resolve("conv1", Stage::Forward).name(), "simd");
        assert_eq!(vm.pending_cells().len(), 2);

        let geom = ConvGeometry::new(3, 1, 1);
        let input = SparseFeatureMap::from_tensor(&Tensor3::from_fn(2, 5, 5, |c, y, x| {
            ((c + y + x) % 3) as f32 * 0.25
        }));
        let dout = SparseFeatureMap::from_tensor(&Tensor3::from_fn(2, 5, 5, |c, y, x| {
            ((c + 2 * y + x) % 4) as f32 * 0.125
        }));
        let weights = Tensor4::from_fn(2, 2, 3, 3, |f, c, u, v| (f + c + u + v) as f32 * 0.1 - 0.3);

        let outs = vm.forward_batch("conv1", std::slice::from_ref(&input), &weights, None, geom);
        let reference =
            crate::engine::ScalarEngine.forward_batch(std::slice::from_ref(&input), &weights, None, geom);
        assert_eq!(outs[0].as_slice(), reference[0].as_slice());

        let mut dw = Tensor4::zeros(2, 2, 3, 3);
        vm.weight_grad_batch(
            "conv1",
            std::slice::from_ref(&input),
            std::slice::from_ref(&dout),
            geom,
            &mut dw,
        );
        assert_eq!(vm.executed_cells(), 2);
        assert!(vm.pending_cells().is_empty(), "{:?}", vm.pending_cells());
    }
}
