//! Cache-blocked im2row dense kernel engine (`"im2row"`).
//!
//! Early convolution layers are exactly where the sparse row kernels have
//! the least to skip: activations enter nearly dense (the raw image, or a
//! map before much ReLU sparsity has developed) and rows are wide. There a
//! classic dense lowering wins — materialize every output position's
//! receptive field as one contiguous **patch row** and reduce it against
//! the kernel with a register-tiled dot product, so each patch element
//! loaded from cache feeds [`TILE`] filters at once.
//!
//! [`Im2RowEngine`] does that lowering *without giving up bitwise parity*
//! with [`crate::engine::ScalarEngine`]:
//!
//! * **Patch layout is the scalar order.** The scalar forward accumulates
//!   each output pixel as `(kernel row u ascending, channel ci ascending,
//!   tap v ascending)`, so patch columns are laid out `(u, ci, v)` — *not*
//!   the `(ci, u, v)` of a textbook im2row (`sparsetrain_tensor::im2row`)
//!   — and the per-filter kernel weights are repacked to match. Every
//!   output element therefore accumulates its contributions in exactly
//!   the scalar engine's per-element order, one two-rounding `acc + x·w`
//!   at a time (multiply then add; no FMA contraction).
//! * **Extra zero terms are exact.** The dense reduction includes terms
//!   the scalar kernels skip (stored-zero activations, zero kernel taps,
//!   zero-padded window positions); each contributes `±0.0`, and an
//!   accumulator that does not start as literal `-0.0` can never become
//!   `-0.0` under round-to-nearest, so those adds are bit-exact no-ops.
//! * **Everything else falls back to the scalar band code itself**:
//!   strides ≠ 1, a literal `-0.0` bias (or pre-seeded accumulator), and
//!   any output row fed by a row sparser than the density cutoff — so
//!   parity is unconditional, enforced by the unmodified `engine_parity`
//!   and `prune_determinism` suites.
//!
//! The patch matrix is built **once per engine call** into the
//! [`BandContext`] by [`KernelEngine::prepare_forward`], above the band
//! fan-out, and every band borrows it — under `"parallel:im2row"` the
//! rayon bands share one lowering. Inside a band the loop order is
//! filter-tile ⇒ output row ⇒ output position: the repacked weight tile
//! (`patch_len × TILE` floats) stays register/L1-resident across a whole
//! plane sweep while patch rows stream through, and each output row's
//! patch block is reused by every tile — the cache blocking that gives the
//! engine its name.
//!
//! The **density cutoff** is the knob deciding when a row is worth the
//! dense treatment: an output row takes the micro-kernel only when every
//! in-bounds input row feeding it carries at least one non-zero per
//! `cutoff` elements (density ≥ 1/cutoff, default 1/8 — the same
//! break-even as the simd engine's sweeps) **or is empty** (empty rows
//! cost the reduction only exact zero terms, so they never veto a row).
//! [`Im2RowEngine::with_cutoff`] tunes it; output rows fed by
//! below-cutoff rows keep the work-proportional sparse kernels.
//!
//! GTA and GTW inherit the scalar band defaults: the backward operand (the
//! pruned output gradient) is sparse by construction, which is the regime
//! the SRC-family kernels and the simd sweeps already serve; lowering it
//! densely would do strictly more work. Use `"simd"` / `"parallel:simd"`
//! when the backward stages dominate.
//!
//! Like the simd engine, the micro-kernel is runtime-dispatched between an
//! x86_64 AVX2 implementation (`vmulps`/`vaddps`, never `vfmadd`) and a
//! portable `[f32; TILE]` block the autovectorizer handles everywhere
//! else; both produce identical bits and [`Im2RowEngine::portable`] pins
//! the portable path.

use crate::compressed::SparseVec;
use crate::engine::{scalar_forward_band, BandContext, KernelEngine};
use crate::rowconv::SparseFeatureMap;
use crate::simd_engine::{avx2_available, contains_negative_zero, densify_map};
use crate::src::src_accumulate;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::Tensor4;

/// Filters reduced per micro-kernel invocation (one AVX2 register of
/// accumulators; the portable path uses the same block width).
pub const TILE: usize = 8;

/// Default density cutoff: a row qualifies for the dense lowering when it
/// averages at least one non-zero per `8` elements — the break-even where
/// an 8-lane dense sweep costs what the sparse kernel's per-non-zero work
/// does.
pub const DEFAULT_CUTOFF: usize = 8;

// ---------------------------------------------------------------------------
// Micro-kernel
// ---------------------------------------------------------------------------

/// `acc[l] += wt[idx·TILE + l] · prow[idx]` for all `idx` ascending — the
/// register-tiled patch-row reduction. Each accumulator's chain is the
/// scalar per-element order; the lanes are independent filters.
fn tile_kernel(avx2: bool, acc: &mut [f32; TILE], prow: &[f32], wt: &[f32]) {
    debug_assert_eq!(wt.len(), prow.len() * TILE);
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only true when runtime detection reported
        // AVX2+FMA support for this process.
        unsafe { tile_kernel_avx2(acc, prow, wt) };
        return;
    }
    let _ = avx2;
    tile_kernel_portable(acc, prow, wt);
}

/// Portable block micro-kernel: the fixed `[f32; TILE]` accumulator keeps
/// the inner loop trip-count-free so LLVM emits one vector multiply and
/// one vector add per patch element on every target.
fn tile_kernel_portable(acc: &mut [f32; TILE], prow: &[f32], wt: &[f32]) {
    for (x, wv) in prow.iter().zip(wt.chunks_exact(TILE)) {
        let wv: &[f32; TILE] = wv.try_into().expect("exact chunk");
        for l in 0..TILE {
            acc[l] += wv[l] * *x;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile_kernel_avx2(acc: &mut [f32; TILE], prow: &[f32], wt: &[f32]) {
    use std::arch::x86_64::*;
    let mut a = _mm256_loadu_ps(acc.as_ptr());
    for (idx, &x) in prow.iter().enumerate() {
        let xv = _mm256_set1_ps(x);
        let wv = _mm256_loadu_ps(wt.as_ptr().add(idx * TILE));
        // Deliberately vmulps + vaddps, not vfmadd: the scalar reference
        // rounds the product before the add.
        a = _mm256_add_ps(a, _mm256_mul_ps(wv, xv));
    }
    _mm256_storeu_ps(acc.as_mut_ptr(), a);
}

// ---------------------------------------------------------------------------
// Im2RowEngine
// ---------------------------------------------------------------------------

/// The cache-blocked im2row engine, registered as `"im2row"` (and, banded
/// across threads, as `"parallel:im2row"`).
///
/// ```
/// use sparsetrain_sparse::{registry, Im2RowEngine};
///
/// let handle = registry::lookup("im2row").unwrap();
/// assert_eq!(handle.engine().name(), "im2row");
/// // The portable micro-kernel is always available and bitwise-equal to
/// // the AVX2 one.
/// assert_eq!(Im2RowEngine::portable().active_path(), "portable");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Im2RowEngine {
    cutoff: usize,
    force_portable: bool,
}

impl Default for Im2RowEngine {
    fn default() -> Self {
        Self::auto()
    }
}

/// The forward lowering of one engine call: the patch matrix, its row
/// width, and which output rows qualified for the micro-kernel.
struct ForwardPlan {
    patches: Vec<f32>,
    plen: usize,
    dense_rows: Vec<bool>,
}

impl Im2RowEngine {
    /// Engine with the default density cutoff, dispatching to AVX2 when
    /// the CPU reports it.
    pub const fn auto() -> Self {
        Self {
            cutoff: DEFAULT_CUTOFF,
            force_portable: false,
        }
    }

    /// Engine pinned to the portable micro-kernel (tests, cross-checks).
    pub const fn portable() -> Self {
        Self {
            cutoff: DEFAULT_CUTOFF,
            force_portable: true,
        }
    }

    /// This engine with an explicit density cutoff: a row qualifies for
    /// the dense lowering when `nnz · cutoff ≥ len` (density ≥ 1/cutoff).
    /// `1` restricts the micro-kernel to fully dense rows; larger values
    /// lower the entry bar. A cutoff of `0` is treated as `1`.
    pub const fn with_cutoff(self, cutoff: usize) -> Self {
        Self {
            cutoff: if cutoff == 0 { 1 } else { cutoff },
            ..self
        }
    }

    /// The configured density cutoff (see [`Im2RowEngine::with_cutoff`]).
    pub const fn cutoff(&self) -> usize {
        self.cutoff
    }

    fn use_avx2(&self) -> bool {
        !self.force_portable && avx2_available()
    }

    /// Which micro-kernel this engine runs right now: `"avx2"` or
    /// `"portable"`.
    pub fn active_path(&self) -> &'static str {
        if self.use_avx2() {
            "avx2"
        } else {
            "portable"
        }
    }

    fn row_worthy(&self, row: &SparseVec) -> bool {
        row.nnz().saturating_mul(self.cutoff) >= row.len()
    }

    /// Builds the call's forward lowering, or `None` when no output row
    /// qualifies (the whole call routes to the scalar band code). Only
    /// valid at stride 1 — the caller guards.
    fn build_forward_plan(
        &self,
        input: &SparseFeatureMap,
        geom: ConvGeometry,
        oh: usize,
        ow: usize,
    ) -> Option<ForwardPlan> {
        let (c, h, w) = (input.channels(), input.height(), input.width());
        let (k, pad) = (geom.kernel, geom.pad as isize);
        let plen = c * k * k;
        if plen == 0 || oh * ow == 0 {
            return None;
        }
        // An output row qualifies iff every in-bounds input row feeding it
        // (all channels, all k kernel rows) meets the density cutoff or is
        // empty. Empty rows cost the micro-kernel only exact `±0.0` terms
        // (their patch columns stay zero), so they must not disqualify a
        // row — on 8-wide mid-stack layers a single empty row among
        // hundreds of contributors would otherwise veto every output row.
        let row_ok: Vec<bool> = (0..h)
            .map(|iy| {
                (0..c).all(|ci| {
                    let row = input.row(ci, iy);
                    row.nnz() == 0 || self.row_worthy(row)
                })
            })
            .collect();
        let dense_rows: Vec<bool> = (0..oh)
            .map(|oy| {
                (0..k).all(|u| {
                    let iy = oy as isize - pad + u as isize;
                    iy < 0 || iy >= h as isize || row_ok[iy as usize]
                })
            })
            .collect();
        if !dense_rows.iter().any(|&d| d) {
            return None;
        }
        // Dense staging for the worthy rows, then window copies into the
        // (u, ci, v)-ordered patch rows; padding stays zero.
        let dense = densify_map(input, |row| self.row_worthy(row));
        let mut patches = vec![0.0f32; oh * ow * plen];
        for (oy, patch_plane) in patches.chunks_mut(ow * plen).enumerate() {
            if !dense_rows[oy] {
                continue;
            }
            for (ox, prow) in patch_plane.chunks_mut(plen).enumerate() {
                let ix0 = ox as isize - pad;
                for u in 0..k {
                    let iy = oy as isize - pad + u as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let drow = &dense[(iy as usize) * w..];
                    for ci in 0..c {
                        let drow = &drow[ci * h * w..ci * h * w + w];
                        let dst = &mut prow[(u * c + ci) * k..(u * c + ci + 1) * k];
                        if ix0 >= 0 && ix0 as usize + k <= w {
                            dst.copy_from_slice(&drow[ix0 as usize..ix0 as usize + k]);
                        } else {
                            for (v, d) in dst.iter_mut().enumerate() {
                                let ix = ix0 + v as isize;
                                if ix >= 0 && (ix as usize) < w {
                                    *d = drow[ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
        Some(ForwardPlan {
            patches,
            plen,
            dense_rows,
        })
    }
}

/// Repacks the band's kernel weights into per-tile interleaved columns:
/// tile `t` holds filters `f_lo + t·TILE ..`, laid out
/// `wt[idx · TILE + lane] = W[filter lane][idx]` with `idx` walking the
/// patch order `(u, ci, v)`; lanes past the band edge stay zero.
fn interleave_weights(weights: &Tensor4, f_lo: usize, n: usize, c: usize, k: usize) -> Vec<f32> {
    let plen = c * k * k;
    let tiles = n.div_ceil(TILE);
    let mut wt = vec![0.0f32; tiles * plen * TILE];
    for (t, dst) in wt.chunks_mut(plen * TILE).enumerate() {
        for l in 0..TILE.min(n - t * TILE) {
            let fi = f_lo + t * TILE + l;
            for u in 0..k {
                for ci in 0..c {
                    let krow = weights.kernel_row(fi, ci, u);
                    let base = (u * c + ci) * k * TILE;
                    for (v, &wv) in krow.iter().enumerate() {
                        dst[base + v * TILE + l] = wv;
                    }
                }
            }
        }
    }
    wt
}

impl KernelEngine for Im2RowEngine {
    fn name(&self) -> &'static str {
        "im2row"
    }

    fn prepare_forward(
        &self,
        input: &SparseFeatureMap,
        _weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
    ) -> BandContext {
        let mut ctx = BandContext::empty();
        // When every band will fall back anyway (stride ≠ 1, literal -0.0
        // bias), the lowering would be wasted work.
        if geom.stride == 1 && !bias.is_some_and(contains_negative_zero) {
            let oh = geom.output_extent(input.height());
            let ow = geom.output_extent(input.width());
            if let Some(plan) = self.build_forward_plan(input, geom, oh, ow) {
                ctx.set_patches(plan.patches, plan.plen, plan.dense_rows);
            }
        }
        ctx
    }

    fn forward_band(
        &self,
        ctx: &BandContext,
        input: &SparseFeatureMap,
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
        oh: usize,
        ow: usize,
        f_lo: usize,
        out_band: &mut [f32],
    ) {
        // Stride ≠ 1 and literal -0.0 seeds (bias, or the pre-seeded
        // accumulator when there is none) are only preserved by the scalar
        // skips.
        if geom.stride != 1
            || match bias {
                Some(b) => contains_negative_zero(b),
                None => contains_negative_zero(out_band),
            }
        {
            scalar_forward_band(input, weights, bias, geom, oh, ow, f_lo, out_band);
            return;
        }
        // Borrow the lowering the call prepared once above the band
        // fan-out; rebuild locally only when invoked without one.
        let local;
        let (patches, plen, dense_rows): (&[f32], usize, &[bool]) = if ctx.patch_len() != 0 {
            (ctx.patches(), ctx.patch_len(), ctx.dense_rows())
        } else {
            match self.build_forward_plan(input, geom, oh, ow) {
                Some(plan) => {
                    local = plan;
                    (&local.patches, local.plen, &local.dense_rows)
                }
                None => {
                    scalar_forward_band(input, weights, bias, geom, oh, ow, f_lo, out_band);
                    return;
                }
            }
        };
        let plane = oh * ow;
        let n = out_band.len() / plane;
        let (c, k) = (input.channels(), geom.kernel);
        let h = input.height() as isize;
        let avx2 = self.use_avx2();
        // Bias fill for every plane of the band (the scalar prologue).
        if let Some(b) = bias {
            for (bf, p) in out_band.chunks_mut(plane).enumerate() {
                p.fill(b[f_lo + bf]);
            }
        }
        // Output rows below the cutoff: the scalar row loops, per plane —
        // work-proportional on sparse data, bitwise the reference.
        for (bf, p) in out_band.chunks_mut(plane).enumerate() {
            let fi = f_lo + bf;
            for (oy, out_row) in p.chunks_mut(ow).enumerate() {
                if dense_rows[oy] {
                    continue;
                }
                for u in 0..k {
                    let iy = oy as isize - geom.pad as isize + u as isize;
                    if iy < 0 || iy >= h {
                        continue;
                    }
                    for ci in 0..c {
                        let krow = weights.kernel_row(fi, ci, u);
                        src_accumulate(input.row(ci, iy as usize), krow, geom, out_row);
                    }
                }
            }
        }
        // Dense rows: register-tiled reduction, TILE filters per pass.
        // Loop order tile ⇒ row ⇒ position keeps the weight tile hot in
        // L1 while each row's patch block is re-swept by every tile.
        let wt = interleave_weights(weights, f_lo, n, c, k);
        for (t, wtile) in wt.chunks(plen * TILE).enumerate() {
            let t0 = t * TILE;
            let tile_n = TILE.min(n - t0);
            for oy in 0..oh {
                if !dense_rows[oy] {
                    continue;
                }
                for ox in 0..ow {
                    let pos = oy * ow + ox;
                    let prow = &patches[pos * plen..(pos + 1) * plen];
                    let mut acc = [0.0f32; TILE];
                    for (l, a) in acc.iter_mut().enumerate().take(tile_n) {
                        *a = out_band[(t0 + l) * plane + pos];
                    }
                    tile_kernel(avx2, &mut acc, prow, wtile);
                    for (l, a) in acc.iter().enumerate().take(tile_n) {
                        out_band[(t0 + l) * plane + pos] = *a;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ParallelEngine, ScalarEngine};
    use sparsetrain_tensor::Tensor3;

    fn pseudo(seed: &mut u64) -> f32 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((*seed % 2000) as f32 / 1000.0) - 1.0
    }

    fn sparse_tensor(c: usize, h: usize, w: usize, density_pct: u64, seed: &mut u64) -> Tensor3 {
        Tensor3::from_fn(c, h, w, |_, _, _| {
            let v = pseudo(seed);
            let keep = {
                *seed ^= *seed << 13;
                *seed ^= *seed >> 7;
                *seed % 100 < density_pct
            };
            if keep {
                v
            } else {
                0.0
            }
        })
    }

    fn fixtures(seed: u64, density_pct: u64, geom: ConvGeometry) -> (SparseFeatureMap, Tensor4, Vec<f32>) {
        let mut s = seed;
        let input = sparse_tensor(3, 9, 11, density_pct, &mut s);
        let weights = Tensor4::from_fn(10, 3, geom.kernel, geom.kernel, |_, _, _, _| {
            // Sprinkle exact zeros so the scalar w == 0 tap skip meets the
            // dense reduction's zero terms.
            let v = pseudo(&mut s);
            if v.abs() < 0.1 {
                0.0
            } else {
                v
            }
        });
        let bias: Vec<f32> = (0..10).map(|_| pseudo(&mut s)).collect();
        (SparseFeatureMap::from_tensor(&input), weights, bias)
    }

    fn engines() -> Vec<(&'static str, Im2RowEngine)> {
        vec![
            ("auto", Im2RowEngine::auto()),
            ("portable", Im2RowEngine::portable()),
        ]
    }

    /// Dense, mixed and very sparse fixtures across geometries (micro-
    /// kernel, mixed dense/sparse rows, whole-call sparse fallback, stride
    /// fallback): every path must match the scalar reference bitwise. A
    /// filter count of 10 exercises the partial final tile (10 = 8 + 2).
    #[test]
    fn im2row_matches_scalar_bitwise_on_all_paths() {
        for geom in [
            ConvGeometry::new(3, 1, 1),
            ConvGeometry::new(3, 2, 1),
            ConvGeometry::new(2, 1, 0),
            ConvGeometry::new(1, 1, 0),
        ] {
            for density in [3u64, 20, 55, 100] {
                let (input, weights, bias) = fixtures(7 + density, density, geom);
                for (label, engine) in engines() {
                    let ctx = format!("{label} k={} s={} d={density}", geom.kernel, geom.stride);
                    let want = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
                    let got = engine.forward(&input, &weights, Some(&bias), geom);
                    assert_eq!(got.as_slice(), want.as_slice(), "forward {ctx}");
                    // Without bias (accumulate into zeros) too.
                    let want = ScalarEngine.forward(&input, &weights, None, geom);
                    let got = engine.forward(&input, &weights, None, geom);
                    assert_eq!(got.as_slice(), want.as_slice(), "forward no-bias {ctx}");
                }
            }
        }
    }

    /// Rows exactly at the density cutoff take the micro-kernel; one
    /// non-zero fewer routes the fed output rows to the sparse fallback.
    /// Both sides of the boundary must match the scalar reference bitwise.
    #[test]
    fn cutoff_boundary_rows_match_scalar() {
        let geom = ConvGeometry::new(3, 1, 1);
        const W: usize = 2 * DEFAULT_CUTOFF; // boundary: exactly 2 non-zeros per row
        let w = W;
        let at_boundary = |y: usize, x: usize| (x + y).is_multiple_of(DEFAULT_CUTOFF);
        let below = |y: usize, x: usize| (x + y).is_multiple_of(W);
        for (label, keep) in [("at", at_boundary as fn(usize, usize) -> bool), ("below", below)] {
            let input = SparseFeatureMap::from_tensor(&Tensor3::from_fn(2, 6, w, |c, y, x| {
                if keep(y, x) {
                    // Strictly positive so compression never drops a kept
                    // position and the nnz classification stays exact.
                    0.5 + (c + y) as f32 * 0.125 + x as f32 * 0.0625
                } else {
                    0.0
                }
            }));
            let weights = Tensor4::from_fn(9, 2, 3, 3, |f, c, u, v| {
                ((f * 5 + c * 3 + u * 2 + v) % 7) as f32 * 0.25 - 0.75
            });
            for (path, engine) in engines() {
                let want = ScalarEngine.forward(&input, &weights, None, geom);
                let got = engine.forward(&input, &weights, None, geom);
                assert_eq!(got.as_slice(), want.as_slice(), "{label} boundary, {path}");
            }
            // Sanity-pin the classification itself, not just the result.
            let row = input.row(0, 0);
            let expect_worthy = label == "at";
            assert_eq!(Im2RowEngine::auto().row_worthy(row), expect_worthy, "{label}");
        }
    }

    /// The cutoff knob moves the dense/sparse split without moving a bit
    /// of the result.
    #[test]
    fn cutoff_knob_preserves_parity() {
        let geom = ConvGeometry::new(3, 1, 1);
        let (input, weights, bias) = fixtures(91, 30, geom);
        let want = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
        for cutoff in [0usize, 1, 2, 8, 64, usize::MAX] {
            let engine = Im2RowEngine::auto().with_cutoff(cutoff);
            assert_eq!(engine.cutoff(), cutoff.max(1));
            let got = engine.forward(&input, &weights, Some(&bias), geom);
            assert_eq!(got.as_slice(), want.as_slice(), "cutoff {cutoff}");
        }
    }

    /// A literal -0.0 bias takes the scalar fallback and survives exactly.
    #[test]
    fn negative_zero_bias_is_preserved() {
        let geom = ConvGeometry::new(3, 1, 1);
        let input = SparseFeatureMap::from_tensor(&Tensor3::zeros(2, 5, 5));
        let weights = Tensor4::from_fn(2, 2, 3, 3, |_, _, _, _| 0.5);
        let bias = [-0.0f32, 1.0];
        for (label, engine) in engines() {
            let want = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
            let got = engine.forward(&input, &weights, Some(&bias), geom);
            let bits = |t: &Tensor3| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got), bits(&want), "{label}");
        }
    }

    /// Accumulators pre-seeded with literal -0.0 take the scalar fallback,
    /// so `forward_into` accumulation parity is bitwise even there.
    #[test]
    fn negative_zero_preseeded_accumulators_are_preserved() {
        let geom = ConvGeometry::new(3, 1, 1);
        let (input, weights, _) = fixtures(17, 70, geom);
        for (label, engine) in engines() {
            let mut want = Tensor3::zeros(10, 9, 11);
            for (i, v) in want.as_mut_slice().iter_mut().enumerate() {
                *v = if i % 3 == 0 { -0.0 } else { 0.25 };
            }
            let mut got = want.clone();
            ScalarEngine.forward_into(&input, &weights, None, geom, &mut want);
            engine.forward_into(&input, &weights, None, geom, &mut got);
            let bits = |t: &Tensor3| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got), bits(&want), "{label}");
        }
    }

    /// `parallel:im2row` composition: im2row bands under thread-parallel
    /// banding stay bitwise equal to scalar at every band count.
    #[test]
    fn banded_im2row_matches_scalar() {
        static IM2ROW: Im2RowEngine = Im2RowEngine::auto();
        let geom = ConvGeometry::new(3, 1, 1);
        let (input, weights, bias) = fixtures(5, 60, geom);
        for threads in [0usize, 1, 2, 3, 8] {
            let banded = ParallelEngine::over("test:parallel-im2row", &IM2ROW).banded(threads);
            let want = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
            let got = banded.forward(&input, &weights, Some(&bias), geom);
            assert_eq!(got.as_slice(), want.as_slice(), "threads {threads}");
        }
    }

    /// The portable and AVX2 micro-kernels agree bitwise (trivially true
    /// off x86_64, where both are the portable path), and the dispatch
    /// contract mirrors the simd engine's.
    #[test]
    fn portable_and_dispatched_paths_agree() {
        let geom = ConvGeometry::new(3, 1, 1);
        let (input, weights, bias) = fixtures(41, 80, geom);
        let auto = Im2RowEngine::auto();
        let portable = Im2RowEngine::portable();
        assert_eq!(
            auto.forward(&input, &weights, Some(&bias), geom).as_slice(),
            portable.forward(&input, &weights, Some(&bias), geom).as_slice(),
        );
        assert_eq!(portable.active_path(), "portable");
        if avx2_available() {
            assert_eq!(auto.active_path(), "avx2");
        } else {
            assert_eq!(auto.active_path(), "portable");
        }
    }

    /// The backward stages inherit the scalar band defaults — pinned so a
    /// future override cannot silently change the engine's contract.
    #[test]
    fn backward_stages_are_the_scalar_reference() {
        let geom = ConvGeometry::new(3, 1, 1);
        let mut s = 3u64;
        let input = SparseFeatureMap::from_tensor(&sparse_tensor(3, 9, 11, 50, &mut s));
        let dout = SparseFeatureMap::from_tensor(&sparse_tensor(10, 9, 11, 20, &mut s));
        let weights = Tensor4::from_fn(10, 3, 3, 3, |_, _, _, _| pseudo(&mut s));
        let masks = input.masks();
        let engine = Im2RowEngine::auto();
        assert_eq!(
            engine.input_grad(&dout, &weights, geom, 9, 11, &masks).as_slice(),
            ScalarEngine
                .input_grad(&dout, &weights, geom, 9, 11, &masks)
                .as_slice(),
        );
        assert_eq!(
            engine.weight_grad(&input, &dout, geom).as_slice(),
            ScalarEngine.weight_grad(&input, &dout, geom).as_slice(),
        );
    }
}
