//! Runtime-dispatched vectorized kernel engine (`"simd"`).
//!
//! [`SimdEngine`] executes the SRC / MSRC / OSRC inner loops across wide
//! lanes while staying **bitwise identical** to
//! [`crate::engine::ScalarEngine`]. The trick is the choice of vector
//! axis: lanes always run across *independent output elements* — output
//! pixels for Forward/GTA, weight-gradient cells for GTW — with the scalar
//! operand (one kernel tap, one gradient value) broadcast, and never
//! across a reduction dimension. Each output element therefore accumulates
//! its contributions in exactly the scalar engine's per-element order, one
//! two-rounding `acc + x·w` at a time (the scalar kernels never fuse into
//! `mul_add`, so neither does this engine — an FMA would change the
//! rounding):
//!
//! * **SRC (Forward)** — for each kernel tap `v` (ascending, the scalar
//!   per-element order), the whole output row takes
//!   `out[ox] += in_dense[ox − pad + v] · w[v]`: a shifted contiguous
//!   *axpy* sweep with the tap broadcast.
//! * **MSRC (GTA)** — the same sweep with the taps walked *descending*
//!   (the scatter direction reverses the per-element order) and a dense
//!   `0.0/1.0` mask factor standing in for the skip:
//!   `din[ix] += m[ix] · (g_dense[ix + pad − v] · w[v])`. Multiplying by
//!   `1.0` is exact and by `0.0` contributes `±0.0`, so results match the
//!   scalar skip bit for bit on finite data.
//! * **OSRC (GTW)** — for each gradient non-zero (ascending, the scalar
//!   per-tap order), all `K` taps take `dw[v] += g · in_dense[base + v]`:
//!   a `K`-lane sweep over the contiguous input window with the gradient
//!   broadcast. Works at any stride.
//!
//! The dense sweeps touch stored zeros the scalar kernels skip; those
//! contribute `x + (±0.0·w) = x` exactly, because an accumulator that
//! starts at `+0.0` can never become `-0.0` under round-to-nearest (an
//! exactly cancelling sum rounds to `+0.0`). The one representable hazard
//! — a caller-supplied literal `-0.0` in the bias or the pre-seeded
//! accumulator — falls back to the scalar band (a cheap one-pass bit scan
//! guards every band), as do strides ≠ 1 on the row sweeps (the gather
//! would be non-contiguous) and rows too sparse to be worth densifying
//! (fewer than one non-zero per lane block on average); every fallback is
//! the scalar code itself, so parity is unconditional.
//!
//! Densification is hoisted **above the band fan-out**: the engine's
//! `prepare_*` hooks build the densified operand map once per engine call
//! into a [`crate::engine::BandContext`], and every band worker borrows it
//! — under `"parallel:simd"` the `B` bands share one `O(C·H·W)` fill
//! instead of redoing it `B` times (the few-percent per-band loss the
//! first release documented). A band invoked without a prepared context
//! (direct band calls) densifies locally, so results never depend on who
//! prepared.
//!
//! Two implementations sit behind one runtime dispatch:
//!
//! * a **portable** lane-blocked path (fixed `[f32; 8]` blocks that LLVM
//!   autovectorizes on every target), and
//! * an **x86_64 AVX2+FMA** path (`#[target_feature]` + `std::arch`
//!   intrinsics, selected per process via `is_x86_feature_detected!`;
//!   `vmulps`/`vaddps` only — the FMA feature is enabled for the encoder
//!   but never used to contract, see above).
//!
//! Both produce identical bits; [`SimdEngine::portable`] pins the portable
//! path for tests and cross-checks. Thread-level parallelism composes
//! through [`crate::engine::ParallelEngine::over`]: the registry's
//! `"parallel:simd"` runs these band workers inside each rayon band.

use crate::compressed::SparseVec;
use crate::engine::{scalar_forward_band, scalar_input_grad_band, BandContext, KernelEngine};
use crate::mask::RowMask;
use crate::msrc::msrc_accumulate;
use crate::osrc::osrc_accumulate;
use crate::rowconv::SparseFeatureMap;
use crate::src::src_accumulate;
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::Tensor4;

/// Vector lane-block width of the portable path (f32 lanes per block, one
/// AVX2 register). Also the chunk-alignment granularity of the parallel
/// element seam.
pub(crate) const LANES: usize = 8;

/// A sparse row is worth the dense sweep once it averages at least one
/// non-zero per vector block: the sweep costs `len / LANES` block ops
/// where the sparse kernel costs `nnz` scalar ops.
const DENSE_CUTOFF_LANES: usize = LANES;

fn dense_worthwhile(nnz: usize, len: usize) -> bool {
    nnz * DENSE_CUTOFF_LANES >= len
}

pub(crate) fn contains_negative_zero(values: &[f32]) -> bool {
    values.iter().any(|v| v.to_bits() == (-0.0f32).to_bits())
}

/// Whether this process supports the AVX2+FMA fast path (shared with the
/// im2row engine's dispatch).
pub(crate) fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// The two vector primitives (portable + AVX2)
// ---------------------------------------------------------------------------

/// `dst[i] += src[i] * w` — multiply then add, two roundings, exactly the
/// scalar kernels' arithmetic.
fn saxpy(avx2: bool, dst: &mut [f32], src: &[f32], w: f32) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only true when runtime detection reported
        // AVX2+FMA support for this process.
        unsafe { saxpy_avx2(dst, src, w) };
        return;
    }
    let _ = avx2;
    saxpy_portable(dst, src, w);
}

/// `dst[i] += mask[i] * (src[i] * w)` with `mask` ∈ {0.0, 1.0}.
fn saxpy_masked(avx2: bool, dst: &mut [f32], src: &[f32], mask: &[f32], w: f32) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert_eq!(dst.len(), mask.len());
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: as in `saxpy`.
        unsafe { saxpy_masked_avx2(dst, src, mask, w) };
        return;
    }
    let _ = avx2;
    saxpy_masked_portable(dst, src, mask, w);
}

/// Portable lane-blocked axpy: fixed-width `[f32; LANES]` blocks keep the
/// loop free of trip-count surprises so LLVM emits one vector multiply and
/// one vector add per block on every target.
fn saxpy_portable(dst: &mut [f32], src: &[f32], w: f32) {
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (db, sb) in (&mut d).zip(&mut s) {
        let db: &mut [f32; LANES] = db.try_into().expect("exact chunk");
        let sb: &[f32; LANES] = sb.try_into().expect("exact chunk");
        for i in 0..LANES {
            db[i] += sb[i] * w;
        }
    }
    for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d1 += *s1 * w;
    }
}

fn saxpy_masked_portable(dst: &mut [f32], src: &[f32], mask: &[f32], w: f32) {
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    let mut m = mask.chunks_exact(LANES);
    for ((db, sb), mb) in (&mut d).zip(&mut s).zip(&mut m) {
        let db: &mut [f32; LANES] = db.try_into().expect("exact chunk");
        let sb: &[f32; LANES] = sb.try_into().expect("exact chunk");
        let mb: &[f32; LANES] = mb.try_into().expect("exact chunk");
        for i in 0..LANES {
            db[i] += mb[i] * (sb[i] * w);
        }
    }
    for ((d1, s1), m1) in d
        .into_remainder()
        .iter_mut()
        .zip(s.remainder())
        .zip(m.remainder())
    {
        *d1 += *m1 * (*s1 * w);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn saxpy_avx2(dst: &mut [f32], src: &[f32], w: f32) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let wv = _mm256_set1_ps(w);
    let mut i = 0usize;
    while i + LANES <= n {
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        let s = _mm256_loadu_ps(src.as_ptr().add(i));
        // Deliberately vmulps + vaddps, not vfmadd: the scalar reference
        // rounds the product before the add.
        let r = _mm256_add_ps(d, _mm256_mul_ps(s, wv));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), r);
        i += LANES;
    }
    while i < n {
        *dst.get_unchecked_mut(i) += *src.get_unchecked(i) * w;
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn saxpy_masked_avx2(dst: &mut [f32], src: &[f32], mask: &[f32], w: f32) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let wv = _mm256_set1_ps(w);
    let mut i = 0usize;
    while i + LANES <= n {
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        let s = _mm256_loadu_ps(src.as_ptr().add(i));
        let m = _mm256_loadu_ps(mask.as_ptr().add(i));
        let r = _mm256_add_ps(d, _mm256_mul_ps(m, _mm256_mul_ps(s, wv)));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), r);
        i += LANES;
    }
    while i < n {
        *dst.get_unchecked_mut(i) += *mask.get_unchecked(i) * (*src.get_unchecked(i) * w);
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Densification scratch
// ---------------------------------------------------------------------------

/// Writes the rows of `fm` selected by `select(nnz, len)` into a dense
/// channel-major buffer (`channels × height × width`); unselected rows are
/// left zero (they are only read through the sparse fallback).
pub(crate) fn densify_map(fm: &SparseFeatureMap, select: impl Fn(&SparseVec) -> bool) -> Vec<f32> {
    let (c, h, w) = (fm.channels(), fm.height(), fm.width());
    let mut dense = vec![0.0f32; c * h * w];
    for ci in 0..c {
        for y in 0..h {
            let row = fm.row(ci, y);
            if select(row) {
                let out = &mut dense[(ci * h + y) * w..(ci * h + y + 1) * w];
                for (ix, val) in row.iter() {
                    out[ix] = val;
                }
            }
        }
    }
    dense
}

/// Densifies every dense-worthy row of `fm`, or `None` when no row
/// qualifies for the vector sweeps (the whole map routes to the sparse
/// kernels and no buffer is needed).
fn densify_worthy(fm: &SparseFeatureMap) -> Option<Vec<f32>> {
    let worthy = |row: &SparseVec| dense_worthwhile(row.nnz(), row.len());
    let any = (0..fm.channels()).any(|ci| (0..fm.height()).any(|y| worthy(fm.row(ci, y))));
    any.then(|| densify_map(fm, worthy))
}

/// Expands one channel's row masks into dense `0.0 / 1.0` factors.
fn densify_masks(masks: &[RowMask], ci: usize, in_h: usize, in_w: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), in_h * in_w);
    out.fill(0.0);
    for iy in 0..in_h {
        let mask = &masks[ci * in_h + iy];
        let row = &mut out[iy * in_w..(iy + 1) * in_w];
        for ix in mask.iter() {
            row[ix] = 1.0;
        }
    }
}

// ---------------------------------------------------------------------------
// SimdEngine
// ---------------------------------------------------------------------------

/// The runtime-dispatched vectorized engine, registered as `"simd"` (and,
/// banded across threads, as `"parallel:simd"`).
///
/// ```
/// use sparsetrain_sparse::{registry, SimdEngine};
///
/// let handle = registry::lookup("simd").unwrap();
/// assert_eq!(handle.engine().name(), "simd");
/// // The portable path is always available and bitwise-equal to AVX2.
/// assert_eq!(SimdEngine::portable().active_path(), "portable");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdEngine {
    force_portable: bool,
}

impl SimdEngine {
    /// Engine dispatching to AVX2+FMA when the CPU reports it, the
    /// portable lane-blocked path otherwise.
    pub const fn auto() -> Self {
        Self {
            force_portable: false,
        }
    }

    /// Engine pinned to the portable lane-blocked path (tests,
    /// cross-checks, reproducing non-x86 behaviour on x86).
    pub const fn portable() -> Self {
        Self { force_portable: true }
    }

    fn use_avx2(&self) -> bool {
        !self.force_portable && avx2_available()
    }

    /// Which implementation this engine's sweeps run on right now:
    /// `"avx2"` or `"portable"`. When AVX2 (or FMA) is reported absent —
    /// or the engine was built with [`SimdEngine::portable`] — this is
    /// always `"portable"`.
    pub fn active_path(&self) -> &'static str {
        if self.use_avx2() {
            "avx2"
        } else {
            "portable"
        }
    }
}

impl KernelEngine for SimdEngine {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn prepare_forward(
        &self,
        input: &SparseFeatureMap,
        _weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
    ) -> BandContext {
        let mut ctx = BandContext::empty();
        // When every band will take the scalar fallback anyway (stride ≠ 1,
        // literal -0.0 bias), densifying would be wasted work.
        if geom.stride == 1 && !bias.is_some_and(contains_negative_zero) {
            if let Some(dense) = densify_worthy(input) {
                ctx.set_dense(dense);
            }
        }
        ctx
    }

    fn forward_band(
        &self,
        ctx: &BandContext,
        input: &SparseFeatureMap,
        weights: &Tensor4,
        bias: Option<&[f32]>,
        geom: ConvGeometry,
        oh: usize,
        ow: usize,
        f_lo: usize,
        out_band: &mut [f32],
    ) {
        // Stride ≠ 1 would make the row gather non-contiguous; a literal
        // -0.0 in the bias (or, with no bias to overwrite it, in the
        // pre-seeded accumulator) is only preserved by the scalar skip of
        // zero inputs.
        if geom.stride != 1
            || match bias {
                Some(b) => contains_negative_zero(b),
                None => contains_negative_zero(out_band),
            }
        {
            scalar_forward_band(input, weights, bias, geom, oh, ow, f_lo, out_band);
            return;
        }
        let avx2 = self.use_avx2();
        let (h, w_in, k, pad) = (input.height(), input.width(), geom.kernel, geom.pad);
        // Borrow the densified map the call prepared once above the band
        // fan-out; densify locally only when invoked without one.
        let local;
        let idense: &[f32] = if !ctx.dense().is_empty() {
            ctx.dense()
        } else {
            local = densify_worthy(input).unwrap_or_default();
            &local
        };
        for (bf, plane) in out_band.chunks_mut(oh * ow).enumerate() {
            let fi = f_lo + bf;
            if let Some(b) = bias {
                plane.fill(b[fi]);
            }
            for (oy, out_row) in plane.chunks_mut(ow).enumerate() {
                for u in 0..k {
                    let iy = oy as isize - pad as isize + u as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ci in 0..input.channels() {
                        let row = input.row(ci, iy);
                        let krow = weights.kernel_row(fi, ci, u);
                        if !dense_worthwhile(row.nnz(), row.len()) {
                            src_accumulate(row, krow, geom, out_row);
                            continue;
                        }
                        let in_row = &idense[(ci * h + iy) * w_in..(ci * h + iy + 1) * w_in];
                        // Taps ascending: for a fixed output pixel, ascending
                        // tap index is ascending input index — the scalar
                        // per-element accumulation order.
                        for (v, &w) in krow.iter().enumerate() {
                            if w == 0.0 {
                                continue;
                            }
                            // out[ox] += in[ox - pad + v] * w over the ox
                            // range whose input index is in bounds.
                            let shift = v as isize - pad as isize;
                            let lo = (-shift).max(0) as usize;
                            let hi = (w_in as isize - shift).clamp(0, ow as isize) as usize;
                            if lo < hi {
                                let src =
                                    &in_row[(lo as isize + shift) as usize..(hi as isize + shift) as usize];
                                saxpy(avx2, &mut out_row[lo..hi], src, w);
                            }
                        }
                    }
                }
            }
        }
    }

    fn prepare_input_grad(
        &self,
        dout: &SparseFeatureMap,
        _weights: &Tensor4,
        geom: ConvGeometry,
        _masks: &[RowMask],
        _in_h: usize,
        _in_w: usize,
    ) -> BandContext {
        let mut ctx = BandContext::empty();
        if geom.stride == 1 {
            if let Some(dense) = densify_worthy(dout) {
                ctx.set_dense(dense);
            }
        }
        ctx
    }

    fn input_grad_band(
        &self,
        ctx: &BandContext,
        dout: &SparseFeatureMap,
        weights: &Tensor4,
        geom: ConvGeometry,
        masks: &[RowMask],
        in_h: usize,
        in_w: usize,
        c_lo: usize,
        din_band: &mut [f32],
    ) {
        // Stride ≠ 1 gathers non-contiguously; a pre-seeded -0.0 in the
        // accumulator is only preserved by the scalar skips.
        if geom.stride != 1 || contains_negative_zero(din_band) {
            scalar_input_grad_band(dout, weights, geom, masks, in_h, in_w, c_lo, din_band);
            return;
        }
        let avx2 = self.use_avx2();
        let (k, pad, ow) = (geom.kernel, geom.pad, dout.width());
        let oh = dout.height();
        let local;
        let gdense: &[f32] = if !ctx.dense().is_empty() {
            ctx.dense()
        } else {
            local = densify_worthy(dout).unwrap_or_default();
            &local
        };
        let any_worthy = !gdense.is_empty();
        let worthy = |row: &SparseVec| dense_worthwhile(row.nnz(), row.len());
        // The dense mask factors are per *band channel* (each band touches
        // disjoint channels), so this scratch stays band-local.
        let mut maskf = if any_worthy {
            vec![0.0f32; in_h * in_w]
        } else {
            Vec::new()
        };
        for (bc, plane) in din_band.chunks_mut(in_h * in_w).enumerate() {
            let ci = c_lo + bc;
            if any_worthy {
                densify_masks(masks, ci, in_h, in_w, &mut maskf);
            }
            for fi in 0..dout.channels() {
                for oy in 0..oh {
                    let grow = dout.row(fi, oy);
                    if grow.nnz() == 0 {
                        continue;
                    }
                    for u in 0..k {
                        let iy = oy as isize - pad as isize + u as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        let out_row = &mut plane[iy * in_w..(iy + 1) * in_w];
                        let krow = weights.kernel_row(fi, ci, u);
                        if !worthy(grow) {
                            msrc_accumulate(grow, krow, geom, &masks[ci * in_h + iy], out_row);
                            continue;
                        }
                        let g_row = &gdense[(fi * oh + oy) * ow..(fi * oh + oy + 1) * ow];
                        let m_row = &maskf[iy * in_w..(iy + 1) * in_w];
                        // Taps descending: the scatter reverses the map, so
                        // for a fixed input pixel the scalar order (gradient
                        // non-zeros ascending) is descending tap index.
                        for v in (0..k).rev() {
                            let w = krow[v];
                            if w == 0.0 {
                                continue;
                            }
                            // din[ix] += m[ix]·(g[ix + pad - v]·w) over the
                            // ix range whose gradient index is in bounds.
                            let shift = pad as isize - v as isize;
                            let lo = (-shift).max(0) as usize;
                            let hi = (ow as isize - shift).clamp(0, in_w as isize) as usize;
                            if lo < hi {
                                let src =
                                    &g_row[(lo as isize + shift) as usize..(hi as isize + shift) as usize];
                                saxpy_masked(avx2, &mut out_row[lo..hi], src, &m_row[lo..hi], w);
                            }
                        }
                    }
                }
            }
        }
    }

    fn prepare_weight_grad(
        &self,
        input: &SparseFeatureMap,
        _dout: &SparseFeatureMap,
        _geom: ConvGeometry,
    ) -> BandContext {
        let mut ctx = BandContext::empty();
        if let Some(dense) = densify_worthy(input) {
            ctx.set_dense(dense);
        }
        ctx
    }

    fn weight_grad_band(
        &self,
        ctx: &BandContext,
        input: &SparseFeatureMap,
        dout: &SparseFeatureMap,
        geom: ConvGeometry,
        f_lo: usize,
        dw_band: &mut [f32],
    ) {
        // A pre-seeded -0.0 in the accumulator is only preserved by the
        // scalar skip of zero window positions.
        if contains_negative_zero(dw_band) {
            crate::engine::scalar_weight_grad_band(input, dout, geom, f_lo, dw_band);
            return;
        }
        let avx2 = self.use_avx2();
        let (c, h, w_in) = (input.channels(), input.height(), input.width());
        let (k, stride, pad) = (geom.kernel, geom.stride as isize, geom.pad as isize);
        let local;
        let idense: &[f32] = if !ctx.dense().is_empty() {
            ctx.dense()
        } else {
            local = densify_worthy(input).unwrap_or_default();
            &local
        };
        for (bf, block) in dw_band.chunks_mut(c * k * k).enumerate() {
            let fi = f_lo + bf;
            for ci in 0..c {
                for u in 0..k {
                    let taps = &mut block[(ci * k + u) * k..(ci * k + u + 1) * k];
                    for oy in 0..dout.height() {
                        let iy = (oy * geom.stride) as isize - pad + u as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let irow = input.row(ci, iy as usize);
                        let grow = dout.row(fi, oy);
                        if irow.nnz() == 0 || grow.nnz() == 0 {
                            continue;
                        }
                        if !dense_worthwhile(irow.nnz(), irow.len()) {
                            osrc_accumulate(irow, grow, geom, taps);
                            continue;
                        }
                        let in_row =
                            &idense[(ci * h + iy as usize) * w_in..(ci * h + iy as usize + 1) * w_in];
                        // Gradient non-zeros ascending: the scalar per-tap
                        // accumulation order. All K weight-gradient cells
                        // take the broadcast gradient in one sweep over the
                        // contiguous input window (stride only moves the
                        // window base, the window itself stays contiguous).
                        for (ox, g) in grow.iter() {
                            let base = ox as isize * stride - pad;
                            let v_lo = (-base).max(0).min(k as isize) as usize;
                            let v_hi = (w_in as isize - base).clamp(0, k as isize) as usize;
                            if v_lo < v_hi {
                                let window =
                                    &in_row[(base + v_lo as isize) as usize..(base + v_hi as isize) as usize];
                                saxpy(avx2, &mut taps[v_lo..v_hi], window, g);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ParallelEngine, ScalarEngine};
    use sparsetrain_tensor::Tensor3;

    fn pseudo(seed: &mut u64) -> f32 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((*seed % 2000) as f32 / 1000.0) - 1.0
    }

    fn sparse_tensor(c: usize, h: usize, w: usize, density_pct: u64, seed: &mut u64) -> Tensor3 {
        Tensor3::from_fn(c, h, w, |_, _, _| {
            let v = pseudo(seed);
            let keep = {
                *seed ^= *seed << 13;
                *seed ^= *seed >> 7;
                *seed % 100 < density_pct
            };
            if keep {
                v
            } else {
                0.0
            }
        })
    }

    fn fixtures(
        seed: u64,
        density_pct: u64,
        geom: ConvGeometry,
    ) -> (SparseFeatureMap, Tensor4, Vec<f32>, SparseFeatureMap) {
        let mut s = seed;
        let input = sparse_tensor(3, 9, 11, density_pct, &mut s);
        let weights = Tensor4::from_fn(4, 3, geom.kernel, geom.kernel, |_, _, _, _| {
            // Sprinkle exact zeros so the w == 0 tap skip is exercised.
            let v = pseudo(&mut s);
            if v.abs() < 0.1 {
                0.0
            } else {
                v
            }
        });
        let bias: Vec<f32> = (0..4).map(|_| pseudo(&mut s)).collect();
        let oh = geom.output_extent(9);
        let ow = geom.output_extent(11);
        let dout = sparse_tensor(4, oh, ow, density_pct, &mut s);
        (
            SparseFeatureMap::from_tensor(&input),
            weights,
            bias,
            SparseFeatureMap::from_tensor(&dout),
        )
    }

    fn engines() -> Vec<(&'static str, SimdEngine)> {
        vec![("auto", SimdEngine::auto()), ("portable", SimdEngine::portable())]
    }

    /// Dense and very sparse fixtures at stride 1 and 2 (vector path,
    /// sparse-row fallback, stride fallback): every path must match the
    /// scalar reference bitwise.
    #[test]
    fn simd_matches_scalar_bitwise_on_all_paths() {
        for geom in [
            ConvGeometry::new(3, 1, 1),
            ConvGeometry::new(3, 2, 1),
            ConvGeometry::new(2, 1, 0),
        ] {
            for density in [5u64, 40, 90] {
                let (input, weights, bias, dout) = fixtures(11 + density, density, geom);
                let masks = input.masks();
                for (label, simd) in engines() {
                    let ctx = format!("{label} k={} s={} d={density}", geom.kernel, geom.stride);
                    let want = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
                    let got = simd.forward(&input, &weights, Some(&bias), geom);
                    assert_eq!(got.as_slice(), want.as_slice(), "forward {ctx}");

                    let want = ScalarEngine.input_grad(&dout, &weights, geom, 9, 11, &masks);
                    let got = simd.input_grad(&dout, &weights, geom, 9, 11, &masks);
                    assert_eq!(got.as_slice(), want.as_slice(), "input_grad {ctx}");

                    let want = ScalarEngine.weight_grad(&input, &dout, geom);
                    let got = simd.weight_grad(&input, &dout, geom);
                    assert_eq!(got.as_slice(), want.as_slice(), "weight_grad {ctx}");
                }
            }
        }
    }

    /// The portable and AVX2 implementations agree bitwise (trivially true
    /// off x86_64, where both are the portable path).
    #[test]
    fn portable_and_dispatched_paths_agree() {
        let geom = ConvGeometry::new(3, 1, 1);
        let (input, weights, bias, dout) = fixtures(77, 55, geom);
        let auto = SimdEngine::auto();
        let portable = SimdEngine::portable();
        assert_eq!(
            auto.forward(&input, &weights, Some(&bias), geom).as_slice(),
            portable.forward(&input, &weights, Some(&bias), geom).as_slice(),
        );
        assert_eq!(
            auto.weight_grad(&input, &dout, geom).as_slice(),
            portable.weight_grad(&input, &dout, geom).as_slice(),
        );
    }

    /// Dispatch contract: forcing portable always reports portable, and
    /// when the CPU does not report AVX2+FMA the auto engine must take the
    /// portable path too.
    #[test]
    fn dispatch_reports_portable_when_avx2_absent() {
        assert_eq!(SimdEngine::portable().active_path(), "portable");
        if !avx2_available() {
            assert_eq!(SimdEngine::auto().active_path(), "portable");
        } else {
            assert_eq!(SimdEngine::auto().active_path(), "avx2");
        }
    }

    /// A literal -0.0 bias takes the scalar fallback and survives exactly.
    #[test]
    fn negative_zero_bias_is_preserved() {
        let geom = ConvGeometry::new(3, 1, 1);
        // All-zero input: the output is exactly the bias fill.
        let input = SparseFeatureMap::from_tensor(&Tensor3::zeros(2, 5, 5));
        let weights = Tensor4::from_fn(2, 2, 3, 3, |_, _, _, _| 0.5);
        let bias = [-0.0f32, 1.0];
        for (label, simd) in engines() {
            let want = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
            let got = simd.forward(&input, &weights, Some(&bias), geom);
            let want_bits: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "{label}");
        }
    }

    /// Accumulators pre-seeded with literal -0.0 take the scalar fallback
    /// on every stage, so `*_into` accumulation parity is bitwise even for
    /// that representable corner (the dense sweeps' spurious `+0.0` adds
    /// would otherwise flip the sign bit).
    #[test]
    fn negative_zero_preseeded_accumulators_are_preserved() {
        let geom = ConvGeometry::new(3, 1, 1);
        let (input, weights, _, dout) = fixtures(31, 60, geom);
        let masks = input.masks();
        let seed = |slice: &mut [f32]| {
            for (i, v) in slice.iter_mut().enumerate() {
                *v = if i % 3 == 0 { -0.0 } else { 0.25 };
            }
        };
        for (label, simd) in engines() {
            let mut want = Tensor3::zeros(4, 9, 11);
            seed(want.as_mut_slice());
            let mut got = want.clone();
            ScalarEngine.forward_into(&input, &weights, None, geom, &mut want);
            simd.forward_into(&input, &weights, None, geom, &mut got);
            let bits = |t: &Tensor3| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got), bits(&want), "forward {label}");

            let mut want = Tensor3::zeros(3, 9, 11);
            seed(want.as_mut_slice());
            let mut got = want.clone();
            ScalarEngine.input_grad_into(&dout, &weights, geom, &masks, &mut want);
            simd.input_grad_into(&dout, &weights, geom, &masks, &mut got);
            assert_eq!(bits(&got), bits(&want), "input_grad {label}");

            let mut want = Tensor4::zeros(4, 3, 3, 3);
            seed(want.as_mut_slice());
            let mut got = want.clone();
            ScalarEngine.weight_grad_into(&input, &dout, geom, &mut want);
            simd.weight_grad_into(&input, &dout, geom, &mut got);
            let bits4 = |t: &Tensor4| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits4(&got), bits4(&want), "weight_grad {label}");
        }
    }

    /// `parallel:simd` composition: simd bands under thread-parallel
    /// banding stay bitwise equal to scalar at every band count.
    #[test]
    fn banded_simd_matches_scalar() {
        static SIMD: SimdEngine = SimdEngine::auto();
        let geom = ConvGeometry::new(3, 1, 1);
        let (input, weights, bias, dout) = fixtures(5, 45, geom);
        let masks = input.masks();
        for threads in [0usize, 1, 2, 3, 8] {
            let banded = ParallelEngine::over("test:parallel-simd", &SIMD).banded(threads);
            let want = ScalarEngine.forward(&input, &weights, Some(&bias), geom);
            let got = banded.forward(&input, &weights, Some(&bias), geom);
            assert_eq!(got.as_slice(), want.as_slice(), "threads {threads}");

            let want = ScalarEngine.input_grad(&dout, &weights, geom, 9, 11, &masks);
            let got = banded.input_grad(&dout, &weights, geom, 9, 11, &masks);
            assert_eq!(got.as_slice(), want.as_slice(), "threads {threads}");

            let want = ScalarEngine.weight_grad(&input, &dout, geom);
            let got = banded.weight_grad(&input, &dout, geom);
            assert_eq!(got.as_slice(), want.as_slice(), "threads {threads}");
        }
    }
}
