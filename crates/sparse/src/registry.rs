//! The open, name-keyed engine registry.
//!
//! [`EngineHandle`] is a `Copy` token pairing a stable name with a
//! `&'static dyn KernelEngine` — the unit of engine selection everywhere a
//! backend is configured (`TrainConfig`, `ExecutionContext`, benches,
//! examples, the `SPARSETRAIN_ENGINE` environment variable). Eight engines
//! are registered at startup:
//!
//! | name              | backend                                                      |
//! |-------------------|--------------------------------------------------------------|
//! | `scalar`          | [`crate::engine::ScalarEngine`] — the reference              |
//! | `parallel`        | [`crate::engine::ParallelEngine`] — band-parallel            |
//! | `simd`            | [`crate::simd_engine::SimdEngine`] — AVX2/portable lanes     |
//! | `parallel:simd`   | [`ParallelEngine::over`] — simd inside each rayon band       |
//! | `im2row`          | [`crate::im2row_engine::Im2RowEngine`] — cache-blocked dense |
//! | `parallel:im2row` | [`ParallelEngine::over`] — im2row inside each rayon band     |
//! | `fixed`           | [`crate::fixed_engine::FixedPointEngine`] — Q8.8             |
//! | `auto`            | [`crate::planner::AutoEngine`] — density-adaptive dispatch   |
//!
//! In addition, `fixed:qI.F` names (e.g. `"fixed:q4.12"`) resolve to a
//! [`FixedPointEngine`] in that 16-bit Q-format — parsed, interned and
//! registered on first lookup, so every parameterized format behaves like
//! a built-in afterwards. `I + F` must equal 16 (the sign bit counts
//! toward `I`); malformed specs are rejected with a descriptive
//! [`UnknownEngine`].
//!
//! The set is open: [`register`] adds a backend under a new name at
//! runtime, after which every name-driven selection path (config, env,
//! `FromStr`) resolves it like a built-in.

use crate::engine::{KernelEngine, ParallelEngine, ScalarEngine};
use crate::fixed_engine::FixedPointEngine;
use crate::im2row_engine::Im2RowEngine;
use crate::planner::AutoEngine;
use crate::simd_engine::SimdEngine;
use sparsetrain_tensor::qformat::QFormat;
use std::fmt;
use std::str::FromStr;
use std::sync::{OnceLock, RwLock};

/// Environment variable consulted by [`env_override`]: set it to a
/// registered engine name (`scalar`, `parallel`, `fixed`, …) to select the
/// kernel execution backend without touching code.
pub const ENGINE_ENV: &str = "SPARSETRAIN_ENGINE";

/// A named engine registration — the `Copy` selection token that plumbs
/// through configuration layers.
///
/// Equality is by name: the registry guarantees one engine per name.
#[derive(Clone, Copy)]
pub struct EngineHandle {
    name: &'static str,
    summary: &'static str,
    engine: &'static dyn KernelEngine,
}

impl EngineHandle {
    /// The registered name (`"scalar"`, `"parallel"`, `"fixed"`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description for listings and `--help` output.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// The engine instance this handle resolves to.
    pub fn engine(&self) -> &'static dyn KernelEngine {
        self.engine
    }
}

impl PartialEq for EngineHandle {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for EngineHandle {}

impl fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineHandle").field("name", &self.name).finish()
    }
}

impl fmt::Display for EngineHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl FromStr for EngineHandle {
    type Err = UnknownEngine;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        lookup_or_parse(s)
    }
}

/// Error returned when a name does not resolve in the registry; carries
/// the registered names for a helpful message, plus a parse diagnostic
/// when the name was a malformed parameterized spec (`fixed:…`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEngine {
    name: String,
    known: Vec<&'static str>,
    detail: Option<String>,
}

impl UnknownEngine {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            known: registry().iter().map(EngineHandle::name).collect(),
            detail: None,
        }
    }

    fn with_detail(name: &str, detail: String) -> Self {
        Self {
            detail: Some(detail),
            ..Self::new(name)
        }
    }

    /// The name that failed to resolve.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for UnknownEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.detail {
            Some(detail) => write!(f, "invalid kernel engine {:?}: {detail}", self.name)?,
            None => write!(f, "unknown kernel engine {:?}", self.name)?,
        }
        write!(
            f,
            " (registered: {}; \"fixed:qI.F\" selects a parameterized 16-bit grid, \"auto\" plans \
             per layer/stage and honours a serialized SPARSETRAIN_PLAN)",
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownEngine {}

static SCALAR: ScalarEngine = ScalarEngine;
static PARALLEL: ParallelEngine = ParallelEngine::auto();
static SIMD: SimdEngine = SimdEngine::auto();
static PARALLEL_SIMD: ParallelEngine = ParallelEngine::over("parallel:simd", &SIMD);
static IM2ROW: Im2RowEngine = Im2RowEngine::auto();
static PARALLEL_IM2ROW: ParallelEngine = ParallelEngine::over("parallel:im2row", &IM2ROW);
static FIXED: FixedPointEngine = FixedPointEngine::q8_8();
static AUTO: AutoEngine = AutoEngine;

fn table() -> &'static RwLock<Vec<EngineHandle>> {
    static TABLE: OnceLock<RwLock<Vec<EngineHandle>>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(vec![
            EngineHandle {
                name: "scalar",
                summary: "single-threaded reference; iteration order is the specification",
                engine: &SCALAR,
            },
            EngineHandle {
                name: "parallel",
                summary: "band-parallel across samples and filters, bitwise equal to scalar",
                engine: &PARALLEL,
            },
            EngineHandle {
                name: "simd",
                summary: "vector lanes across output elements (AVX2+FMA when detected, \
                          portable blocks otherwise), bitwise equal to scalar",
                engine: &SIMD,
            },
            EngineHandle {
                name: "parallel:simd",
                summary: "band-parallel across samples and filters with the simd engine \
                          inside each band, bitwise equal to scalar",
                engine: &PARALLEL_SIMD,
            },
            EngineHandle {
                name: "im2row",
                summary: "cache-blocked im2row dense lowering for dense early layers, \
                          bitwise equal to scalar",
                engine: &IM2ROW,
            },
            EngineHandle {
                name: "parallel:im2row",
                summary: "band-parallel across samples and filters with the im2row \
                          lowering inside each band, bitwise equal to scalar",
                engine: &PARALLEL_IM2ROW,
            },
            EngineHandle {
                name: "fixed",
                summary: "Q8.8 fixed-point datapath model mirroring the 16-bit RTL",
                engine: &FIXED,
            },
            EngineHandle {
                name: "auto",
                summary: "density-adaptive selection over the float engines (per-call win-region \
                          heuristic; per-(layer, stage) measure-and-cache through the planner), \
                          bitwise equal to scalar",
                engine: &AUTO,
            },
        ])
    })
}

/// A snapshot of every registered engine, in registration order.
pub fn registry() -> Vec<EngineHandle> {
    table().read().expect("engine registry poisoned").clone()
}

/// Resolves a registered engine by name. Parameterized fixed-point names
/// (`"fixed:qI.F"`, see [`lookup_or_parse`]) are interned on first use;
/// malformed ones resolve to `None` (parse `"…".parse::<EngineHandle>()`
/// for the diagnostic).
pub fn lookup(name: &str) -> Option<EngineHandle> {
    lookup_or_parse(name).ok()
}

fn find(name: &str) -> Option<EngineHandle> {
    table()
        .read()
        .expect("engine registry poisoned")
        .iter()
        .find(|h| h.name == name)
        .copied()
}

/// Resolves a registered engine by name, parsing and interning
/// parameterized `fixed:qI.F` formats on first use (e.g. `"fixed:q4.12"`
/// is a [`FixedPointEngine`] with 4 integer bits — sign included — and 12
/// fractional bits; bare `"fixed"` stays Q8.8).
///
/// # Errors
///
/// Returns [`UnknownEngine`] for unregistered names; for a malformed
/// `fixed:` spec the error carries a parse diagnostic instead of the
/// registered-name list.
pub fn lookup_or_parse(name: &str) -> Result<EngineHandle, UnknownEngine> {
    if let Some(handle) = find(name) {
        return Ok(handle);
    }
    if name.starts_with("fixed:") {
        return match parse_fixed_spec(name) {
            Ok(fmt) => Ok(intern_fixed(name, fmt)),
            Err(detail) => Err(UnknownEngine::with_detail(name, detail)),
        };
    }
    Err(UnknownEngine::new(name))
}

/// Parses the `qI.F` payload of a `fixed:qI.F` engine name into a 16-bit
/// Q-format.
fn parse_fixed_spec(name: &str) -> Result<QFormat, String> {
    let spec = name.strip_prefix("fixed:").expect("caller checked prefix");
    let usage = "expected \"fixed:qI.F\" with I integer bits (sign included) and F \
                 fractional bits summing to 16, e.g. \"fixed:q4.12\"";
    let digits = spec.strip_prefix('q').ok_or_else(|| usage.to_string())?;
    let (int_s, frac_s) = digits.split_once('.').ok_or_else(|| usage.to_string())?;
    let int: u32 = int_s.parse().map_err(|_| usage.to_string())?;
    let frac: u32 = frac_s.parse().map_err(|_| usage.to_string())?;
    if int.checked_add(frac) != Some(16) {
        return Err(format!("q{int}.{frac} is not a 16-bit format ({usage})"));
    }
    if frac > 15 {
        return Err(format!("q{int}.{frac} leaves no sign/integer bit ({usage})"));
    }
    Ok(QFormat::new(frac))
}

/// Registers a parsed fixed-point format under its spelled-out name,
/// leaking one engine + name per distinct format (bounded: at most 16
/// valid specs exist). Racing interns resolve to whichever registration
/// landed first.
fn intern_fixed(name: &str, fmt: QFormat) -> EngineHandle {
    let engine: &'static FixedPointEngine = Box::leak(Box::new(FixedPointEngine::new(fmt)));
    let summary: &'static str = Box::leak(
        format!(
            "Q{}.{} fixed-point datapath model (parameterized \"fixed\" variant)",
            16 - fmt.frac_bits(),
            fmt.frac_bits()
        )
        .into_boxed_str(),
    );
    let name: &'static str = Box::leak(name.to_string().into_boxed_str());
    match register(name, summary, engine) {
        Ok(handle) => handle,
        Err(existing) => existing,
    }
}

/// Registers a new engine under `name`, opening it to every name-driven
/// selection path (`TrainConfig::with_engine_name`, [`ENGINE_ENV`],
/// `FromStr`).
///
/// # Errors
///
/// Returns the existing handle as an error when `name` is already taken —
/// registration never silently shadows a backend.
pub fn register(
    name: &'static str,
    summary: &'static str,
    engine: &'static dyn KernelEngine,
) -> Result<EngineHandle, EngineHandle> {
    let mut t = table().write().expect("engine registry poisoned");
    if let Some(existing) = t.iter().find(|h| h.name == name) {
        return Err(*existing);
    }
    let handle = EngineHandle {
        name,
        summary,
        engine,
    };
    t.push(handle);
    Ok(handle)
}

/// Reads the [`ENGINE_ENV`] environment override: `Ok(None)` when unset or
/// empty, `Ok(Some(handle))` for a registered name.
///
/// # Errors
///
/// Returns [`UnknownEngine`] when the variable names an unregistered
/// engine.
pub fn env_override() -> Result<Option<EngineHandle>, UnknownEngine> {
    match std::env::var(ENGINE_ENV) {
        Ok(name) if !name.is_empty() => name.parse().map(Some),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowconv::SparseFeatureMap;
    use sparsetrain_tensor::conv::ConvGeometry;
    use sparsetrain_tensor::{Tensor3, Tensor4};

    #[test]
    fn builtin_engines_resolve_by_name() {
        for name in [
            "scalar",
            "parallel",
            "simd",
            "parallel:simd",
            "im2row",
            "parallel:im2row",
            "fixed",
            "auto",
        ] {
            let handle = lookup(name).expect(name);
            assert_eq!(handle.name(), name);
            assert_eq!(handle.engine().name(), name);
            assert_eq!(handle.to_string(), name);
            assert!(!handle.summary().is_empty());
        }
        assert!(lookup("warp-drive").is_none());
    }

    #[test]
    fn parameterized_fixed_formats_resolve_and_intern() {
        let handle = lookup("fixed:q4.12").expect("valid spec");
        assert_eq!(handle.name(), "fixed:q4.12");
        assert!(handle.summary().contains("Q4.12"));
        // Second lookup returns the interned registration, not a new one.
        assert_eq!(lookup("fixed:q4.12"), Some(handle));
        assert!(registry().contains(&handle));
        // The format is applied: Q4.12 has ε = 2⁻¹², so 0.51 stays 0.51
        // only up to that grid; a coarse q14.2 rounds it to 0.5.
        let coarse = lookup("fixed:q14.2").expect("valid spec");
        let input = SparseFeatureMap::from_tensor(&Tensor3::from_vec(1, 1, 1, vec![0.51]));
        let weights = Tensor4::from_vec(1, 1, 1, 1, vec![1.0]);
        let out = coarse
            .engine()
            .forward(&input, &weights, None, ConvGeometry::unit());
        assert_eq!(out.get(0, 0, 0), 0.5);
        // `fixed:q8.8` is the parameterized spelling of the built-in grid.
        let q88 = lookup("fixed:q8.8").expect("valid spec");
        assert_ne!(q88, lookup("fixed").unwrap(), "distinct registration");
        assert_eq!(q88.engine().name(), "fixed");
    }

    #[test]
    fn malformed_fixed_specs_are_rejected_with_detail() {
        for bad in [
            "fixed:q4.11",         // doesn't sum to 16
            "fixed:q0.16",         // no sign bit left
            "fixed:q8",            // missing fraction
            "fixed:8.8",           // missing the q
            "fixed:qx.y",          // not numbers
            "fixed:",              // empty spec
            "fixed:q4294967295.1", // I + F overflows u32
        ] {
            assert!(lookup(bad).is_none(), "{bad} must not resolve");
            let err = bad.parse::<EngineHandle>().unwrap_err();
            assert_eq!(err.name(), bad);
            let msg = err.to_string();
            assert!(
                msg.contains("fixed:qI.F") && msg.contains("invalid kernel engine"),
                "unhelpful error for {bad}: {msg}"
            );
        }
    }

    #[test]
    fn from_str_reports_known_names() {
        let handle: EngineHandle = "parallel".parse().unwrap();
        assert_eq!(handle.name(), "parallel");
        let err = "warp-drive".parse::<EngineHandle>().unwrap_err();
        assert_eq!(err.name(), "warp-drive");
        let msg = err.to_string();
        for name in ["scalar", "parallel", "fixed", "auto"] {
            assert!(msg.contains(name), "{msg}");
        }
        // A typoed SPARSETRAIN_ENGINE is self-diagnosing: the message also
        // names the parameterized and planned selection specs.
        assert!(msg.contains("fixed:qI.F"), "{msg}");
        assert!(msg.contains("SPARSETRAIN_PLAN"), "{msg}");
    }

    #[test]
    fn registry_is_open_to_new_backends() {
        // A custom backend registered at runtime resolves through every
        // name-driven path exactly like a built-in.
        static CUSTOM: ScalarEngine = ScalarEngine;
        let handle =
            register("test-custom", "scalar re-registered under a test name", &CUSTOM).expect("fresh name");
        assert_eq!(lookup("test-custom"), Some(handle));
        assert!(registry().contains(&handle));
        // Duplicate names are rejected with the existing registration.
        assert_eq!(register("test-custom", "dup", &CUSTOM), Err(handle));
        assert_eq!(register("scalar", "dup", &CUSTOM).unwrap_err().name(), "scalar");
        // The handle executes like any other engine.
        let input = SparseFeatureMap::from_tensor(&Tensor3::from_fn(1, 3, 3, |_, y, x| (y * x) as f32));
        let weights = Tensor4::from_fn(1, 1, 1, 1, |_, _, _, _| 2.0);
        let out = handle
            .engine()
            .forward(&input, &weights, None, ConvGeometry::unit());
        assert_eq!(out.get(0, 2, 2), 8.0);
    }
}
