//! The open, name-keyed engine registry.
//!
//! [`EngineHandle`] is a `Copy` token pairing a stable name with a
//! `&'static dyn KernelEngine` — the unit of engine selection everywhere a
//! backend is configured (`TrainConfig`, `ExecutionContext`, benches,
//! examples, the `SPARSETRAIN_ENGINE` environment variable). Three engines
//! are registered at startup:
//!
//! | name       | backend                                             |
//! |------------|-----------------------------------------------------|
//! | `scalar`   | [`crate::engine::ScalarEngine`] — the reference     |
//! | `parallel` | [`crate::engine::ParallelEngine`] — band-parallel   |
//! | `fixed`    | [`crate::fixed_engine::FixedPointEngine`] — Q8.8    |
//!
//! The set is open: [`register`] adds a backend under a new name at
//! runtime, after which every name-driven selection path (config, env,
//! `FromStr`) resolves it like a built-in.

use crate::engine::{KernelEngine, ParallelEngine, ScalarEngine};
use crate::fixed_engine::FixedPointEngine;
use std::fmt;
use std::str::FromStr;
use std::sync::{OnceLock, RwLock};

/// Environment variable consulted by [`env_override`]: set it to a
/// registered engine name (`scalar`, `parallel`, `fixed`, …) to select the
/// kernel execution backend without touching code.
pub const ENGINE_ENV: &str = "SPARSETRAIN_ENGINE";

/// A named engine registration — the `Copy` selection token that plumbs
/// through configuration layers.
///
/// Equality is by name: the registry guarantees one engine per name.
#[derive(Clone, Copy)]
pub struct EngineHandle {
    name: &'static str,
    summary: &'static str,
    engine: &'static dyn KernelEngine,
}

impl EngineHandle {
    /// The registered name (`"scalar"`, `"parallel"`, `"fixed"`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description for listings and `--help` output.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// The engine instance this handle resolves to.
    pub fn engine(&self) -> &'static dyn KernelEngine {
        self.engine
    }
}

impl PartialEq for EngineHandle {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for EngineHandle {}

impl fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineHandle").field("name", &self.name).finish()
    }
}

impl fmt::Display for EngineHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl FromStr for EngineHandle {
    type Err = UnknownEngine;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        lookup(s).ok_or_else(|| UnknownEngine::new(s))
    }
}

/// Error returned when a name does not resolve in the registry; carries
/// the registered names for a helpful message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEngine {
    name: String,
    known: Vec<&'static str>,
}

impl UnknownEngine {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            known: registry().iter().map(EngineHandle::name).collect(),
        }
    }

    /// The name that failed to resolve.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for UnknownEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown kernel engine {:?} (registered: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownEngine {}

static SCALAR: ScalarEngine = ScalarEngine;
static PARALLEL: ParallelEngine = ParallelEngine::auto();
static FIXED: FixedPointEngine = FixedPointEngine::q8_8();

fn table() -> &'static RwLock<Vec<EngineHandle>> {
    static TABLE: OnceLock<RwLock<Vec<EngineHandle>>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(vec![
            EngineHandle {
                name: "scalar",
                summary: "single-threaded reference; iteration order is the specification",
                engine: &SCALAR,
            },
            EngineHandle {
                name: "parallel",
                summary: "band-parallel across samples and filters, bitwise equal to scalar",
                engine: &PARALLEL,
            },
            EngineHandle {
                name: "fixed",
                summary: "Q8.8 fixed-point datapath model mirroring the 16-bit RTL",
                engine: &FIXED,
            },
        ])
    })
}

/// A snapshot of every registered engine, in registration order.
pub fn registry() -> Vec<EngineHandle> {
    table().read().expect("engine registry poisoned").clone()
}

/// Resolves a registered engine by name.
pub fn lookup(name: &str) -> Option<EngineHandle> {
    table()
        .read()
        .expect("engine registry poisoned")
        .iter()
        .find(|h| h.name == name)
        .copied()
}

/// Registers a new engine under `name`, opening it to every name-driven
/// selection path (`TrainConfig::with_engine_name`, [`ENGINE_ENV`],
/// `FromStr`).
///
/// # Errors
///
/// Returns the existing handle as an error when `name` is already taken —
/// registration never silently shadows a backend.
pub fn register(
    name: &'static str,
    summary: &'static str,
    engine: &'static dyn KernelEngine,
) -> Result<EngineHandle, EngineHandle> {
    let mut t = table().write().expect("engine registry poisoned");
    if let Some(existing) = t.iter().find(|h| h.name == name) {
        return Err(*existing);
    }
    let handle = EngineHandle {
        name,
        summary,
        engine,
    };
    t.push(handle);
    Ok(handle)
}

/// Reads the [`ENGINE_ENV`] environment override: `Ok(None)` when unset or
/// empty, `Ok(Some(handle))` for a registered name.
///
/// # Errors
///
/// Returns [`UnknownEngine`] when the variable names an unregistered
/// engine.
pub fn env_override() -> Result<Option<EngineHandle>, UnknownEngine> {
    match std::env::var(ENGINE_ENV) {
        Ok(name) if !name.is_empty() => name.parse().map(Some),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowconv::SparseFeatureMap;
    use sparsetrain_tensor::conv::ConvGeometry;
    use sparsetrain_tensor::{Tensor3, Tensor4};

    #[test]
    fn builtin_engines_resolve_by_name() {
        for (name, expect) in [("scalar", "scalar"), ("parallel", "parallel"), ("fixed", "fixed")] {
            let handle = lookup(name).expect(name);
            assert_eq!(handle.name(), expect);
            assert_eq!(handle.engine().name(), expect);
            assert_eq!(handle.to_string(), expect);
            assert!(!handle.summary().is_empty());
        }
        assert!(lookup("simd").is_none());
    }

    #[test]
    fn from_str_reports_known_names() {
        let handle: EngineHandle = "parallel".parse().unwrap();
        assert_eq!(handle.name(), "parallel");
        let err = "warp-drive".parse::<EngineHandle>().unwrap_err();
        assert_eq!(err.name(), "warp-drive");
        let msg = err.to_string();
        for name in ["scalar", "parallel", "fixed"] {
            assert!(msg.contains(name), "{msg}");
        }
    }

    #[test]
    fn registry_is_open_to_new_backends() {
        // A custom backend registered at runtime resolves through every
        // name-driven path exactly like a built-in.
        static CUSTOM: ScalarEngine = ScalarEngine;
        let handle =
            register("test-custom", "scalar re-registered under a test name", &CUSTOM).expect("fresh name");
        assert_eq!(lookup("test-custom"), Some(handle));
        assert!(registry().contains(&handle));
        // Duplicate names are rejected with the existing registration.
        assert_eq!(register("test-custom", "dup", &CUSTOM), Err(handle));
        assert_eq!(register("scalar", "dup", &CUSTOM).unwrap_err().name(), "scalar");
        // The handle executes like any other engine.
        let input = SparseFeatureMap::from_tensor(&Tensor3::from_fn(1, 3, 3, |_, y, x| (y * x) as f32));
        let weights = Tensor4::from_fn(1, 1, 1, 1, |_, _, _, _| 2.0);
        let out = handle
            .engine()
            .forward(&input, &weights, None, ConvGeometry::unit());
        assert_eq!(out.get(0, 2, 2), 8.0);
    }
}
