//! Compressed sparse row vectors and the SparseTrain 1-D convolution kernels.
//!
//! The paper's dataflow (§IV) decomposes every 2-D convolution of CNN
//! training into 1-D row convolutions, one of three flavours:
//!
//! * [`src::src_conv`] — **SRC** (Sparse Row Convolution): the Forward step.
//!   A sparse activation row is convolved with a short dense kernel row.
//! * [`msrc::msrc_conv`] — **MSRC** (Masked SRC): the GTA step. A sparse
//!   output-gradient row is convolved with a (rotated) kernel row, and
//!   output positions that the downstream ReLU mask will zero anyway are
//!   skipped entirely.
//! * [`osrc::osrc_conv`] — **OSRC** (Output-Store Row Convolution): the GTW
//!   step. Two sparse rows are correlated; only `K` output positions exist
//!   and are held in a scratchpad for the whole convolution.
//!
//! [`rowconv`] rebuilds the full 2-D convolutions of all three training
//! stages from these primitives and is validated against the dense reference
//! in `sparsetrain-tensor`; [`work`] provides the analytic PE cycle model
//! for each primitive, which the cycle-exact simulator is checked against.
//!
//! # The execution engine layer
//!
//! All three kernels expose *accumulate-into-scratch* APIs
//! ([`src::src_accumulate`], [`msrc::msrc_accumulate`],
//! [`osrc::osrc_accumulate`]) that write into caller-provided slices: the
//! hot loops never touch the heap. [`engine`] builds the layer-level
//! execution seam on top of them:
//!
//! * [`engine::KernelEngine`] — the trait every backend implements
//!   (Forward / GTA / GTW of one layer, accumulating into caller tensors),
//! * [`engine::ScalarEngine`] — the reference semantics; its iteration
//!   order *is* the floating-point specification,
//! * [`engine::ParallelEngine`] — band-parallel over filters/channels,
//!   bitwise identical to the scalar engine (disjoint output bands, same
//!   per-row order),
//! * [`engine::Workspace`] — reusable scratch buffers for row-at-a-time
//!   callers,
//! * [`engine::EngineKind`] — the `Copy` selector that plumbs through
//!   `Conv2d`, `Trainer` and the dataflow executor.
//!
//! [`rowconv`]'s `*_with` functions run any engine; the plain functions are
//! the scalar-engine compatibility wrappers. Follow-on backends (SIMD,
//! fixed-point) implement [`engine::KernelEngine`] and slot into the same
//! plumbing.

pub mod compressed;
pub mod engine;
pub mod formats;
pub mod mask;
pub mod msrc;
pub mod osrc;
pub mod rowconv;
pub mod src;
pub mod work;

pub use compressed::SparseVec;
pub use engine::{EngineKind, KernelEngine, ParallelEngine, ScalarEngine, Workspace};
pub use mask::RowMask;
