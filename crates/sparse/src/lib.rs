//! Compressed sparse row vectors and the SparseTrain 1-D convolution kernels.
//!
//! The paper's dataflow (§IV) decomposes every 2-D convolution of CNN
//! training into 1-D row convolutions, one of three flavours:
//!
//! * [`src::src_conv`] — **SRC** (Sparse Row Convolution): the Forward step.
//!   A sparse activation row is convolved with a short dense kernel row.
//! * [`msrc::msrc_conv`] — **MSRC** (Masked SRC): the GTA step. A sparse
//!   output-gradient row is convolved with a (rotated) kernel row, and
//!   output positions that the downstream ReLU mask will zero anyway are
//!   skipped entirely.
//! * [`osrc::osrc_conv`] — **OSRC** (Output-Store Row Convolution): the GTW
//!   step. Two sparse rows are correlated; only `K` output positions exist
//!   and are held in a scratchpad for the whole convolution.
//!
//! [`rowconv`] rebuilds the full 2-D convolutions of all three training
//! stages from these primitives and is validated against the dense reference
//! in `sparsetrain-tensor`; [`work`] provides the analytic PE cycle model
//! for each primitive, which the cycle-exact simulator is checked against.
//!
//! # The execution engine layer
//!
//! All three kernels expose *accumulate-into-scratch* APIs
//! ([`src::src_accumulate`], [`msrc::msrc_accumulate`],
//! [`osrc::osrc_accumulate`]) that write into caller-provided slices: the
//! hot loops never touch the heap. [`engine`] builds the layer-level
//! execution seam on top of them:
//!
//! * [`engine::KernelEngine`] — the trait every backend implements. The
//!   required methods execute Forward / GTA / GTW of one sample,
//!   accumulating into caller tensors; the provided **batch entry points**
//!   (`forward_batch_into`, `input_grad_batch_into`,
//!   `weight_grad_batch_into`) stream a whole batch through one engine
//!   call, defaulting to sample-order fallbacks that every override must
//!   match bit for bit.
//! * [`engine::ScalarEngine`] — the reference semantics; its iteration
//!   order *is* the floating-point specification.
//! * [`engine::ParallelEngine`] — band-parallel over the batch's
//!   `samples × filters` (or channels) on the batched paths, so multi-core
//!   speedup scales with batch size as well as layer width; bitwise
//!   identical to the scalar engine (disjoint output bands, same per-row
//!   order). Bands delegate to an **inner engine** through the trait's
//!   band methods ([`KernelEngine::forward_band`] and friends), so
//!   thread-level and lane-level parallelism compose.
//! * [`engine::BandContext`] — the **band-context seam**: per-call operand
//!   state (densified rows, im2row patch matrices, engine-specific
//!   payloads) built exactly once by the inner engine's `prepare_*` hooks
//!   ([`KernelEngine::prepare_forward`] and friends) *above* the band
//!   fan-out, then shared by reference across every band — so banding an
//!   engine never multiplies its per-call operand transformations.
//! * [`simd_engine::SimdEngine`] — the vectorized backend: lanes run
//!   across *independent output elements* (output pixels, weight-gradient
//!   cells) with the scalar operand broadcast, never across a reduction,
//!   so every element keeps the scalar per-element accumulation order and
//!   the engine stays bitwise identical to the reference. Runtime
//!   dispatch picks x86_64 AVX2+FMA intrinsics when the CPU reports them
//!   and a portable `[f32; 8]` lane-blocked path otherwise; rows too
//!   sparse to densify, strides ≠ 1 on the row sweeps, and `-0.0` biases
//!   fall back to the scalar code itself.
//! * [`im2row_engine::Im2RowEngine`] — the cache-blocked dense lowering
//!   for dense early layers: receptive fields are materialized once per
//!   call into `(u, ci, v)`-ordered patch rows (the scalar accumulation
//!   order, so parity stays bitwise) inside the [`engine::BandContext`],
//!   and a register-tiled micro-kernel reduces each patch row against
//!   eight filters at a time. Output rows fed by rows below the density
//!   cutoff, strides ≠ 1 and `-0.0` seeds keep the sparse scalar path.
//! * [`fixed_engine::FixedPointEngine`] — the Q8.8 datapath model
//!   mirroring the paper's 16-bit RTL, built on
//!   `sparsetrain_tensor::qformat`. Other 16-bit grids resolve by name:
//!   `"fixed:q4.12"` interns a Q4.12 engine on first lookup.
//! * [`engine::Workspace`] — reusable scratch buffers for row-at-a-time
//!   callers.
//!
//! Selection is **name-keyed and open**: [`registry`] maps `"scalar"`,
//! `"parallel"`, `"simd"`, `"parallel:simd"`, `"im2row"`,
//! `"parallel:im2row"`, `"fixed"`, `"fixed:qI.F"`, `"auto"` —
//! plus any backend added with
//! [`registry::register`] — to [`registry::EngineHandle`] tokens, resolved
//! from strings (`FromStr`), configuration, or the `SPARSETRAIN_ENGINE`
//! environment variable ([`registry::env_override`]). A resolved engine
//! travels as a [`context::ExecutionContext`] (engine + workspace), which
//! `sparsetrain-nn` threads through every `Layer::forward`/`backward` and
//! `sparsetrain-core` through the dataflow executor — no call site ever
//! re-resolves a token.
//!
//! [`planner`] closes the loop the paper's scheduler closes in hardware:
//! operand density differs per layer and per stage and keeps falling as
//! pruning bites, and the engines have *disjoint* win regions (im2row on
//! dense forward legs, simd at mid density, the sparse scalar kernels on
//! heavily pruned backward operands). A [`planner::Plan`] maps
//! `(layer, stage)` cells to engines; the `"auto"` engine
//! ([`planner::AutoEngine`]) dispatches per call on observed density, and
//! a planned [`ExecutionContext`] upgrades that to measure-and-cache: the
//! first execution of each cell races every bitwise-safe candidate and
//! freezes the fastest, later executions replay the frozen plan (or a
//! plan file named by `SPARSETRAIN_PLAN`). Every candidate is bitwise
//! identical to the scalar reference, so planning affects speed, never
//! results.

pub mod compressed;
pub mod context;
pub mod engine;
pub mod fixed_engine;
pub mod formats;
pub mod im2row_engine;
pub mod mask;
pub mod msrc;
pub mod osrc;
pub mod plan_program;
pub mod planner;
pub mod registry;
pub mod rowconv;
pub mod simd_engine;
pub mod src;
pub mod work;

pub use compressed::SparseVec;
pub use context::ExecutionContext;
pub use engine::{BandContext, KernelEngine, ParallelEngine, ScalarEngine, Workspace};
pub use fixed_engine::FixedPointEngine;
pub use im2row_engine::Im2RowEngine;
pub use mask::RowMask;
pub use plan_program::{ExecutionProgram, PlanVm};
pub use planner::{AutoEngine, Plan, PlanError, Planner, Stage, PLAN_ENV};
pub use registry::{EngineHandle, UnknownEngine, ENGINE_ENV};
pub use simd_engine::SimdEngine;
