//! Compressed sparse row vectors and the SparseTrain 1-D convolution kernels.
//!
//! The paper's dataflow (§IV) decomposes every 2-D convolution of CNN
//! training into 1-D row convolutions, one of three flavours:
//!
//! * [`src::src_conv`] — **SRC** (Sparse Row Convolution): the Forward step.
//!   A sparse activation row is convolved with a short dense kernel row.
//! * [`msrc::msrc_conv`] — **MSRC** (Masked SRC): the GTA step. A sparse
//!   output-gradient row is convolved with a (rotated) kernel row, and
//!   output positions that the downstream ReLU mask will zero anyway are
//!   skipped entirely.
//! * [`osrc::osrc_conv`] — **OSRC** (Output-Store Row Convolution): the GTW
//!   step. Two sparse rows are correlated; only `K` output positions exist
//!   and are held in a scratchpad for the whole convolution.
//!
//! [`rowconv`] rebuilds the full 2-D convolutions of all three training
//! stages from these primitives and is validated against the dense reference
//! in `sparsetrain-tensor`; [`work`] provides the analytic PE cycle model
//! for each primitive, which the cycle-exact simulator is checked against.

pub mod compressed;
pub mod formats;
pub mod mask;
pub mod msrc;
pub mod osrc;
pub mod rowconv;
pub mod src;
pub mod work;

pub use compressed::SparseVec;
pub use mask::RowMask;
