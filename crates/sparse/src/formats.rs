//! Storage-format study: how should compressed rows be encoded?
//!
//! The PPU compresses every result row before it returns to the global
//! buffer (§V), and the machine model prices that traffic through
//! `OperandFormat`. The 25%-overhead offset encoding it assumes is one
//! point in a space; this module costs the standard alternatives exactly
//! so the choice is auditable:
//!
//! * **Offset+value** (SCNN-style): 4-bit offset deltas packed four per
//!   16-bit word, plus one word per value. Overhead grows with *runs of
//!   zeros longer than 15* (escape deltas).
//! * **Bitmap**: one presence bit per position plus the packed values.
//!   Overhead is fixed at `len/16` words regardless of density.
//! * **Run-length**: alternating (zero-run, literal-run) byte headers.
//!   Wins on long runs, loses on scattered singletons.
//! * **Dense**: one word per position — the baseline's raw layout.
//!
//! The crossover structure (bitmap beats offsets above ~25% density,
//! dense beats everything above ~80%) is asserted by the tests and
//! printed by the `sweep_format` binary.
//!
//! # Example
//!
//! ```
//! use sparsetrain_sparse::formats::{storage_words, RowFormat};
//! use sparsetrain_sparse::SparseVec;
//!
//! let row = SparseVec::from_dense(&[0.0, 1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0]);
//! assert_eq!(storage_words(&row, RowFormat::Dense), 8);
//! assert!(storage_words(&row, RowFormat::OffsetValue) < 8);
//! ```

use crate::compressed::SparseVec;

/// A row storage format, costed in 16-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowFormat {
    /// One word per position, zeros included.
    Dense,
    /// Values + 4-bit offset deltas (escape delta 15 for longer gaps),
    /// packed four deltas per word.
    OffsetValue,
    /// Values + one presence bit per position.
    Bitmap,
    /// Byte-granular run-length headers (zero-run length, literal-run
    /// length), two headers per word, plus the literal values.
    RunLength,
}

impl RowFormat {
    /// All formats, for sweeps.
    pub const ALL: [RowFormat; 4] = [
        RowFormat::Dense,
        RowFormat::OffsetValue,
        RowFormat::Bitmap,
        RowFormat::RunLength,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            RowFormat::Dense => "dense",
            RowFormat::OffsetValue => "offset+value",
            RowFormat::Bitmap => "bitmap",
            RowFormat::RunLength => "run-length",
        }
    }
}

/// Number of 4-bit delta slots needed to encode the gap structure of a
/// row: one slot per non-zero plus one escape slot per 15 positions of
/// preceding zero-run.
fn offset_delta_slots(row: &SparseVec) -> u64 {
    let mut slots = 0u64;
    let mut prev: i64 = -1;
    for (pos, _) in row.iter() {
        let gap = (pos as i64 - prev - 1) as u64;
        slots += gap / 15; // escape deltas for long gaps
        slots += 1;
        prev = pos as i64;
    }
    slots
}

/// Zero-run / literal-run segments of a row, byte-header granularity
/// (runs longer than 255 split).
fn rle_headers(row: &SparseVec) -> u64 {
    let mut headers = 0u64;
    let mut prev: i64 = -1;
    let mut literal_open = false;
    for (pos, _) in row.iter() {
        let gap = (pos as i64 - prev - 1) as u64;
        if gap > 0 || prev < 0 {
            // Close any literal run, open zero-run header(s) + literal.
            headers += 1 + gap / 255; // zero-run header(s)
            headers += 1; // new literal header
            literal_open = true;
        } else if !literal_open {
            headers += 1;
            literal_open = true;
        }
        // Literal runs longer than 255 need extra headers; approximate by
        // one header per 255 consecutive non-zeros, folded in below.
        prev = pos as i64;
    }
    // Tail zero-run (if the row does not end on a non-zero).
    if let Some((last, _)) = row.iter().last() {
        let tail = (row.len() as i64 - 1 - last as i64) as u64;
        headers += tail.div_ceil(255).min(1) + tail / 255;
    } else if !row.is_empty() {
        headers += (row.len() as u64).div_ceil(255);
    }
    headers + row.nnz() as u64 / 255
}

/// Storage cost of one row under `format`, in 16-bit words.
pub fn storage_words(row: &SparseVec, format: RowFormat) -> u64 {
    let nnz = row.nnz() as u64;
    let len = row.len() as u64;
    match format {
        RowFormat::Dense => len,
        RowFormat::OffsetValue => nnz + offset_delta_slots(row).div_ceil(4),
        RowFormat::Bitmap => nnz + len.div_ceil(16),
        RowFormat::RunLength => nnz + rle_headers(row).div_ceil(2),
    }
}

/// The cheapest format for one row, with its cost.
pub fn best_format(row: &SparseVec) -> (RowFormat, u64) {
    RowFormat::ALL
        .iter()
        .map(|&f| (f, storage_words(row, f)))
        .min_by_key(|&(_, w)| w)
        .expect("ALL is non-empty")
}

/// Compression ratio of `format` relative to dense storage (1.0 for an
/// empty row).
pub fn compression_ratio(row: &SparseVec, format: RowFormat) -> f64 {
    if row.is_empty() {
        return 1.0;
    }
    row.len() as f64 / storage_words(row, format).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_with_density(len: usize, every: usize) -> SparseVec {
        let dense: Vec<f32> = (0..len).map(|i| if i % every == 0 { 1.0 } else { 0.0 }).collect();
        SparseVec::from_dense(&dense)
    }

    #[test]
    fn dense_cost_is_length() {
        let row = row_with_density(64, 3);
        assert_eq!(storage_words(&row, RowFormat::Dense), 64);
    }

    #[test]
    fn empty_row_costs_almost_nothing_compressed() {
        let row = SparseVec::zeros(256);
        assert_eq!(storage_words(&row, RowFormat::OffsetValue), 0);
        assert_eq!(storage_words(&row, RowFormat::Bitmap), 16); // the bitmap itself
        assert!(storage_words(&row, RowFormat::RunLength) <= 1);
        assert_eq!(storage_words(&row, RowFormat::Dense), 256);
    }

    #[test]
    fn full_row_prefers_dense() {
        let row = row_with_density(64, 1);
        let (best, words) = best_format(&row);
        assert_eq!(words, 64);
        // Dense and RLE tie at nnz + 1 header vs len; dense must be
        // among the minima.
        assert!(storage_words(&row, RowFormat::Dense) <= storage_words(&row, best) + 1);
        assert!(storage_words(&row, RowFormat::Bitmap) == 64 + 4);
        assert!(storage_words(&row, RowFormat::OffsetValue) == 64 + 16);
    }

    #[test]
    fn sparse_rows_compress_well() {
        let row = row_with_density(1024, 16); // ~6% dense
        for f in [RowFormat::OffsetValue, RowFormat::Bitmap, RowFormat::RunLength] {
            assert!(
                compression_ratio(&row, f) > 4.0,
                "{} ratio {:.2}",
                f.name(),
                compression_ratio(&row, f)
            );
        }
    }

    #[test]
    fn bitmap_overhead_is_density_independent() {
        for every in [2usize, 4, 16, 64] {
            let row = row_with_density(256, every);
            let overhead = storage_words(&row, RowFormat::Bitmap) - row.nnz() as u64;
            assert_eq!(overhead, 16);
        }
    }

    #[test]
    fn offset_escapes_long_gaps() {
        // Two non-zeros 100 apart: 100/15 = 6 escape slots + 2 deltas.
        let mut dense = vec![0.0f32; 128];
        dense[0] = 1.0;
        dense[101] = 1.0;
        let row = SparseVec::from_dense(&dense);
        let slots = super::offset_delta_slots(&row);
        assert_eq!(slots, 2 + 100 / 15);
        assert_eq!(storage_words(&row, RowFormat::OffsetValue), 2 + slots.div_ceil(4));
    }

    #[test]
    fn crossover_bitmap_beats_offsets_at_high_density() {
        // Offset encoding pays ~nnz/4 extra words; bitmap pays len/16.
        // They cross at density 1/4: above it bitmap is cheaper.
        let dense_row = row_with_density(256, 2); // 50%
        assert!(
            storage_words(&dense_row, RowFormat::Bitmap) < storage_words(&dense_row, RowFormat::OffsetValue)
        );
        let sparse_row = row_with_density(256, 16); // ~6%
        assert!(
            storage_words(&sparse_row, RowFormat::OffsetValue)
                <= storage_words(&sparse_row, RowFormat::Bitmap)
        );
    }

    #[test]
    fn rle_wins_on_blocky_patterns() {
        // One solid block of 32 non-zeros in a 512 row: RLE stores two
        // headers; offsets store 32 deltas; bitmap stores 32 bitmap words.
        let mut dense = vec![0.0f32; 512];
        for v in dense.iter_mut().skip(100).take(32) {
            *v = 1.0;
        }
        let row = SparseVec::from_dense(&dense);
        let rle = storage_words(&row, RowFormat::RunLength);
        assert!(rle < storage_words(&row, RowFormat::Bitmap));
        assert!(rle <= storage_words(&row, RowFormat::OffsetValue));
    }

    #[test]
    fn best_format_returns_the_minimum() {
        for every in [1usize, 2, 5, 17, 100] {
            let row = row_with_density(300, every);
            let (best, words) = best_format(&row);
            for f in RowFormat::ALL {
                assert!(
                    storage_words(&row, f) >= words,
                    "{} beat reported best {}",
                    f.name(),
                    best.name()
                );
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = RowFormat::ALL.iter().map(|f| f.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
