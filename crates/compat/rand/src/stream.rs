//! Counter-based random streams (Philox 2×64-10).
//!
//! [`StreamKey`] / [`StreamRng`] provide *counter-based* randomness in the
//! style of Salmon et al.'s Random123 generators (Philox/Threefry): every
//! draw is a pure function `philox(key, counter)` of an explicit key and
//! counter, with no hidden evolving state. Two properties follow that a
//! conventional sequential generator cannot offer:
//!
//! * **Order independence** — the draw for position `i` is the same whether
//!   positions are visited forward, backward, or split across threads, so
//!   parallel consumers are bitwise-deterministic by construction.
//! * **Cheap stream splitting** — [`StreamKey::derive`] folds a component
//!   (epoch, batch, sample index, …) into the key, giving every logical
//!   position in a training run its own statistically independent stream
//!   without any generator round-trips.
//!
//! The concrete generator is Philox 2×64 with 10 rounds — the full-strength
//! round count from the Random123 paper, which passes BigCrush. The 64-bit
//! key is the derived stream identity and the 128-bit counter carries the
//! draw offset, so a single stream supports 2⁶⁴ addressable draws (the low
//! word) with the high word reserved (always zero today; a future 2-D
//! offset can use it without changing any existing stream).
//!
//! ```
//! use rand::stream::StreamKey;
//!
//! let key = StreamKey::new(42).derive(3); // e.g. seed 42, sample 3
//! // Pure positional draws: same value regardless of evaluation order.
//! assert_eq!(key.uniform_at(7), key.uniform_at(7));
//! assert!((0.0..1.0).contains(&key.uniform_at(7)));
//! ```

use crate::RngCore;

/// Philox 2×64 multiplier (Random123 reference constant).
const PHILOX_M: u64 = 0xD2B7_4407_B1CE_6E93;
/// Philox 2×64 Weyl key increment (golden-ratio constant).
const PHILOX_W: u64 = 0x9E37_79B9_7F4A_7C15;
/// Number of Philox rounds; 10 is the full-strength Random123 default.
const PHILOX_ROUNDS: u32 = 10;

/// The Weyl key schedule `kᵣ = key + r·W`: counter-independent, so bulk
/// consumers fold it once per run of draws.
#[inline]
const fn philox_round_keys(key: u64) -> [u64; PHILOX_ROUNDS as usize] {
    let mut keys = [0u64; PHILOX_ROUNDS as usize];
    let mut k = key;
    let mut round = 0;
    while round < keys.len() {
        keys[round] = k;
        k = k.wrapping_add(PHILOX_W);
        round += 1;
    }
    keys
}

/// The Philox 2×64 round core: encrypts the 128-bit counter `(x0, x1)`
/// under pre-folded round keys and returns both output words. The single
/// source of the round arithmetic, shared by [`philox2x64`] and
/// [`StreamKey::fill_uniform_at`].
#[inline]
const fn philox_block(round_keys: &[u64; PHILOX_ROUNDS as usize], mut x0: u64, mut x1: u64) -> (u64, u64) {
    let mut round = 0;
    while round < round_keys.len() {
        let product = (x0 as u128).wrapping_mul(PHILOX_M as u128);
        let hi = (product >> 64) as u64;
        let lo = product as u64;
        x0 = hi ^ round_keys[round] ^ x1;
        x1 = lo;
        round += 1;
    }
    (x0, x1)
}

/// One Philox 2×64 block: encrypts the 128-bit counter `(x0, x1)` under
/// `key` and returns both output words.
#[inline]
const fn philox2x64(key: u64, x0: u64, x1: u64) -> (u64, u64) {
    philox_block(&philox_round_keys(key), x0, x1)
}

/// SplitMix64 finalizer: a strong 64-bit bijective mixer, used to fold
/// stream components into a key.
#[inline]
const fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The identity of one random stream: a 64-bit key built by folding the
/// coordinates of a draw site (seed, epoch, batch, sample, …) one
/// [`derive`](StreamKey::derive) at a time.
///
/// Keys are plain `Copy` values; deriving never consumes randomness. The
/// fold is order-sensitive (`derive(a).derive(b) != derive(b).derive(a)`
/// in general), so a fixed derivation ladder gives every coordinate tuple
/// its own stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamKey {
    key: u64,
}

impl StreamKey {
    /// The root key of a run, from its seed.
    pub const fn new(seed: u64) -> Self {
        Self { key: mix64(seed) }
    }

    /// Folds one stream coordinate (epoch, batch, sample index, …) into
    /// the key, yielding the sub-stream's key.
    pub const fn derive(self, component: u64) -> Self {
        // Weyl-offset the component so derive(0) is not the identity, then
        // mix to spread it over all 64 bits.
        Self {
            key: mix64(
                self.key
                    .wrapping_add(PHILOX_W)
                    .wrapping_add(component.wrapping_mul(PHILOX_M)),
            ),
        }
    }

    /// Folds a string coordinate (e.g. a pruning-site name) into the key
    /// via an FNV-1a hash of its bytes.
    pub fn derive_str(self, component: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in component.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.derive(h)
    }

    /// The raw 64-bit key value (for diagnostics and goldens).
    pub const fn value(self) -> u64 {
        self.key
    }

    /// The random 64-bit word at position `offset` of this stream — a pure
    /// function of `(key, offset)`.
    pub const fn word_at(self, offset: u64) -> u64 {
        philox2x64(self.key, offset, 0).0
    }

    /// The uniform `[0, 1)` draw at position `offset` of this stream (53
    /// mantissa bits, like `Rng::gen::<f64>()`).
    pub const fn uniform_at(self, offset: u64) -> f64 {
        (self.word_at(offset) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `out[i]` with the uniform draw at position
    /// `offset.wrapping_add(i)`, each bitwise equal to
    /// `uniform_at(offset + i) as f32` (pinned by the stability goldens).
    ///
    /// Philox's per-round keys `kᵣ = key + r·W` do not depend on the
    /// counter, so a run of consecutive draws folds the key schedule
    /// **once** instead of once per element — the amortization the bulk
    /// consumers (stochastic pruning's snap/zero pass) draw through.
    pub fn fill_uniform_at(&self, offset: u64, out: &mut [f32]) {
        let round_keys = philox_round_keys(self.key);
        for (i, draw) in out.iter_mut().enumerate() {
            let (word, _) = philox_block(&round_keys, offset.wrapping_add(i as u64), 0);
            *draw = ((word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) as f32;
        }
    }

    /// A sequential [`RngCore`] view of this stream starting at `offset` —
    /// for handing a sub-stream to code written against the `Rng` traits.
    pub const fn rng_at(self, offset: u64) -> StreamRng {
        StreamRng {
            key: self,
            counter: offset,
        }
    }
}

/// A sequential cursor over one counter-based stream: [`RngCore`] whose
/// `next_u64` returns [`StreamKey::word_at`] at an advancing offset.
///
/// Equal `(key, offset)` cursors produce equal sequences; the cursor is
/// `Clone`, and cloning forks a reader (not the stream — both read the
/// same positions).
#[derive(Debug, Clone)]
pub struct StreamRng {
    key: StreamKey,
    counter: u64,
}

impl StreamRng {
    /// Cursor over `key`'s stream, starting at position 0.
    pub const fn new(key: StreamKey) -> Self {
        key.rng_at(0)
    }

    /// The stream this cursor reads.
    pub const fn key(&self) -> StreamKey {
        self.key
    }

    /// The position of the next draw.
    pub const fn position(&self) -> u64 {
        self.counter
    }
}

impl RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let word = self.key.word_at(self.counter);
        self.counter = self.counter.wrapping_add(1);
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn draws_are_pure_functions_of_position() {
        let key = StreamKey::new(7).derive(1).derive(2);
        let forward: Vec<u64> = (0..64).map(|i| key.word_at(i)).collect();
        let backward: Vec<u64> = (0..64).rev().map(|i| key.word_at(i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn derive_is_order_sensitive_and_splits_streams() {
        let root = StreamKey::new(0);
        assert_ne!(root.derive(1).derive(2), root.derive(2).derive(1));
        assert_ne!(root.derive(0), root, "derive(0) must not be the identity");
        assert_ne!(root.derive(1).word_at(0), root.derive(2).word_at(0));
        assert_ne!(root.derive_str("conv1"), root.derive_str("conv2"));
    }

    #[test]
    fn stream_rng_walks_the_counter() {
        let key = StreamKey::new(3);
        let mut rng = StreamRng::new(key);
        assert_eq!(rng.next_u64(), key.word_at(0));
        assert_eq!(rng.next_u64(), key.word_at(1));
        assert_eq!(rng.position(), 2);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        // A cursor opened mid-stream sees the same positions.
        assert_eq!(key.rng_at(1).next_u64(), key.word_at(1));
    }

    #[test]
    fn uniform_draws_are_unit_interval() {
        let key = StreamKey::new(11).derive(4);
        for i in 0..4096 {
            let u = key.uniform_at(i);
            assert!((0.0..1.0).contains(&u), "draw {i} = {u}");
        }
    }

    /// Uniformity: chi-squared over 16 equiprobable bins. With 15 degrees
    /// of freedom the 99.9th percentile is 37.7; a healthy generator sits
    /// far below it.
    #[test]
    fn chi_squared_uniformity_over_16_bins() {
        let key = StreamKey::new(2024).derive(9);
        let n = 65_536u64;
        let mut bins = [0u64; 16];
        for i in 0..n {
            bins[(key.word_at(i) >> 60) as usize] += 1;
        }
        let expected = n as f64 / 16.0;
        let chi2: f64 = bins
            .iter()
            .map(|&b| {
                let d = b as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 37.7, "chi-squared {chi2} over 16 bins (df=15, p<0.001)");
    }

    /// Stream independence: draws from keys differing only in one derived
    /// component (the sample index) are uncorrelated, as are draws at
    /// distinct offsets of one stream.
    #[test]
    fn distinct_keys_and_offsets_are_uncorrelated() {
        let step = StreamKey::new(5).derive(17);
        let n = 16_384;
        let corr = |xs: &[f64], ys: &[f64]| {
            let m = xs.len() as f64;
            let (mx, my) = (xs.iter().sum::<f64>() / m, ys.iter().sum::<f64>() / m);
            let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
            cov / (vx * vy).sqrt()
        };
        let sample0: Vec<f64> = (0..n).map(|i| step.derive(0).uniform_at(i)).collect();
        let sample1: Vec<f64> = (0..n).map(|i| step.derive(1).uniform_at(i)).collect();
        let r_keys = corr(&sample0, &sample1);
        assert!(
            r_keys.abs() < 0.03,
            "adjacent sample keys correlate: r = {r_keys}"
        );
        let shifted: Vec<f64> = (0..n).map(|i| step.derive(0).uniform_at(i + 1)).collect();
        let r_lag = corr(&sample0, &shifted);
        assert!(r_lag.abs() < 0.03, "lag-1 offsets correlate: r = {r_lag}");
    }

    /// Stability goldens: these eight outputs pin the Philox 2×64-10
    /// algorithm and the derivation ladder. An intentional algorithm change
    /// must re-anchor them (and every seed-sensitive pruning capture);
    /// an accidental one fails here first.
    #[test]
    fn stability_goldens() {
        let root = StreamKey::new(0);
        let derived = StreamKey::new(42).derive(1).derive(2);
        let named = StreamKey::new(7).derive_str("conv1");
        let cases: [(u64, u64); 8] = [
            (root.word_at(0), 0xCA00_A045_9843_D731),
            (root.word_at(1), 0x268B_107F_7AEF_5856),
            (root.word_at(u64::MAX), 0x5922_32D1_2630_0E79),
            (derived.word_at(0), 0xB31B_27A4_7CA9_1E7C),
            (derived.word_at(12_345), 0xD204_D588_E54E_3017),
            (named.word_at(3), 0x32D7_0900_C8AA_CD65),
            (StreamKey::new(1).value(), 0x5692_161D_100B_05E5),
            (StreamKey::new(1).derive(1).value(), 0xCBB0_A6E3_0C0F_E10E),
        ];
        for (i, (got, want)) in cases.iter().enumerate() {
            assert_eq!(got, want, "golden {i}: got {got:#018X}, want {want:#018X}");
        }

        // The bulk fill is pinned to the per-element ladder: every filled
        // draw must be bitwise `uniform_at` rounded to f32, for fresh,
        // derived and named keys, at plain and counter-wrapping offsets.
        for key in [root, derived, named] {
            for offset in [0u64, 1, 12_345, u64::MAX - 3] {
                let mut buf = [0.0f32; 19];
                key.fill_uniform_at(offset, &mut buf);
                for (i, &got) in buf.iter().enumerate() {
                    let want = key.uniform_at(offset.wrapping_add(i as u64)) as f32;
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "fill diverged from uniform_at at offset {offset}+{i}"
                    );
                }
            }
        }
    }

    /// The split-stream mean stays centred (sanity on top of chi-squared).
    #[test]
    fn per_stream_mean_is_centred() {
        let key = StreamKey::new(33).derive(2);
        let n = 50_000u64;
        let mean = (0..n).map(|i| key.uniform_at(i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
