//! Offline compat shim for the `rand` crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the `rand` 0.8 API the workspace actually uses, with identical
//! signatures: [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen`,
//! `gen_range`, `gen_bool`) and [`rngs::StdRng`].
//!
//! `StdRng` here is a xoshiro256++ generator seeded through SplitMix64 —
//! deterministic and statistically solid for test/simulation workloads, but
//! **not** the ChaCha12 generator of the real crate, so seeded sequences
//! differ from upstream `rand`. Nothing in this workspace depends on the
//! exact stream, only on determinism.
//!
//! The [`stream`] module (counter-based Philox streams for deterministic
//! parallel pruning) is a workspace extension with no upstream `rand`
//! counterpart: when this shim is swapped for the crates.io crate, move
//! that module into a workspace crate (its only dependency is [`RngCore`]).

pub mod stream;

/// A random number generator core: the object-safe part of the API.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 (the
    /// same expansion the reference xoshiro implementation recommends).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let bytes = next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform `[0,1)`
    /// for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state words (workspace extension, used by the
        /// checkpoint subsystem to make shuffling bitwise-resumable).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from [`StdRng::state`] output. Panics on the
        /// all-zero state, which xoshiro cannot occupy.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "xoshiro256++ state must not be all zero");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // A xoshiro state must not be all zero.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for i in 1..200usize {
            let v = rng.gen_range(0..=i);
            assert!(v <= i);
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "gen_bool(0.25) hit {hits}/10000");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynr: &mut dyn RngCore = &mut rng;
        let f: f64 = dynr.gen();
        assert!((0.0..1.0).contains(&f));
        let n = dynr.gen_range(0..10usize);
        assert!(n < 10);
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(21);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(13);
        let mean: f64 = (0..50_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
