//! Offline compat shim for the `proptest` crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the proptest 1.x API the workspace's property tests use:
//! the [`proptest!`], [`prop_compose!`], [`prop_oneof!`] and
//! `prop_assert*`/`prop_assume!` macros, the [`strategy::Strategy`] trait
//! with `prop_map`/`prop_filter`, range/tuple/[`strategy::Just`]
//! strategies, [`collection::vec`] and `any::<bool>()`.
//!
//! Semantic difference from upstream: failing cases are **not shrunk** —
//! the failing input is reported as generated. Generation is fully
//! deterministic per (test name, case index), so failures reproduce
//! exactly on re-run.

pub mod test_runner {
    //! Configuration, RNG and error types for the test runner.

    /// Runner configuration (`cases` = number of passing cases required).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config requiring `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` (does not fail the test).
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one `(test, case, reject)` tuple — reproducible across
        /// runs and platforms.
        pub fn for_case(test_name: &str, case: u32, rejects: u32) -> Self {
            // FNV-1a over the test name gives a stable per-test stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let state = h ^ ((case as u64) << 32) ^ (rejects as u64) ^ 0x5DEE_CE66_D013_05C9;
            Self { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `f32` in `[0, 1)`.
        pub fn unit_f32(&mut self) -> f32 {
            ((self.next_u64() >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no shrinking; `generate` draws one
    /// value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }

        /// Discards generated values failing `f` (regenerating locally).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence,
                pred: f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!` to unify variant types).
    pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 10000 consecutive values", self.whence);
        }
    }

    /// Weighted choice between boxed strategies of one value type.
    pub struct Union<T> {
        variants: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        ///
        /// # Panics
        ///
        /// Panics if `variants` is empty or its weights sum to zero.
        pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
            assert!(
                variants.iter().any(|(w, _)| *w > 0),
                "prop_oneof! weights sum to zero"
            );
            Self { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.variants {
                let w = *w as u64;
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range");
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($t:ty, $unit:ident) => {
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.$unit() * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + rng.$unit() * (end - start)
                }
            }
        };
    }
    impl_range_strategy_float!(f32, unit_f32);
    impl_range_strategy_float!(f64, unit_f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive element-count range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — a vector of `size` elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and `any`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $name:ident),*) => {$(
            /// Canonical full-range strategy for the integer type.
            #[derive(Debug, Clone, Copy)]
            pub struct $name;

            impl Strategy for $name {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = $name;
                fn arbitrary() -> $name {
                    $name
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
                        usize => AnyUsize, i8 => AnyI8, i16 => AnyI16, i32 => AnyI32,
                        i64 => AnyI64, isize => AnyIsize);

    /// `proptest::prelude::any` — the canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rejects: u32 = 0;
            let mut __case: u32 = 0;
            while __case < __config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                    __rejects,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => {
                        __case += 1;
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                        __rejects += 1;
                        assert!(
                            __rejects <= __config.max_global_rejects,
                            "too many prop_assume! rejections (last: {})",
                            __why
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

/// Rejects the current case (it is retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
}

/// Composes named strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
                 ($($binding:pat_param in $bstrat:expr),+ $(,)?)
                 -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::Strategy::prop_map(
                ($($bstrat,)+),
                move |($($binding,)+)| $body
            )
        }
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0, 0);
        for _ in 0..500 {
            let v = Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::generate(&(1usize..=5), &mut rng);
            assert!((1..=5).contains(&w));
            let f = Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::for_case("union", 0, 0);
        let s = prop_oneof![9u32 => Just(1u8), 1u32 => Just(0u8)];
        let ones: u32 = (0..1000).map(|_| Strategy::generate(&s, &mut rng) as u32).sum();
        assert!(ones > 800, "weighted union skewed: {ones}");
    }

    #[test]
    fn filter_and_map_compose() {
        let mut rng = TestRng::for_case("fm", 0, 0);
        let s = (0u32..100)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v + 1);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert_eq!(v % 2, 1);
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::for_case("vec", 0, 0);
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(0u8..10, 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let fixed = Strategy::generate(&crate::collection::vec(Just(1i32), 4usize), &mut rng);
        assert_eq!(fixed, vec![1, 1, 1, 1]);
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("det", 7, 0);
        let mut b = TestRng::for_case("det", 7, 0);
        let s = crate::collection::vec(0u64..1000, 10usize);
        assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(x in 0u32..50, v in prop::collection::vec(-1.0f64..1.0, 0..8)) {
            prop_assert!(x < 50);
            prop_assume!(v.len() != 7);
            prop_assert_ne!(v.len(), 7);
            prop_assert_eq!(x, x);
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u8..10, b in 10u8..20) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn compose_smoke(pair in arb_pair()) {
            prop_assert!(pair.0 < 10 && pair.1 >= 10);
        }
    }
}
