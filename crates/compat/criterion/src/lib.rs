//! Offline compat shim for the `criterion` crate.
//!
//! Provides the measurement API surface the workspace's benches use
//! ([`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`black_box`],
//! [`criterion_group!`], [`criterion_main!`]) with a simple
//! calibrate-then-sample harness instead of criterion's full statistical
//! machinery.
//!
//! Every completed measurement is printed human-readably to stdout **and**
//! appended as one JSON object per line to `target/bench-results.jsonl`
//! (override with the `BENCH_JSON` environment variable) so the bench
//! trajectory is machine-readable across runs.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim times the routine alone in
/// every mode, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a bench label (accepts `&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// One measurement result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full bench label (`group/bench/param`).
    pub label: String,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Standard deviation across samples in nanoseconds.
    pub stddev_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

/// Per-target measurement driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    result: Option<(f64, f64, usize, u64)>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            result: None,
        }
    }

    fn record(&mut self, per_iter_ns: Vec<f64>, iters: u64) {
        let n = per_iter_ns.len().max(1) as f64;
        let mean = per_iter_ns.iter().sum::<f64>() / n;
        let var = per_iter_ns.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        self.result = Some((mean, var.sqrt(), per_iter_ns.len(), iters));
    }

    /// Measures `f`, timing whole batches of calls.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate: find an iteration count worth ~2 ms of work.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters = (2_000_000u64 / once.as_nanos().max(1) as u64).clamp(1, 1_000_000);
        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(samples_ns, iters);
    }

    /// Measures `routine` on fresh inputs from `setup`, timing only the
    /// routine.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Calibrate on a single input.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters = (2_000_000u64 / once.as_nanos().max(1) as u64).clamp(1, 10_000);
        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            samples_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        self.record(samples_ns, iters);
    }
}

/// The bench harness context.
pub struct Criterion {
    default_samples: usize,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 10,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = id.into_label();
        let samples = self.default_samples;
        self.run_one(label, samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn run_one(&mut self, label: String, samples: usize, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        let (mean_ns, stddev_ns, samples, iters) = bencher.result.unwrap_or((f64::NAN, f64::NAN, 0, 0));
        let m = Measurement {
            label,
            mean_ns,
            stddev_ns,
            samples,
            iters,
        };
        println!(
            "{:<56} {:>14.1} ns/iter (± {:>10.1}, {} samples × {} iters)",
            m.label, m.mean_ns, m.stddev_ns, m.samples, m.iters
        );
        self.results.push(m);
    }

    /// Appends all collected measurements as JSON lines.
    pub fn write_json(&self) {
        // Cargo runs bench binaries with the *package* as cwd; walk up to
        // the enclosing `target/` directory (workspace root) so all
        // packages append to one trajectory file.
        let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| {
            let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
            for _ in 0..5 {
                if dir.join("target").is_dir() {
                    return dir
                        .join("target/bench-results.jsonl")
                        .to_string_lossy()
                        .into_owned();
                }
                if !dir.pop() {
                    break;
                }
            }
            "target/bench-results.jsonl".into()
        });
        let path = std::path::Path::new(&path);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
            eprintln!("warning: cannot open {} for bench JSON output", path.display());
            return;
        };
        let epoch_s = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        for m in &self.results {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{}\",\"mean_ns\":{:.3},\"stddev_ns\":{:.3},\"samples\":{},\"iters\":{},\"unix_time\":{}}}",
                m.label.replace('"', "'"),
                m.mean_ns,
                m.stddev_ns,
                m.samples,
                m.iters,
                epoch_s,
            );
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.clamp(2, 1000));
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        let samples = self.sample_size.unwrap_or(self.criterion.default_samples);
        self.criterion.run_one(label, samples, f);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (a no-op in the shim; exists for API parity).
    pub fn finish(self) {}
}

/// Declares a bench entry point running each target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.write_json();
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = { $config };
            $( $target(&mut criterion); )+
            criterion.write_json();
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; the shim
            // runs every group unconditionally and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns.is_finite());
        assert!(c.results[0].samples > 0);
    }

    #[test]
    fn group_labels_compose() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("b", 42), &7u64, |b, &x| {
                b.iter(|| black_box(x) + 1)
            });
            g.finish();
        }
        assert_eq!(c.results[0].label, "g/b/42");
        assert_eq!(c.results[0].samples, 3);
    }

    #[test]
    fn iter_batched_times_routine() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("batched");
            g.sample_size(2);
            g.bench_function("sum", |b| {
                b.iter_batched(
                    || vec![1u64; 64],
                    |v| v.iter().sum::<u64>(),
                    BatchSize::SmallInput,
                )
            });
        }
        assert!(c.results[0].mean_ns >= 0.0);
    }
}
