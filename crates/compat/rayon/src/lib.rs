//! Offline compat shim for the `rayon` crate.
//!
//! Provides the fork-join subset the workspace uses — [`scope`],
//! [`Scope::spawn`], [`join`] and [`current_num_threads`] — implemented on
//! `std::thread::scope`. Unlike real rayon there is no work-stealing pool:
//! every `spawn` is an OS thread. Callers are expected to spawn **one task
//! per band of work** (roughly [`current_num_threads`] tasks), which is how
//! `sparsetrain_sparse::engine::ParallelEngine` uses it; with that pattern
//! the thread-per-spawn cost is amortized over an entire layer of rows.
//!
//! The API matches rayon's, so swapping in the real crate is a Cargo.toml
//! change only.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of threads the runtime will use: the `RAYON_NUM_THREADS`
/// environment variable when set to a positive integer (the same override
/// real rayon's global pool honours, read once at first use), otherwise
/// the machine's hardware parallelism.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        threads_from_env(std::env::var("RAYON_NUM_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// Parses a `RAYON_NUM_THREADS` value; `None` when unset, empty, zero or
/// unparsable (rayon treats 0 as "choose automatically").
fn threads_from_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// A scope in which parallel tasks can be spawned; all tasks are joined
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing environment.
    ///
    /// The closure receives the scope again so it can spawn nested tasks,
    /// mirroring rayon's signature.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned task finished.
///
/// Panics in spawned tasks propagate to the caller, as in rayon.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let a = s.spawn(oper_a);
        let rb = oper_b();
        let ra = match a.join() {
            Ok(ra) => ra,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

pub mod prelude {
    //! Rayon-style prelude (fork-join subset only).
    pub use crate::{current_num_threads, join, scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_allows_disjoint_mutable_borrows() {
        let mut data = vec![0u32; 64];
        let (left, right) = data.split_at_mut(32);
        scope(|s| {
            s.spawn(|_| left.iter_mut().for_each(|v| *v = 1));
            s.spawn(|_| right.iter_mut().for_each(|v| *v = 2));
        });
        assert!(data[..32].iter().all(|&v| v == 1));
        assert!(data[32..].iter().all(|&v| v == 2));
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn env_thread_count_parsing() {
        assert_eq!(threads_from_env(Some("4")), Some(4));
        assert_eq!(threads_from_env(Some(" 2 ")), Some(2));
        assert_eq!(threads_from_env(Some("0")), None, "0 means auto, like rayon");
        assert_eq!(threads_from_env(Some("nope")), None);
        assert_eq!(threads_from_env(Some("")), None);
        assert_eq!(threads_from_env(None), None);
    }

    #[test]
    #[should_panic]
    fn spawned_panic_propagates() {
        scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
    }
}
