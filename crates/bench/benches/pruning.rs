//! Pruning-algorithm benchmarks: the paper's O(n) single-pass streaming
//! pruner vs the O(n log n) sort-based threshold selection it replaces
//! (§III-B's complexity claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::stream::StreamKey;
use rand::SeedableRng;
use sparsetrain_core::prune::{prune_slice, BatchStream, LayerPruner, PruneConfig};
use sparsetrain_tensor::init::sample_standard_normal;
use std::hint::black_box;

fn gradient_batch(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| sample_standard_normal(&mut rng) * 0.05).collect()
}

/// The naive alternative: sort |g| and read the p-quantile threshold.
fn sort_based_threshold(grads: &[f32], p: f64) -> f64 {
    let mut mags: Vec<f32> = grads.iter().map(|g| g.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((mags.len() as f64 * p) as usize).min(mags.len() - 1);
    mags[idx] as f64
}

fn bench_streaming_vs_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_selection");
    group.sample_size(15);
    for n in [16_384usize, 65_536, 262_144] {
        let grads = gradient_batch(n, 7);
        group.bench_with_input(BenchmarkId::new("streaming_o_n", n), &grads, |b, g| {
            b.iter(|| {
                // One pass: Σ|g| + analytic quantile (the paper's method).
                let abs_sum: f64 = g.iter().map(|&v| (v as f64).abs()).sum();
                let sigma = sparsetrain_core::prune::sigma_hat(abs_sum, g.len());
                black_box(sparsetrain_core::prune::determine_threshold(sigma, 0.9))
            });
        });
        group.bench_with_input(BenchmarkId::new("sort_o_nlogn", n), &grads, |b, g| {
            b.iter(|| black_box(sort_based_threshold(g, 0.9)));
        });
    }
    group.finish();
}

fn bench_full_prune_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune_batch");
    group.sample_size(15);
    for n in [65_536usize, 262_144] {
        group.bench_with_input(BenchmarkId::new("layer_pruner", n), &n, |b, &n| {
            let template = gradient_batch(n, 9);
            let mut pruner = LayerPruner::new(PruneConfig::paper_default());
            let key = StreamKey::new(1);
            let mut step = 0u64;
            // Warm up the FIFO so the benched pass actually prunes.
            for _ in 0..4 {
                let mut batch = template.clone();
                pruner.prune_batch(&mut batch, &BatchStream::contiguous(key.derive(step)));
                step += 1;
            }
            b.iter_batched(
                || template.clone(),
                |mut batch| {
                    step += 1;
                    pruner.prune_batch(&mut batch, &BatchStream::contiguous(key.derive(step)));
                    black_box(batch)
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("raw_prune_slice", n), &n, |b, &n| {
            let template = gradient_batch(n, 9);
            let mut rng = StdRng::seed_from_u64(2);
            b.iter_batched(
                || template.clone(),
                |mut batch| {
                    prune_slice(&mut batch, 0.05, &mut rng);
                    black_box(batch)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// The PPU's in-stream hardware pruning stage (LFSR lanes) vs the
/// software pruner on the same batch: the hardware model must not be
/// slower at simulation time, and its one-value-per-cycle structure is
/// what the machine's zero-overhead accounting rests on.
fn bench_hardware_prune_unit(c: &mut Criterion) {
    use sparsetrain_sim::prune_unit::PruneUnit;
    let mut group = c.benchmark_group("hardware_prune");
    group.sample_size(20);
    let grads = gradient_batch(65_536, 11);
    group.bench_function("ppu_lfsr_stream", |b| {
        b.iter(|| {
            let mut unit = PruneUnit::new(0xACE1);
            unit.set_threshold(0.08);
            let mut sink = 0.0f32;
            for &g in black_box(&grads) {
                sink += unit.process_one(g);
            }
            sink
        })
    });
    group.bench_function("software_prune_slice", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut batch = grads.clone();
            prune_slice(black_box(&mut batch), 0.08, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_streaming_vs_sort,
    bench_full_prune_pass,
    bench_hardware_prune_unit
);
criterion_main!(benches);
