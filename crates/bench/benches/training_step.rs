//! End-to-end training-step cost with and without gradient pruning — the
//! software-side overhead of the pruning algorithm (the paper claims it is
//! negligible relative to a training step).

use criterion::{criterion_group, criterion_main, Criterion};
use sparsetrain_core::prune::PruneConfig;
use sparsetrain_nn::data::SyntheticSpec;
use sparsetrain_nn::models;
use sparsetrain_nn::train::{TrainConfig, Trainer};
use std::hint::black_box;

fn bench_train_epoch(c: &mut Criterion) {
    let (train, _) = SyntheticSpec::tiny(4).generate();
    let mut group = c.benchmark_group("train_epoch_mini_cnn");
    group.sample_size(10);

    group.bench_function("dense", |b| {
        let net = models::mini_cnn(4, 8, None);
        let mut trainer = Trainer::new(net, TrainConfig::quick());
        b.iter(|| black_box(trainer.train_epoch(&train)));
    });

    group.bench_function("pruned_p090", |b| {
        let net = models::mini_cnn(4, 8, Some(PruneConfig::new(0.9, 4)));
        let mut trainer = Trainer::new(net, TrainConfig::quick());
        b.iter(|| black_box(trainer.train_epoch(&train)));
    });

    group.finish();
}

criterion_group!(benches, bench_train_epoch);
criterion_main!(benches);
