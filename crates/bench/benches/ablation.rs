//! Design-choice ablations called out in DESIGN.md:
//!
//! * FIFO depth `N_F` — prediction accuracy vs adaptation lag,
//! * stochastic vs hard (deterministic) pruning — the bias the stochastic
//!   rule removes,
//! * predicted vs exactly-determined thresholds — the cost of the
//!   single-pass constraint.
//!
//! These report their measured quantities via Criterion so a regression in
//! any of them shows up as a timing/aggregate change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::stream::StreamKey;
use rand::SeedableRng;
use sparsetrain_core::prune::{prune_slice, threshold_from_slice, BatchStream, LayerPruner, PruneConfig};
use sparsetrain_tensor::init::sample_standard_normal;
use std::hint::black_box;

fn batch(rng: &mut StdRng, n: usize, sigma: f32) -> Vec<f32> {
    (0..n).map(|_| sample_standard_normal(rng) * sigma).collect()
}

/// Hard pruning: everything below τ becomes exactly zero (the biased
/// alternative to the paper's stochastic rule).
fn hard_prune(grads: &mut [f32], tau: f64) {
    for g in grads.iter_mut() {
        if (g.abs() as f64) < tau {
            *g = 0.0;
        }
    }
}

fn bench_fifo_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fifo_depth");
    group.sample_size(10);
    for depth in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                // Drifting gradient scale: deeper FIFOs smooth more but lag.
                let mut pruner = LayerPruner::new(PruneConfig::new(0.9, depth));
                let mut rng = StdRng::seed_from_u64(5);
                let key = StreamKey::new(5);
                let mut err = 0.0f64;
                for step in 0..24u64 {
                    let sigma = 0.05 * (1.0 - step as f32 * 0.02);
                    let mut g = batch(&mut rng, 4096, sigma);
                    pruner.prune_batch(&mut g, &BatchStream::contiguous(key.derive(step)));
                    if let (Some(p), Some(d)) = (
                        pruner.stats().last_predicted_tau,
                        pruner.stats().last_determined_tau,
                    ) {
                        err += (p - d).abs() / d.max(1e-12);
                    }
                }
                black_box(err)
            });
        });
    }
    group.finish();
}

fn bench_stochastic_vs_hard(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_prune_rule");
    group.sample_size(10);
    let n = 65_536;
    let tau = 0.08; // aggressive threshold on sigma = 0.05 data

    group.bench_function("stochastic", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let template = batch(&mut rng, n, 0.05);
        b.iter_batched(
            || template.clone(),
            |mut g| {
                let before: f64 = g.iter().map(|&v| v as f64).sum();
                prune_slice(&mut g, tau, &mut rng);
                let after: f64 = g.iter().map(|&v| v as f64).sum();
                // Bias metric: the stochastic rule keeps this near zero.
                black_box((after - before).abs())
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.bench_function("hard", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let template = batch(&mut rng, n, 0.05);
        b.iter_batched(
            || template.clone(),
            |mut g| {
                hard_prune(&mut g, tau);
                black_box(g)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_predicted_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_threshold_source");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(8);
    let data = batch(&mut rng, 65_536, 0.05);

    group.bench_function("exact_two_pass", |b| {
        // Determination needs a full pass before pruning can start.
        let mut rng = StdRng::seed_from_u64(9);
        b.iter_batched(
            || data.clone(),
            |mut g| {
                let tau = threshold_from_slice(&g, 0.9);
                prune_slice(&mut g, tau, &mut rng);
                black_box(g)
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.bench_function("predicted_single_pass", |b| {
        let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 4));
        let key = StreamKey::new(10);
        let mut step = 0u64;
        for _ in 0..4 {
            let mut warm = data.clone();
            pruner.prune_batch(&mut warm, &BatchStream::contiguous(key.derive(step)));
            step += 1;
        }
        b.iter_batched(
            || data.clone(),
            |mut g| {
                step += 1;
                pruner.prune_batch(&mut g, &BatchStream::contiguous(key.derive(step)));
                black_box(g)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_density_sweep(c: &mut Criterion) {
    // Not the paper's figure, but the ablation DESIGN.md lists: pruning-rate
    // sweep showing achieved density per target p.
    let mut group = c.benchmark_group("ablation_density_sweep");
    group.sample_size(10);
    for p in [0.5f64, 0.7, 0.9, 0.99] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut pruner = LayerPruner::new(PruneConfig::new(p, 4));
                let mut rng = StdRng::seed_from_u64(11);
                let key = StreamKey::new(11);
                let mut density = 0.0;
                for step in 0..6u64 {
                    let mut g = batch(&mut rng, 8192, 0.05);
                    pruner.prune_batch(&mut g, &BatchStream::contiguous(key.derive(step)));
                    density = pruner.stats().last_density().unwrap_or(1.0);
                }
                black_box(density)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fifo_depth,
    bench_stochastic_vs_hard,
    bench_predicted_vs_exact,
    bench_density_sweep
);
criterion_main!(benches);
