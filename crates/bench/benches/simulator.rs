//! Simulator throughput: whole-network simulation of a captured trace,
//! sparse vs densified-baseline configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use sparsetrain_core::dataflow::NetworkTrace;
use sparsetrain_core::prune::PruneConfig;
use sparsetrain_nn::data::SyntheticSpec;
use sparsetrain_nn::models;
use sparsetrain_nn::train::{TrainConfig, Trainer};
use sparsetrain_sim::baseline::densified;
use sparsetrain_sim::machine::OperandFormat;
use sparsetrain_sim::{ArchConfig, Machine};
use std::hint::black_box;

fn captured_trace() -> NetworkTrace {
    let (train, _) = SyntheticSpec::tiny(4).generate();
    let net = models::mini_cnn_for(3, 8, 4, 8, Some(PruneConfig::paper_default()), 3);
    let mut trainer = Trainer::new(net, TrainConfig::quick());
    for _ in 0..3 {
        trainer.train_epoch(&train);
    }
    trainer.capture_trace(&train, "mini", "tiny")
}

fn bench_simulate(c: &mut Criterion) {
    let trace = captured_trace();
    let dense = densified(&trace);
    let machine = Machine::new(ArchConfig::paper_default());

    let mut group = c.benchmark_group("machine_simulate");
    group.sample_size(20);
    group.bench_function("sparse_trace", |b| {
        b.iter(|| black_box(machine.simulate(&trace)));
    });
    group.bench_function("dense_baseline_trace", |b| {
        b.iter(|| black_box(machine.simulate_with_format(&dense, OperandFormat::Raw)));
    });
    group.finish();
}

fn bench_trace_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_capture");
    group.sample_size(10);
    group.bench_function("train_and_capture", |b| {
        b.iter(|| black_box(captured_trace()));
    });
    group.finish();
}

criterion_group!(benches, bench_simulate, bench_trace_capture);
criterion_main!(benches);
