//! Kernel micro-benchmarks: the three sparse 1-D primitives vs a dense row
//! convolution, across operand densities.
//!
//! The paper's premise is that row-level work scales with the non-zero
//! count; these benches make the scaling visible (SRC at 10% density should
//! run close to 10% of the dense-equivalent time, plus overheads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparsetrain_sparse::msrc::msrc_conv;
use sparsetrain_sparse::osrc::osrc_conv;
use sparsetrain_sparse::src::src_conv;
use sparsetrain_sparse::{RowMask, SparseVec};
use sparsetrain_tensor::conv::ConvGeometry;
use std::hint::black_box;

const ROW_LEN: usize = 512;
const DENSITIES: [f64; 3] = [1.0, 0.3, 0.1];

fn random_row(rng: &mut StdRng, len: usize, density: f64) -> Vec<f32> {
    (0..len)
        .map(|_| {
            if rng.gen::<f64>() < density {
                rng.gen::<f32>() - 0.5
            } else {
                0.0
            }
        })
        .collect()
}

fn dense_row_conv(input: &[f32], kernel: &[f32], geom: ConvGeometry) -> Vec<f32> {
    let out_len = geom.output_extent(input.len());
    let mut out = vec![0.0; out_len];
    for (ox, o) in out.iter_mut().enumerate() {
        for (v, &w) in kernel.iter().enumerate() {
            let ix = ox as isize * geom.stride as isize - geom.pad as isize + v as isize;
            if ix >= 0 && (ix as usize) < input.len() {
                *o += w * input[ix as usize];
            }
        }
    }
    out
}

fn bench_src(c: &mut Criterion) {
    let geom = ConvGeometry::new(3, 1, 1);
    let kernel = [0.25f32, 0.5, 0.25];
    let mut group = c.benchmark_group("src_row_conv");
    group.sample_size(20);
    for density in DENSITIES {
        let mut rng = StdRng::seed_from_u64(1);
        let dense = random_row(&mut rng, ROW_LEN, density);
        let sparse = SparseVec::from_dense(&dense);
        group.bench_with_input(BenchmarkId::new("sparse", density), &sparse, |b, s| {
            b.iter(|| black_box(src_conv(s, &kernel, geom, ROW_LEN)));
        });
        group.bench_with_input(BenchmarkId::new("dense_ref", density), &dense, |b, d| {
            b.iter(|| black_box(dense_row_conv(d, &kernel, geom)));
        });
    }
    group.finish();
}

fn bench_msrc(c: &mut Criterion) {
    let geom = ConvGeometry::new(3, 1, 1);
    let kernel = [0.25f32, 0.5, 0.25];
    let mut group = c.benchmark_group("msrc_row_conv");
    group.sample_size(20);
    for density in DENSITIES {
        let mut rng = StdRng::seed_from_u64(2);
        let grad = SparseVec::from_dense(&random_row(&mut rng, ROW_LEN, density));
        let mask_row = random_row(&mut rng, ROW_LEN, 0.4);
        let mask = RowMask::from_dense(&mask_row);
        group.bench_with_input(BenchmarkId::new("masked", density), &grad, |b, g| {
            b.iter(|| black_box(msrc_conv(g, &kernel, geom, &mask, ROW_LEN)));
        });
    }
    group.finish();
}

fn bench_osrc(c: &mut Criterion) {
    let geom = ConvGeometry::new(3, 1, 1);
    let mut group = c.benchmark_group("osrc_row_conv");
    group.sample_size(20);
    for density in DENSITIES {
        let mut rng = StdRng::seed_from_u64(3);
        let input = SparseVec::from_dense(&random_row(&mut rng, ROW_LEN, density));
        let grad = SparseVec::from_dense(&random_row(&mut rng, ROW_LEN, density));
        group.bench_with_input(
            BenchmarkId::new("two_sparse", density),
            &(input, grad),
            |b, (i, g)| {
                b.iter(|| black_box(osrc_conv(i, g, geom)));
            },
        );
    }
    group.finish();
}

fn bench_conv_lowering(c: &mut Criterion) {
    use sparsetrain_tensor::{conv, im2row, Tensor3, Tensor4};
    let mut rng = StdRng::seed_from_u64(4);
    let input = Tensor3::from_fn(16, 16, 16, |_, _, _| rng.gen::<f32>() - 0.5);
    let weights = Tensor4::from_fn(16, 16, 3, 3, |_, _, _, _| rng.gen::<f32>() - 0.5);
    let geom = ConvGeometry::new(3, 1, 1);
    let mut group = c.benchmark_group("conv2d_forward");
    group.sample_size(20);
    group.bench_function("reference", |b| {
        b.iter(|| black_box(conv::forward(&input, &weights, None, geom)));
    });
    group.bench_function("im2row", |b| {
        b.iter(|| black_box(im2row::forward(&input, &weights, None, geom)));
    });
    group.finish();
}

criterion_group!(benches, bench_src, bench_msrc, bench_osrc, bench_conv_lowering);
criterion_main!(benches);
