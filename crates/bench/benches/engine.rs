//! Registered kernel engines on AlexNet-shape layer workloads.
//!
//! Each bench executes one full layer stage (Forward / GTA / GTW) through
//! the engine seam — the same zero-allocation accumulate-into-scratch hot
//! path `Conv2d` and the dataflow executor use — plus a batched-vs-
//! per-sample comparison of the batch entry points on an AlexNet-shape
//! mini-batch. Labels carry the engine name, so the JSON lines in
//! `target/bench-results.jsonl` (see the criterion shim) give a
//! machine-readable cross-engine trajectory.
//!
//! The engine set is registry-driven: every registered engine runs by
//! default, and setting `SPARSETRAIN_ENGINE=<name>` restricts the run to
//! that single backend (`scalar`, `parallel`, `fixed`, …).
//!
//! The parallel engine bands work across `samples × filters`; its win
//! scales with hardware threads and batch size (`≥1.5×` expected on 4+
//! cores for the batched shapes below, parity on 1 core where it
//! degenerates to one band — the CI multi-core leg gates on exactly this
//! ratio via `sparsetrain-bench multicore`). The simd engine's win is
//! lane-level and shows up even on one core wherever rows are dense
//! enough to sweep (`≥1.5×` expected on AVX2 at the forward densities
//! below); the im2row engine targets the dense early-layer forward legs
//! (`conv1`/`conv2`), where its register-tiled patch reduction beats the
//! row sweeps. The `engine_end_to_end` group runs all three stages of each
//! layer through the planned `ExecutionContext` seam, pitting the `auto`
//! planner's per-(layer, stage) choices against every single global
//! engine. The `pruning` group covers the stochastic pruning stage:
//! sequential `prune_batch_parts` vs engine-banded `prune_batch_parts_on`
//! across batch sizes, with the rayon worker count in the label.
//!
//! CI regression-gates the conv legs of the resulting
//! `target/bench-results.jsonl` against the committed
//! `crates/bench/baseline.json` (see the `sparsetrain-bench` binary).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::stream::StreamKey;
use rand::{Rng, SeedableRng};
use sparsetrain_core::prune::{BatchStream, LayerPruner, PruneConfig};
use sparsetrain_sparse::rowconv::SparseFeatureMap;
use sparsetrain_sparse::{registry, EngineHandle, ExecutionContext, Workspace};
use sparsetrain_tensor::conv::ConvGeometry;
use sparsetrain_tensor::{Tensor3, Tensor4};
use std::hint::black_box;

/// AlexNet-style layer shapes (channels, filters, spatial size) at the
/// width the paper's Table I evaluates, with representative densities for
/// the input activations and pruned output gradients. `conv1` is the
/// dense early layer (near-dense raw-image input, wide rows) where the
/// cache-blocked `im2row` lowering is expected to win; sparsity grows and
/// rows shrink down the stack, handing the advantage to the sparse
/// row kernels.
const LAYERS: [(&str, usize, usize, usize, f64, f64); 4] = [
    ("conv1_3x64x32", 3, 64, 32, 0.95, 0.25),
    ("conv2_64x128x16", 64, 128, 16, 0.45, 0.15),
    ("conv3_128x192x8", 128, 192, 8, 0.35, 0.10),
    ("conv4_192x192x8", 192, 192, 8, 0.30, 0.05),
];

/// Batched comparison shape: one AlexNet conv3-like layer over a
/// mini-batch.
const BATCH: usize = 8;

struct LayerFixture {
    input: SparseFeatureMap,
    dout: SparseFeatureMap,
    weights: Tensor4,
    bias: Vec<f32>,
    geom: ConvGeometry,
}

fn fixture_seeded(
    c: usize,
    f: usize,
    hw: usize,
    in_density: f64,
    dout_density: f64,
    seed: u64,
) -> LayerFixture {
    let geom = ConvGeometry::new(3, 1, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let sparse = |rng: &mut StdRng, density: f64| {
        if rng.gen::<f64>() < density {
            rng.gen::<f32>() - 0.5
        } else {
            0.0
        }
    };
    let input = Tensor3::from_fn(c, hw, hw, |_, _, _| sparse(&mut rng, in_density));
    let dout = Tensor3::from_fn(f, hw, hw, |_, _, _| sparse(&mut rng, dout_density));
    let weights = Tensor4::from_fn(f, c, 3, 3, |_, _, _, _| rng.gen::<f32>() - 0.5);
    let bias: Vec<f32> = (0..f).map(|_| rng.gen::<f32>() - 0.5).collect();
    LayerFixture {
        input: SparseFeatureMap::from_tensor(&input),
        dout: SparseFeatureMap::from_tensor(&dout),
        weights,
        bias,
        geom,
    }
}

fn fixture(c: usize, f: usize, hw: usize, in_density: f64, dout_density: f64) -> LayerFixture {
    fixture_seeded(c, f, hw, in_density, dout_density, 42)
}

/// The engines under test: the `SPARSETRAIN_ENGINE` override alone when
/// set, every registered engine otherwise.
fn engines() -> Vec<EngineHandle> {
    match registry::env_override().expect("SPARSETRAIN_ENGINE must name a registered engine") {
        Some(handle) => vec![handle],
        None => registry::registry(),
    }
}

fn bench_forward(c: &mut Criterion) {
    println!("hardware threads: {}", rayon::current_num_threads());
    let mut group = c.benchmark_group("engine_forward");
    group.sample_size(10);
    for (name, ci, fi, hw, din, dout) in LAYERS {
        let fx = fixture(ci, fi, hw, din, dout);
        for handle in engines() {
            group.bench_with_input(BenchmarkId::new(handle.name(), name), &fx, |b, fx| {
                b.iter(|| {
                    black_box(
                        handle
                            .engine()
                            .forward(&fx.input, &fx.weights, Some(&fx.bias), fx.geom),
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_input_grad(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_input_grad");
    group.sample_size(10);
    for (name, ci, fi, hw, din, dout) in LAYERS {
        let fx = fixture(ci, fi, hw, din, dout);
        let masks = fx.input.masks();
        for handle in engines() {
            group.bench_with_input(BenchmarkId::new(handle.name(), name), &fx, |b, fx| {
                b.iter(|| {
                    black_box(
                        handle
                            .engine()
                            .input_grad(&fx.dout, &fx.weights, fx.geom, hw, hw, &masks),
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_weight_grad(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_weight_grad");
    group.sample_size(10);
    for (name, ci, fi, hw, din, dout) in LAYERS {
        let fx = fixture(ci, fi, hw, din, dout);
        for handle in engines() {
            group.bench_with_input(BenchmarkId::new(handle.name(), name), &fx, |b, fx| {
                b.iter(|| black_box(handle.engine().weight_grad(&fx.input, &fx.dout, fx.geom)));
            });
        }
    }
    group.finish();
}

/// Batched vs per-sample execution of one AlexNet-shape layer over a
/// mini-batch, per engine: the batched entry points amortize dispatch and
/// let the parallel engine band across `samples × filters` instead of
/// filters alone.
fn bench_batched_vs_per_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_forward_batched");
    group.sample_size(10);
    // Selected by name, not position: this trajectory series (and the CI
    // multicore gate reading it) has used the conv3 shape since the
    // batched entry points landed — prepending layers must not silently
    // move it.
    let (name, ci, fi, hw, din, dout) = *LAYERS
        .iter()
        .find(|l| l.0 == "conv3_128x192x8")
        .expect("conv3 layer present");
    let fxs: Vec<LayerFixture> = (0..BATCH)
        .map(|s| fixture_seeded(ci, fi, hw, din, dout, 42 + s as u64))
        .collect();
    let inputs: Vec<SparseFeatureMap> = fxs.iter().map(|fx| fx.input.clone()).collect();
    let weights = &fxs[0].weights;
    let bias = &fxs[0].bias;
    let geom = fxs[0].geom;
    for handle in engines() {
        let engine = handle.engine();
        group.bench_function(
            BenchmarkId::new(format!("{}/per_sample", handle.name()), name),
            |b| {
                b.iter(|| {
                    for input in &inputs {
                        black_box(engine.forward(input, weights, Some(bias), geom));
                    }
                });
            },
        );
        group.bench_function(
            BenchmarkId::new(format!("{}/batched", handle.name()), name),
            |b| {
                b.iter(|| black_box(engine.forward_batch(&inputs, weights, Some(bias), geom)));
            },
        );
    }
    group.finish();
}

/// One full training step (Forward + GTA + GTW) of each AlexNet-shape
/// layer through the planned `ExecutionContext` entry points — the
/// `auto`-vs-best-single-engine comparison. Fixed engines execute every
/// stage on themselves; the `auto` leg probes each (layer, stage) cell on
/// its first iteration (absorbed by criterion's warm-up) and then replays
/// the frozen plan, so its steady-state time should match or beat the best
/// single engine on every layer and clearly beat the worst end to end.
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(10);
    for (name, ci, fi, hw, din, dout) in LAYERS {
        let fx = fixture(ci, fi, hw, din, dout);
        let masks = vec![fx.input.masks()];
        for handle in engines() {
            group.bench_with_input(BenchmarkId::new(handle.name(), name), &fx, |b, fx| {
                let mut ctx = ExecutionContext::new(handle);
                b.iter(|| {
                    black_box(ctx.forward_batch_for(
                        name,
                        std::slice::from_ref(&fx.input),
                        &fx.weights,
                        Some(&fx.bias),
                        fx.geom,
                    ));
                    let mut dins = vec![Tensor3::zeros(ci, hw, hw)];
                    ctx.input_grad_batch_for_into(
                        name,
                        std::slice::from_ref(&fx.dout),
                        &fx.weights,
                        fx.geom,
                        &masks,
                        &mut dins,
                    );
                    black_box(&dins);
                    let mut dw = Tensor4::zeros(fi, ci, 3, 3);
                    ctx.weight_grad_batch_for(
                        name,
                        std::slice::from_ref(&fx.input),
                        std::slice::from_ref(&fx.dout),
                        fx.geom,
                        &mut dw,
                    );
                    black_box(dw);
                });
            });
        }
    }
    group.finish();
}

/// Stochastic pruning throughput: the sequential `prune_batch_parts`
/// golden vs the engine-banded `prune_batch_parts_on` across batch sizes,
/// per registered engine. Labels carry the rayon worker count so the CI
/// matrix legs (`RAYON_NUM_THREADS` ∈ {1, 4}) land as distinct series in
/// the `target/bench-results.jsonl` trajectory; the gap between `seq` and
/// a parallel engine's `banded` leg is the batch-parallel prune win, and
/// the `seq` cost itself tracks the (amortized) Philox draw price on the
/// snap/zero path.
fn bench_pruning(c: &mut Criterion) {
    const ELEMENTS: usize = 4096; // one sample's activation-gradient tensor
    let threads = rayon::current_num_threads();
    let mut group = c.benchmark_group("pruning");
    group.sample_size(10);
    for batch in [8usize, 32, 128] {
        let mut rng = StdRng::seed_from_u64(0x5EED + batch as u64);
        // Gradient-like data: ~90 % of magnitudes under the threshold the
        // warmed pruner predicts, so most elements consume a draw.
        let samples: Vec<Vec<f32>> = (0..batch)
            .map(|_| (0..ELEMENTS).map(|_| (rng.gen::<f32>() - 0.5) * 0.02).collect())
            .collect();
        let stream = BatchStream::per_sample(StreamKey::new(0xBE7C).derive(batch as u64));
        let warm = {
            let mut pruner = LayerPruner::new(PruneConfig::new(0.9, 2));
            let mut data = samples.clone();
            let mut parts: Vec<&mut [f32]> = data.iter_mut().map(|v| v.as_mut_slice()).collect();
            pruner.prune_batch_parts(&mut parts, &stream);
            pruner
        };
        group.bench_function(
            BenchmarkId::new(format!("seq/t{threads}"), format!("b{batch}")),
            |b| {
                b.iter_batched(
                    || (warm.clone(), samples.clone()),
                    |(mut pruner, mut data)| {
                        let mut parts: Vec<&mut [f32]> = data.iter_mut().map(|v| v.as_mut_slice()).collect();
                        black_box(pruner.prune_batch_parts(&mut parts, &stream));
                    },
                    BatchSize::LargeInput,
                );
            },
        );
        for handle in engines() {
            group.bench_function(
                BenchmarkId::new(
                    format!("banded/{}/t{threads}", handle.name()),
                    format!("b{batch}"),
                ),
                |b| {
                    b.iter_batched(
                        || (warm.clone(), samples.clone()),
                        |(mut pruner, mut data)| {
                            let mut parts: Vec<&mut [f32]> =
                                data.iter_mut().map(|v| v.as_mut_slice()).collect();
                            black_box(pruner.prune_batch_parts_on(&mut parts, &stream, handle.engine()));
                        },
                        BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

/// Row-at-a-time kernels: allocating wrapper vs Workspace scratch reuse —
/// the per-row allocation the engine layer eliminated.
fn bench_workspace_vs_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_kernel_alloc");
    group.sample_size(20);
    let geom = ConvGeometry::new(3, 1, 1);
    let kernel = [0.25f32, 0.5, 0.25];
    let mut rng = StdRng::seed_from_u64(7);
    let dense: Vec<f32> = (0..512)
        .map(|_| {
            if rng.gen::<f64>() < 0.3 {
                rng.gen::<f32>() - 0.5
            } else {
                0.0
            }
        })
        .collect();
    let row = sparsetrain_sparse::SparseVec::from_dense(&dense);
    group.bench_function("src_alloc_per_row", |b| {
        b.iter(|| black_box(sparsetrain_sparse::src::src_conv(&row, &kernel, geom, 512)));
    });
    let mut ws = Workspace::with_capacity(512, 3);
    group.bench_function("src_workspace_reuse", |b| {
        b.iter(|| {
            let out = ws.src(&row, &kernel, geom, 512);
            black_box(out[0])
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_input_grad,
    bench_weight_grad,
    bench_batched_vs_per_sample,
    bench_end_to_end,
    bench_pruning,
    bench_workspace_vs_alloc
);
criterion_main!(benches);
