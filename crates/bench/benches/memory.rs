//! Criterion benches for the memory-system refinement models.
//!
//! Measures the DRAM row-buffer model and the banked-buffer conflict
//! model at simulation scale (millions of modelled words per call), and
//! contrasts streaming vs page-hopping access patterns — the quantitative
//! backing for the flat-bandwidth assumption the whole-network simulator
//! makes for SparseTrain's streaming transfers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsetrain_sim::buffer::{BankedBuffer, BufferConfig};
use sparsetrain_sim::dram::{DramConfig, DramModel};
use std::hint::black_box;

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_model");
    for (label, stride) in [("stream", 1u64), ("page_hop", 8192)] {
        g.bench_with_input(BenchmarkId::new("pattern", label), &stride, |b, &stride| {
            b.iter(|| {
                let mut dram = DramModel::new(DramConfig::lpddr4_like());
                let mut total = 0u64;
                for i in 0..1000u64 {
                    let s = dram.read(black_box(i * stride), 64);
                    total += s.cycles;
                }
                total
            })
        });
    }
    g.finish();
}

fn bench_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("banked_buffer");
    for banks in [8usize, 32, 128] {
        g.bench_with_input(BenchmarkId::new("stream", banks), &banks, |b, &banks| {
            let cfg = BufferConfig {
                banks,
                words_per_bank_per_cycle: 1,
                capacity_words: 1 << 20,
            };
            b.iter(|| {
                let mut buf = BankedBuffer::new(cfg);
                buf.service_stream(black_box(0), 1 << 14, 168)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dram, bench_buffer);
criterion_main!(benches);
