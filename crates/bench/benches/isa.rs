//! Criterion benches for the compiler and serialization paths.
//!
//! The paper's toolchain compiles models to internal instructions once
//! per captured trace; these benches pin the cost of that path — compile,
//! binary encode/decode, assemble/disassemble — so toolchain regressions
//! are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparsetrain_core::dataflow::asm::{assemble, disassemble};
use sparsetrain_core::dataflow::encoding::{decode_program, encode_program};
use sparsetrain_core::dataflow::synth::{SynthLayer, SynthNet};
use sparsetrain_core::dataflow::{compile, NetworkTrace, Program};
use std::hint::black_box;

fn trace(density: f64) -> NetworkTrace {
    let mut rng = StdRng::seed_from_u64(1);
    SynthNet::new("isa-bench", "synthetic")
        .conv(
            SynthLayer::conv(32, 32, 24, 3)
                .input_density(density)
                .dout_density(density),
        )
        .generate(&mut rng)
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("isa_compile");
    for density in [1.0, 0.25] {
        let t = trace(density);
        g.bench_with_input(BenchmarkId::new("density", density), &t, |b, t| {
            b.iter(|| compile(black_box(t)))
        });
    }
    g.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let program: Program = compile(&trace(0.25));
    let bytes = encode_program(&program).unwrap();
    let text = disassemble(&program);
    let mut g = c.benchmark_group("isa_serialize");
    g.bench_function("encode_binary", |b| {
        b.iter(|| encode_program(black_box(&program)))
    });
    g.bench_function("decode_binary", |b| b.iter(|| decode_program(black_box(&bytes))));
    g.bench_function("disassemble", |b| b.iter(|| disassemble(black_box(&program))));
    g.bench_function("assemble", |b| b.iter(|| assemble(black_box(&text))));
    g.finish();
}

criterion_group!(benches, bench_compile, bench_serialize);
criterion_main!(benches);
