//! §VI-B: convergence of pruned vs dense training.
//!
//! Produces per-epoch loss curves for a model at several pruning rates;
//! the paper's claim is that the pruned curves track the dense one.

use crate::profile::Profile;
use sparsetrain_core::prune::PruneConfig;
use sparsetrain_nn::models::ModelKind;
use sparsetrain_nn::schedule::{LrSchedule, StepDecay};
use sparsetrain_nn::train::{TrainConfig, Trainer};

/// One loss curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LossCurve {
    /// Target pruning rate (`None` = dense baseline).
    pub p: Option<f64>,
    /// Training loss per epoch.
    pub losses: Vec<f64>,
    /// Final test accuracy.
    pub final_accuracy: f64,
}

/// Trains `model` once per pruning setting and records the loss curves.
pub fn run(model: ModelKind, dataset_name: &str, rates: &[Option<f64>], profile: Profile) -> Vec<LossCurve> {
    let spec = profile.dataset(dataset_name);
    let (train, test) = spec.generate();
    rates
        .iter()
        .map(|&p| {
            let prune = p.map(|p| PruneConfig::new(p, 4));
            let net = model.build(spec.channels, spec.size, spec.classes, prune, 17);
            let mut trainer = Trainer::new(
                net,
                TrainConfig {
                    batch_size: 16,
                    lr: 0.01,
                    momentum: 0.9,
                    weight_decay: 1e-4,
                    seed: 23,
                    engine: None,
                    checkpoint: None,
                    shard: None,
                },
            );
            let epochs = profile.epochs().max(6);
            let schedule = StepDecay::new(0.01, 0.2, vec![2 * epochs / 3]);
            let losses: Vec<f64> = (0..epochs)
                .map(|e| {
                    trainer.set_learning_rate(schedule.rate(e));
                    trainer.train_epoch(&train).loss
                })
                .collect();
            LossCurve {
                p,
                losses,
                final_accuracy: trainer.evaluate(&test),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_decrease() {
        let curves = run(ModelKind::Alexnet, "cifar10", &[None, Some(0.9)], Profile::Quick);
        for c in &curves {
            assert!(
                c.losses.last().unwrap() < c.losses.first().unwrap(),
                "loss did not decrease for p={:?}: {:?}",
                c.p,
                c.losses
            );
        }
    }
}
