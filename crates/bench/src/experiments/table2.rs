//! Table II: training accuracy and gradient density across models,
//! datasets and pruning rates.

use crate::profile::Profile;
use sparsetrain_core::prune::PruneConfig;
use sparsetrain_nn::models::ModelKind;
use sparsetrain_nn::schedule::{LrSchedule, StepDecay};
use sparsetrain_nn::train::{TrainConfig, Trainer};
use sparsetrain_nn::Layer;

/// One cell group of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Model variant.
    pub model: ModelKind,
    /// Dataset proxy name.
    pub dataset: String,
    /// Target pruning rate (`None` = dense baseline).
    pub p: Option<f64>,
    /// Final test accuracy.
    pub accuracy: f64,
    /// Mean activation-gradient density ρ_nnz over the final epoch.
    pub density: f64,
}

/// The pruning rates evaluated by the paper.
pub const PRUNE_RATES: [f64; 4] = [0.7, 0.8, 0.9, 0.99];

/// Runs one (model, dataset, pruning) training experiment.
pub fn run_cell(model: ModelKind, dataset_name: &str, p: Option<f64>, profile: Profile) -> Table2Row {
    let spec = profile.dataset(dataset_name);
    let (train, test) = spec.generate();
    let prune = p.map(|p| PruneConfig::new(p, 4));
    let net = model.build(spec.channels, spec.size, spec.classes, prune, 7);
    let mut trainer = Trainer::new(
        net,
        TrainConfig {
            batch_size: 16,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 3,
            engine: None,
            checkpoint: None,
            shard: None,
        },
    );
    let epochs = profile.epochs().max(6);
    let schedule = StepDecay::new(0.01, 0.2, vec![2 * epochs / 3]);
    for e in 0..epochs {
        trainer.set_learning_rate(schedule.rate(e));
        if e + 1 == epochs {
            // Measure density over the final epoch only (post warm-up).
            trainer.network_mut().reset_density_stats();
        }
        trainer.train_epoch(&train);
    }
    let accuracy = trainer.evaluate(&test);
    let density = trainer.mean_grad_density().unwrap_or(1.0);
    Table2Row {
        model,
        dataset: dataset_name.to_string(),
        p,
        accuracy,
        density,
    }
}

/// Runs the full Table II grid (all models × datasets × pruning rates).
pub fn run_grid(profile: Profile, models: &[ModelKind], datasets: &[&str]) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for &model in models {
        for &dataset in datasets {
            rows.push(run_cell(model, dataset, None, profile));
            for &p in &PRUNE_RATES {
                rows.push(run_cell(model, dataset, Some(p), profile));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_runs_and_reports() {
        let row = run_cell(ModelKind::Alexnet, "cifar10", Some(0.9), Profile::Quick);
        assert!(row.accuracy >= 0.0 && row.accuracy <= 1.0);
        assert!(row.density > 0.0 && row.density <= 1.0);
    }
}
