//! Paper-experiment implementations shared by the repro binaries.

pub mod convergence;
pub mod latency;
pub mod table1;
pub mod table2;
