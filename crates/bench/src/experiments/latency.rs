//! Figs. 8 & 9: per-sample training latency and energy, SparseTrain vs the
//! dense baseline.
//!
//! For each model/dataset pair the harness trains briefly with the paper's
//! pruning configuration (so both natural and artificial sparsity are
//! present), captures a dataflow trace of one training step, then simulates
//! the trace on the SparseTrain machine and its densified-baseline
//! configuration.

use crate::profile::Profile;
use sparsetrain_core::prune::PruneConfig;
use sparsetrain_nn::models::ModelKind;
use sparsetrain_nn::train::{TrainConfig, Trainer};
use sparsetrain_sim::baseline::simulate_baseline;
use sparsetrain_sim::energy::EnergyBreakdown;
use sparsetrain_sim::{ArchConfig, Machine};

/// One bar pair of Fig. 8 / Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// Model variant.
    pub model: ModelKind,
    /// Dataset proxy name.
    pub dataset: String,
    /// SparseTrain latency per sample (ms).
    pub sparse_ms: f64,
    /// Dense-baseline latency per sample (ms).
    pub dense_ms: f64,
    /// Speedup (dense / sparse).
    pub speedup: f64,
    /// SparseTrain energy breakdown per sample.
    pub sparse_energy: EnergyBreakdown,
    /// Baseline energy breakdown per sample.
    pub dense_energy: EnergyBreakdown,
    /// Energy-efficiency improvement (dense / sparse).
    pub energy_efficiency: f64,
}

/// Runs one model/dataset simulation pair.
pub fn run_pair(model: ModelKind, dataset_name: &str, profile: Profile) -> LatencyRow {
    let spec = profile.sim_dataset(dataset_name);
    let (train, _) = spec.generate();
    let net = model.build(
        spec.channels,
        spec.size,
        spec.classes,
        Some(PruneConfig::paper_default()),
        11,
    );
    let mut trainer = Trainer::new(
        net,
        TrainConfig {
            batch_size: 16,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 5,
            engine: None,
            checkpoint: None,
            shard: None,
        },
    );
    // Warm-up epochs: fill the pruning FIFOs and develop realistic
    // activation sparsity before the traced step.
    for _ in 0..profile.sim_warmup_epochs() {
        trainer.train_epoch(&train);
    }

    // Average over several traced samples: Fig. 8 reports *average*
    // latency per sample, and per-sample sparsity varies.
    let cfg = ArchConfig::paper_default();
    let machine = Machine::new(cfg);
    let samples = 3usize;
    let mut sparse_reports = Vec::with_capacity(samples);
    let mut dense_reports = Vec::with_capacity(samples);
    for i in 0..samples {
        let trace = trainer.capture_trace_at(&train, i * 17, model.name(), dataset_name);
        sparse_reports.push(machine.simulate(&trace));
        dense_reports.push(simulate_baseline(&machine, &trace));
    }
    let sparse = sparsetrain_sim::SimReport::mean_of(&sparse_reports);
    let dense = sparsetrain_sim::SimReport::mean_of(&dense_reports);

    LatencyRow {
        model,
        dataset: dataset_name.to_string(),
        sparse_ms: sparse.latency_ms(cfg.clock_mhz),
        dense_ms: dense.latency_ms(cfg.clock_mhz),
        speedup: sparse.speedup_over(&dense),
        sparse_energy: sparse.energy,
        dense_energy: dense.energy,
        energy_efficiency: sparse.energy_efficiency_over(&dense),
    }
}

/// Runs the Fig. 8/9 grid.
pub fn run_grid(profile: Profile, models: &[ModelKind], datasets: &[&str]) -> Vec<LatencyRow> {
    let mut rows = Vec::new();
    for &model in models {
        for &dataset in datasets {
            rows.push(run_pair(model, dataset, profile));
        }
    }
    rows
}

/// Geometric mean of the speedups in `rows`.
pub fn mean_speedup(rows: &[LatencyRow]) -> f64 {
    geometric_mean(rows.iter().map(|r| r.speedup))
}

/// Geometric mean of the energy-efficiency improvements in `rows`.
pub fn mean_energy_efficiency(rows: &[LatencyRow]) -> f64 {
    geometric_mean(rows.iter().map(|r| r.energy_efficiency))
}

fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 1.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(std::iter::empty()), 1.0);
    }

    #[test]
    fn pair_produces_speedup_above_one() {
        let row = run_pair(ModelKind::Alexnet, "cifar10", Profile::Quick);
        assert!(
            row.speedup > 1.0,
            "SparseTrain should beat the dense baseline, got {}",
            row.speedup
        );
        assert!(row.energy_efficiency > 1.0);
        assert!(row.sparse_ms > 0.0 && row.dense_ms > 0.0);
    }
}
