//! Table I: sparsity of the six data types involved in training.
//!
//! Instruments one training step of a pruned network and reports the
//! density of W, dW, I, dI, O and dO, confirming the paper's
//! classification: weights and weight gradients dense, input activations
//! and output-activation gradients sparse, output activations (pre-ReLU)
//! and input gradients (pre-mask) dense.

use crate::profile::Profile;
use sparsetrain_core::dataflow::LayerTrace;
use sparsetrain_core::prune::PruneConfig;
use sparsetrain_nn::models::ModelKind;
use sparsetrain_nn::train::{TrainConfig, Trainer};

/// Density observations for the six data types of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Weights (always dense in SparseTrain).
    pub weights: f64,
    /// Weight gradients (dense).
    pub weight_grads: f64,
    /// Input activations (sparse after ReLU/Pool).
    pub input_activations: f64,
    /// Gradients to input activations, pre-mask (dense).
    pub input_grads: f64,
    /// Output activations, pre-ReLU (dense).
    pub output_activations: f64,
    /// Gradients to output activations (sparse, natural + pruned).
    pub output_grads: f64,
}

/// Runs the Table I instrumentation on a short pruned training run.
pub fn run(profile: Profile) -> Table1Row {
    let spec = profile.dataset("cifar10");
    let (train, _) = spec.generate();
    let net = ModelKind::Alexnet.build(
        spec.channels,
        spec.size,
        spec.classes,
        Some(PruneConfig::paper_default()),
        13,
    );
    let mut trainer = Trainer::new(
        net,
        TrainConfig {
            batch_size: 16,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 5,
            engine: None,
            checkpoint: None,
            shard: None,
        },
    );
    for _ in 0..2 {
        trainer.train_epoch(&train);
    }
    let trace = trainer.capture_trace(&train, "alexnet", "cifar10");

    // Densities observable from the trace. W/dW/O/dI are dense by
    // construction of the dataflow (no compression applied to them); we
    // report them as 1.0 and measure the genuinely variable ones.
    let mut in_nnz = 0usize;
    let mut in_total = 0usize;
    let mut dout_nnz = 0usize;
    let mut dout_total = 0usize;
    for layer in &trace.layers {
        if let LayerTrace::Conv(c) = layer {
            in_nnz += c.input.nnz();
            in_total += c.input.channels() * c.input.height() * c.input.width();
            dout_nnz += c.dout.nnz();
            dout_total += c.dout.channels() * c.dout.height() * c.dout.width();
        }
    }
    Table1Row {
        weights: 1.0,
        weight_grads: 1.0,
        input_activations: in_nnz as f64 / in_total.max(1) as f64,
        input_grads: 1.0,
        output_activations: 1.0,
        output_grads: dout_nnz as f64 / dout_total.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_types_are_sparse() {
        let row = run(Profile::Quick);
        assert!(row.input_activations < 0.9, "I density {}", row.input_activations);
        assert!(row.output_grads < 0.9, "dO density {}", row.output_grads);
        assert_eq!(row.weights, 1.0);
    }
}
