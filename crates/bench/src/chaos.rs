//! The chaos campaign behind `sparsetrain-bench chaos` and the CI `chaos`
//! job.
//!
//! Each scenario installs a seeded [`FaultPlan`] (kill mid-epoch, torn
//! checkpoint write, truncated read, injected engine panic, or a storm of
//! all of them), runs a short supervised training job through the faults,
//! and asserts the recovered run's final parameters are **bitwise
//! identical** to a fault-free reference run. Because every fault draw is
//! counter-keyed and every site is checked on the trainer's main thread,
//! the campaign is reproducible at any `RAYON_NUM_THREADS`.
//!
//! `extra` appends seeded randomized kill scenarios (kill step drawn from
//! the campaign seed's [`StreamKey`] ladder) on top of the five named
//! ones, so successive CI runs with different seeds keep widening
//! coverage without losing reproducibility.

use rand::stream::StreamKey;
use sparsetrain_checkpoint::CheckpointPolicy;
use sparsetrain_core::prune::PruneConfig;
use sparsetrain_faults::{self as faults, FaultPlan, Site, Trigger};
use sparsetrain_nn::data::{Dataset, SyntheticSpec};
use sparsetrain_nn::layer::Layer;
use sparsetrain_nn::metrics::MetricStore;
use sparsetrain_nn::models;
use sparsetrain_nn::supervisor::{Supervisor, SupervisorConfig};
use sparsetrain_nn::train::{TrainConfig, Trainer};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Engine under test: parity-pinned, so quarantine fallback to scalar must
/// be bitwise-neutral.
const ENGINE: &str = "parallel:simd";

/// Epochs per scenario run.
const EPOCHS: usize = 3;

/// Checkpoint step cadence of every scenario.
const CADENCE: u64 = 3;

/// Domain separator for the campaign's own randomized-scenario draws
/// (disjoint from the faults crate's `FAULT_DOMAIN`: b"CHAOS").
const CHAOS_DOMAIN: u64 = 0x0043_4841_4F53;

/// One scenario's verdict.
pub struct ScenarioOutcome {
    /// Scenario name (stable across runs; keys the jsonl record).
    pub name: String,
    /// Whether every assertion held.
    pub pass: bool,
    /// `"ok"`, or what went wrong.
    pub detail: String,
    /// Recoveries the supervisor performed.
    pub recoveries: usize,
    /// Engines quarantined during the run.
    pub quarantined: Vec<String>,
    /// Recovery kinds observed, in order (`kill`, `engine-panic`, ...).
    pub kinds: Vec<String>,
    /// Corrupt/unreadable snapshots skipped across all recoveries.
    pub skipped: usize,
    /// Total backoff slept across recoveries, in milliseconds.
    pub backoff_ms: u64,
    /// Total time spent restoring state across recoveries (time to
    /// recover), in milliseconds.
    pub recover_ms: u64,
    /// Scenario wall-clock, in milliseconds.
    pub elapsed_ms: u64,
}

impl ScenarioOutcome {
    /// Renders the outcome as one `{"chaos":{...}}` jsonl line.
    pub fn to_jsonl(&self) -> String {
        let quarantined: Vec<String> = self.quarantined.iter().map(|q| format!("\"{q}\"")).collect();
        let kinds: Vec<String> = self.kinds.iter().map(|k| format!("\"{k}\"")).collect();
        format!(
            "{{\"chaos\":{{\"name\":\"{}\",\"pass\":{},\"recoveries\":{},\"quarantined\":[{}],\
             \"kinds\":[{}],\"skipped\":{},\"backoff_ms\":{},\"recover_ms\":{},\"elapsed_ms\":{},\
             \"detail\":\"{}\"}}}}",
            self.name,
            self.pass,
            self.recoveries,
            quarantined.join(","),
            kinds.join(","),
            self.skipped,
            self.backoff_ms,
            self.recover_ms,
            self.elapsed_ms,
            self.detail.replace('\\', "\\\\").replace('"', "\\\""),
        )
    }
}

/// The whole campaign's verdict.
pub struct CampaignReport {
    /// Campaign seed (feeds every scenario's fault plan).
    pub seed: u64,
    /// Optimizer steps per epoch of the fixture (fault triggers are
    /// expressed relative to it).
    pub steps_per_epoch: u64,
    /// Per-scenario verdicts, in execution order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl CampaignReport {
    /// Whether every scenario passed.
    pub fn all_pass(&self) -> bool {
        self.outcomes.iter().all(|o| o.pass)
    }

    /// Renders the campaign as a Markdown summary table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## Chaos campaign (seed {}, {} steps/epoch, engine `{ENGINE}`)\n\n",
            self.seed, self.steps_per_epoch
        );
        let _ = writeln!(
            out,
            "| scenario | verdict | recoveries | kinds | quarantined | skipped | backoff | recover |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} ms | {} ms |",
                o.name,
                if o.pass { "PASS" } else { "**FAIL**" },
                o.recoveries,
                if o.kinds.is_empty() {
                    "—".to_string()
                } else {
                    o.kinds.join(", ")
                },
                if o.quarantined.is_empty() {
                    "—".to_string()
                } else {
                    o.quarantined.join(", ")
                },
                o.skipped,
                o.backoff_ms,
                o.recover_ms,
            );
        }
        let failed: Vec<&ScenarioOutcome> = self.outcomes.iter().filter(|o| !o.pass).collect();
        if failed.is_empty() {
            let _ = writeln!(
                out,
                "\n**PASS** — every recovered run matched the fault-free run bitwise."
            );
        } else {
            let _ = writeln!(out, "\n**FAIL** — {} scenario(s) diverged:\n", failed.len());
            for o in failed {
                let _ = writeln!(out, "- `{}`: {}", o.name, o.detail);
            }
        }
        out
    }
}

/// What a scenario injects and what it must observe beyond bitwise
/// equality.
struct Scenario {
    name: String,
    plan: FaultPlan,
    min_recoveries: usize,
    expect_quarantined: Option<&'static str>,
    /// Expect at least one corrupt snapshot skipped during recovery.
    expect_skipped: bool,
}

fn fixture_dataset() -> Dataset {
    SyntheticSpec::tiny(3).generate().0
}

fn make_trainer(config: TrainConfig) -> Trainer {
    Trainer::new(models::mini_cnn(3, 4, Some(PruneConfig::new(0.9, 2))), config)
}

fn param_bits(trainer: &mut Trainer) -> Vec<u32> {
    let mut bits = Vec::new();
    trainer
        .network_mut()
        .visit_params(&mut |w, _| bits.extend(w.iter().map(|v| v.to_bits())));
    bits
}

fn supervisor() -> Supervisor {
    Supervisor::new(SupervisorConfig {
        max_retries: 5,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(8),
    })
}

/// The five named scenarios plus `extra` seeded randomized kills.
///
/// `e` is the fixture's steps per epoch; `s` below is a checkpoint-cadence
/// step deep enough into epoch 2 that the *previous* snapshot still beats
/// the supervisor's epoch-boundary shadow — so corrupting the newest
/// snapshot genuinely exercises the skip-and-fall-back path.
fn scenarios(seed: u64, extra: usize, e: u64) -> Vec<Scenario> {
    let s = (e + 5).div_ceil(CADENCE) * CADENCE;
    let mut list = vec![
        // SIGKILL-shaped crash mid-epoch 2: resume from the newest snapshot.
        Scenario {
            name: "kill-mid-epoch".into(),
            plan: FaultPlan::new(seed).with(Site::StepKill, Trigger::At(e + e / 2)),
            min_recoveries: 1,
            expect_quarantined: None,
            expect_skipped: false,
        },
        // The write at step s is torn (truncated but renamed into place),
        // then the process dies right after: recovery must skip the corrupt
        // newest snapshot and restart from the older valid one.
        Scenario {
            name: "torn-write-newest".into(),
            plan: FaultPlan::new(seed)
                .with(Site::CkptWriteTorn, Trigger::At(s / CADENCE - 1))
                .with(Site::StepKill, Trigger::At(s - 1)),
            min_recoveries: 1,
            expect_quarantined: None,
            expect_skipped: true,
        },
        // A kernel engine blows up mid-dispatch: quarantine it and degrade
        // to scalar, bitwise-neutrally.
        Scenario {
            name: "engine-panic".into(),
            plan: FaultPlan::new(seed).with_engine(Site::EnginePanic, Trigger::At(20), ENGINE),
            min_recoveries: 1,
            expect_quarantined: Some(ENGINE),
            expect_skipped: false,
        },
        // The newest snapshot reads back short (torn at rest): the first
        // load of the recovery scan is truncated and must be skipped.
        Scenario {
            name: "short-read-newest".into(),
            plan: FaultPlan::new(seed)
                .with(Site::CkptReadShort, Trigger::At(0))
                .with(Site::StepKill, Trigger::At(s - 1)),
            min_recoveries: 1,
            expect_quarantined: None,
            expect_skipped: true,
        },
        // Everything at once: an ENOSPC-shaped write failure, a torn write,
        // an engine panic and a kill, in one run.
        Scenario {
            name: "storm".into(),
            plan: FaultPlan::new(seed)
                .with(Site::CkptWriteError, Trigger::At(2))
                .with(Site::CkptWriteTorn, Trigger::At(4))
                .with_engine(Site::EnginePanic, Trigger::At(200), ENGINE)
                .with(Site::StepKill, Trigger::At(s - 1)),
            min_recoveries: 3,
            expect_quarantined: Some(ENGINE),
            expect_skipped: false,
        },
    ];
    // Seeded randomized kills: the kill step is a pure function of
    // (campaign seed, scenario index) via the stream ladder, so "random"
    // still replays exactly.
    let key = StreamKey::new(seed).derive(CHAOS_DOMAIN);
    for i in 0..extra {
        let kill_step = 1 + key.derive(i as u64).word_at(0) % (EPOCHS as u64 * e - 1);
        list.push(Scenario {
            name: format!("random-kill-{i}@{kill_step}"),
            plan: FaultPlan::new(seed ^ (i as u64 + 1)).with(Site::StepKill, Trigger::At(kill_step - 1)),
            min_recoveries: 1,
            expect_quarantined: None,
            expect_skipped: false,
        });
    }
    list
}

/// Runs the full campaign: fault-free reference first, then every
/// scenario, asserting each recovered run reproduces the reference
/// parameters bit for bit.
pub fn run_campaign(seed: u64, extra: usize) -> Result<CampaignReport, String> {
    let train = fixture_dataset();
    let e = {
        let mut probe = make_trainer(TrainConfig::quick());
        probe.train_epoch(&train);
        probe.stream_seeds().step()
    };

    // Fault-free supervised reference run (no checkpoints, no faults).
    faults::clear();
    let reference = {
        let mut trainer = make_trainer(TrainConfig::quick().with_engine_name(ENGINE));
        let mut metrics = MetricStore::new();
        let out = supervisor()
            .train(&mut trainer, &train, None, EPOCHS, &mut metrics, &mut [])
            .map_err(|err| format!("fault-free reference run failed: {err}"))?;
        if out.recoveries != 0 {
            return Err(format!(
                "fault-free reference run performed {} recoveries",
                out.recoveries
            ));
        }
        param_bits(&mut trainer)
    };

    let mut outcomes = Vec::new();
    for scenario in scenarios(seed, extra, e) {
        outcomes.push(run_scenario(&scenario, &train, &reference));
        faults::clear();
    }
    Ok(CampaignReport {
        seed,
        steps_per_epoch: e,
        outcomes,
    })
}

fn scenario_dir(name: &str) -> PathBuf {
    let slug: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    std::env::temp_dir().join(format!("sparsetrain-chaos-{}-{slug}", std::process::id()))
}

fn run_scenario(scenario: &Scenario, train: &Dataset, reference: &[u32]) -> ScenarioOutcome {
    let started = Instant::now();
    let dir = scenario_dir(&scenario.name);
    let _ = std::fs::remove_dir_all(&dir);
    let mut outcome = ScenarioOutcome {
        name: scenario.name.clone(),
        pass: false,
        detail: "ok".into(),
        recoveries: 0,
        quarantined: Vec::new(),
        kinds: Vec::new(),
        skipped: 0,
        backoff_ms: 0,
        recover_ms: 0,
        elapsed_ms: 0,
    };

    faults::install(scenario.plan.clone());
    let config = TrainConfig::quick()
        .with_engine_name(ENGINE)
        .with_checkpoint_policy(CheckpointPolicy::every_steps(&dir, CADENCE).with_keep(3));
    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut trainer = make_trainer(config);
        let mut metrics = MetricStore::new();
        let supervised = supervisor().train(&mut trainer, train, None, EPOCHS, &mut metrics, &mut []);
        (supervised, param_bits(&mut trainer), metrics)
    }));
    faults::clear();

    match run {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            outcome.detail = format!("escaped the supervisor: {msg}");
        }
        Ok((Err(err), _, metrics)) => {
            outcome.recoveries = metrics.recoveries().len();
            outcome.detail = format!("supervisor gave up: {err}");
        }
        Ok((Ok(supervised), bits, metrics)) => {
            outcome.recoveries = supervised.recoveries;
            outcome.quarantined = supervised.quarantined.clone();
            for rec in metrics.recoveries() {
                outcome.kinds.push(rec.kind.clone());
                outcome.skipped += rec.skipped.len();
                outcome.backoff_ms += rec.backoff_ms;
                outcome.recover_ms += rec.recover_ms;
            }
            outcome.detail =
                check_expectations(scenario, &supervised.quarantined, &outcome, &bits, reference);
            outcome.pass = outcome.detail == "ok";
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    outcome.elapsed_ms = started.elapsed().as_millis() as u64;
    outcome
}

fn check_expectations(
    scenario: &Scenario,
    quarantined: &[String],
    outcome: &ScenarioOutcome,
    bits: &[u32],
    reference: &[u32],
) -> String {
    if bits != reference {
        let diverged = bits.iter().zip(reference).filter(|(a, b)| a != b).count();
        return format!(
            "final parameters diverged from the fault-free run ({diverged} of {} words differ)",
            reference.len()
        );
    }
    if outcome.recoveries < scenario.min_recoveries {
        return format!(
            "expected at least {} recoveries, saw {}",
            scenario.min_recoveries, outcome.recoveries
        );
    }
    if let Some(engine) = scenario.expect_quarantined {
        if !quarantined.iter().any(|q| q == engine) {
            return format!("expected `{engine}` to be quarantined, got {quarantined:?}");
        }
    }
    if scenario.expect_skipped && outcome.skipped == 0 {
        return "expected at least one corrupt snapshot to be skipped".into();
    }
    "ok".into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_outcomes_render_jsonl() {
        let outcome = ScenarioOutcome {
            name: "torn-write-newest".into(),
            pass: true,
            detail: "ok".into(),
            recoveries: 1,
            quarantined: vec![],
            kinds: vec!["kill".into()],
            skipped: 1,
            backoff_ms: 0,
            recover_ms: 2,
            elapsed_ms: 100,
        };
        assert_eq!(
            outcome.to_jsonl(),
            "{\"chaos\":{\"name\":\"torn-write-newest\",\"pass\":true,\"recoveries\":1,\
             \"quarantined\":[],\"kinds\":[\"kill\"],\"skipped\":1,\"backoff_ms\":0,\
             \"recover_ms\":2,\"elapsed_ms\":100,\"detail\":\"ok\"}}"
        );
    }

    #[test]
    fn scenario_list_scales_with_extra_and_stays_seeded() {
        let a = scenarios(42, 2, 13);
        let b = scenarios(42, 2, 13);
        assert_eq!(a.len(), 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name, "randomized scenarios must replay from the seed");
            assert_eq!(x.plan, y.plan);
        }
        assert_eq!(scenarios(42, 0, 13).len(), 5);
        // A different campaign seed produces different fault plans.
        let c = scenarios(43, 2, 13);
        assert_ne!(a[5].plan, c[5].plan);
    }

    #[test]
    fn markdown_report_flags_failures() {
        let report = CampaignReport {
            seed: 42,
            steps_per_epoch: 13,
            outcomes: vec![ScenarioOutcome {
                name: "kill-mid-epoch".into(),
                pass: false,
                detail: "final parameters diverged from the fault-free run (3 of 9 words differ)".into(),
                recoveries: 1,
                quarantined: vec![],
                kinds: vec!["kill".into()],
                skipped: 0,
                backoff_ms: 0,
                recover_ms: 1,
                elapsed_ms: 10,
            }],
        };
        let md = report.to_markdown();
        assert!(md.contains("**FAIL**"), "{md}");
        assert!(md.contains("parameters diverged"), "{md}");
        assert!(!report.all_pass());
    }
}
