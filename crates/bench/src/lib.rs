//! Benchmark harness and paper-experiment reproduction for SparseTrain.
//!
//! Each experiment in the paper's evaluation section has a module here and
//! a binary in `src/bin` that prints the same rows/series the paper
//! reports:
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table I (data sparsity) | [`experiments::table1`] | `repro_table1` |
//! | Table II (accuracy & density) | [`experiments::table2`] | `repro_table2` |
//! | Fig. 8 (latency / speedup) | [`experiments::latency`] | `repro_fig8` |
//! | Fig. 9 (energy breakdown) | [`experiments::latency`] | `repro_fig9` |
//! | §VI-B convergence | [`experiments::convergence`] | `repro_convergence` |
//!
//! The Criterion benches in `benches/` cover the kernel, pruning, simulator
//! and training-step micro-costs plus the design-choice ablations listed in
//! DESIGN.md. [`chaos`] holds the fault-injection campaign behind
//! `sparsetrain-bench chaos`: seeded crash/corruption scenarios that must
//! recover bitwise through the training supervisor.

pub mod chaos;
pub mod experiments;
pub mod profile;
pub mod table;
