//! Regenerates the §VI-B convergence study: per-epoch training loss for
//! dense vs pruned training (the pruned curve should track the dense one).

use sparsetrain_bench::experiments::convergence::run;
use sparsetrain_bench::profile::Profile;
use sparsetrain_bench::table::{fmt, render};
use sparsetrain_nn::models::ModelKind;

fn main() {
    let profile = Profile::from_env();
    println!("Convergence reproduction ({profile:?} profile)");
    println!("paper: pruned loss curves track the dense curve; AlexNet slightly slower at aggressive p\n");

    for model in [ModelKind::Alexnet, ModelKind::Resnet18] {
        let curves = run(
            model,
            "cifar10",
            &[None, Some(0.7), Some(0.9), Some(0.99)],
            profile,
        );
        println!("model: {}", model.name());
        let epochs = curves[0].losses.len();
        let mut rows = vec![{
            let mut h = vec!["p".to_string()];
            h.extend((1..=epochs).map(|e| format!("ep{e}")));
            h.push("final acc".into());
            h
        }];
        for c in &curves {
            let mut row = vec![c.p.map_or("dense".to_string(), |p| format!("{p}"))];
            row.extend(c.losses.iter().map(|&l| fmt(l, 3)));
            row.push(fmt(c.final_accuracy * 100.0, 1));
            rows.push(row);
        }
        println!("{}", render(&rows));
    }
}
