//! `sparsetrain-bench` — the bench-trajectory gate behind the CI perf jobs.
//!
//! The criterion shim appends every measurement as one JSON line to
//! `target/bench-results.jsonl`. This binary turns that trajectory into
//! enforcement:
//!
//! * `baseline` — collapse a results file into a committed per-leg
//!   baseline (`crates/bench/baseline.json`, median ns per label).
//! * `check` — regression-gate the conv legs of a fresh run against the
//!   baseline. The gated metric is the **speedup relative to the same
//!   run's scalar leg** (`engine_ns / scalar_ns`), so a uniformly faster
//!   or slower runner cancels out and the gate survives runner-class
//!   changes; a leg whose normalized ratio degrades by more than
//!   `--max-regression` (default 20 %) fails the job. The pruning group's
//!   engine-banded legs are gated the same way, normalized by the same
//!   run's sequential (`pruning/seq/…`) reference leg. Also renders the
//!   scalar/parallel/simd/im2row ratio table as Markdown (to
//!   `--summary`, e.g. `$GITHUB_STEP_SUMMARY`).
//! * `plan` — probe the density-adaptive planner on the AlexNet-shape
//!   bench fixtures and print the frozen per-(layer, stage) execution
//!   plan as a Markdown table (what the `auto` engine decides on this
//!   machine at these densities). `--emit <file>` compiles the probed
//!   plan into a binary `STPLAN` execution program; `--replay <file>`
//!   decodes such a program in a fresh process and replays it through
//!   the plan VM over the same fixtures, failing unless every program
//!   cell executes. The emitted artifact is also what `SPARSETRAIN_PLAN`
//!   accepts (alongside the legacy text format).
//! * `ckpt` — measure the checkpoint subsystem on an AlexNet-shape model:
//!   snapshot encode, decode, and the atomic save round-trip (write +
//!   fsync + rename), plus the snapshot size. Appends one shim-format
//!   line per leg to the results trajectory (default
//!   `target/bench-results.jsonl`; `--results` overrides).
//! * `multicore` — assert the parallel engine's multi-core win on the
//!   batched forward leg (`--min-ratio`, default the ROADMAP's 1.5×) and
//!   record the measured ratios. Run it from a bench invocation with
//!   `RAYON_NUM_THREADS=4` on a multi-core runner; on one core the
//!   parallel engine degenerates to one band and the assertion would
//!   rightly fail.
//! * `shard` — assert the sharded data-parallel trainer's multi-worker
//!   win: one epoch of a compute-heavy mini-CNN at 1 worker vs 4 workers
//!   (scalar-engine replicas, so all parallelism comes from the worker
//!   pool), requiring the 4-worker epoch to be `--min-ratio`× faster
//!   (default 1.5×) **and** the final parameters of the 1-, 2- and
//!   4-worker runs to be bitwise identical. Run it on a multi-core
//!   runner; on one core the workers serialise and the ratio assertion
//!   would rightly fail.
//! * `doccheck` — verify every relative Markdown link in `README.md` and
//!   `docs/*.md` resolves to an existing file (external URLs and pure
//!   `#anchor` links are skipped; fenced code blocks are ignored). The
//!   CI docs job runs this so the architecture book cannot rot silently.
//! * `chaos` — run the seeded fault-injection campaign: kill mid-epoch,
//!   torn/failed checkpoint writes, truncated reads and injected engine
//!   panics, each recovered by the training supervisor and required to
//!   land **bitwise** on the fault-free run's parameters. `--seed` fixes
//!   the campaign, `--extra` appends seeded randomized kill scenarios,
//!   and one `{"chaos":{...}}` line per scenario is appended to `--out`.
//!
//! Regenerate the committed baseline after intentional perf changes.
//! Always at **one rayon worker** — the gate's ratios are single-threaded
//! kernel comparisons, and pinning the thread count keeps a baseline from
//! an N-core box comparable to any runner:
//!
//! ```sh
//! rm -f target/bench-results.jsonl
//! RAYON_NUM_THREADS=1 cargo bench -p sparsetrain-bench --bench engine
//! cargo run --release -p sparsetrain-bench --bin sparsetrain-bench -- \
//!     baseline --results target/bench-results.jsonl --out crates/bench/baseline.json
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

/// The per-stage conv bench groups the regression gate covers.
const CONV_GROUPS: [&str; 3] = ["engine_forward", "engine_input_grad", "engine_weight_grad"];

/// The group the multi-core assertion reads.
const BATCHED_GROUP: &str = "engine_forward_batched";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match Opts::parse(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let run = || -> Result<bool, String> {
        match cmd.as_str() {
            "baseline" => cmd_baseline(&opts),
            "check" => cmd_check(&opts),
            "multicore" => cmd_multicore(&opts),
            "shard" => cmd_shard(&opts),
            "doccheck" => cmd_doccheck(&opts),
            "plan" => cmd_plan(&opts),
            "ckpt" => cmd_ckpt(&opts),
            "chaos" => cmd_chaos(&opts),
            other => Err(format!("unknown subcommand {other:?}")),
        }
    };
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: sparsetrain-bench <baseline|check|multicore|shard|doccheck|plan|ckpt|chaos> [options]

  baseline  --results <jsonl> --out <json>
  check     --results <jsonl> --baseline <json>
            [--max-regression 0.20] [--summary <path>]
  multicore --results <jsonl> [--min-ratio 1.5] [--summary <path>]
  shard     [--min-ratio 1.5] [--summary <path>]
  doccheck  [--summary <path>]
  plan      [--emit <file>] [--replay <file>] [--summary <path>]
  ckpt      [--results <jsonl>] [--summary <path>]
  chaos     [--seed 42] [--extra 2] [--out target/chaos-results.jsonl]
            [--summary <path>]";

struct Opts {
    results: Option<String>,
    baseline: Option<String>,
    out: Option<String>,
    summary: Option<String>,
    emit: Option<String>,
    replay: Option<String>,
    max_regression: f64,
    min_ratio: f64,
    seed: u64,
    extra: usize,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Opts {
            results: None,
            baseline: None,
            out: None,
            summary: None,
            emit: None,
            replay: None,
            max_regression: 0.20,
            min_ratio: 1.5,
            seed: 42,
            extra: 2,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--results" => opts.results = Some(value()?.to_string()),
                "--baseline" => opts.baseline = Some(value()?.to_string()),
                "--out" => opts.out = Some(value()?.to_string()),
                "--summary" => opts.summary = Some(value()?.to_string()),
                "--emit" => opts.emit = Some(value()?.to_string()),
                "--replay" => opts.replay = Some(value()?.to_string()),
                "--max-regression" => {
                    opts.max_regression = value()?.parse().map_err(|e| format!("--max-regression: {e}"))?;
                }
                "--min-ratio" => {
                    opts.min_ratio = value()?.parse().map_err(|e| format!("--min-ratio: {e}"))?;
                }
                "--seed" => {
                    opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                "--extra" => {
                    opts.extra = value()?.parse().map_err(|e| format!("--extra: {e}"))?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(opts)
    }

    fn results(&self) -> Result<&str, String> {
        self.results
            .as_deref()
            .ok_or_else(|| "--results is required".into())
    }
}

// ---------------------------------------------------------------------------
// Trajectory / baseline parsing (our own shim's flat formats; no JSON crate)
// ---------------------------------------------------------------------------

/// Extracts `(label, mean_ns)` from one shim-written JSONL line.
fn parse_jsonl_line(line: &str) -> Option<(String, f64)> {
    let label = line.split("\"bench\":\"").nth(1)?.split('"').next()?.to_string();
    let mean: f64 = line
        .split("\"mean_ns\":")
        .nth(1)?
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()?;
    (mean.is_finite() && mean > 0.0).then_some((label, mean))
}

/// Median ns per label across every record of a results file.
fn load_results(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut by_label: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Some((label, mean)) = parse_jsonl_line(line) {
            by_label.entry(label).or_default().push(mean);
        }
    }
    if by_label.is_empty() {
        return Err(format!("{path} contains no bench records"));
    }
    Ok(by_label
        .into_iter()
        .map(|(label, ns)| (label, median(ns)))
        .collect())
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Writes the baseline as a flat, sorted `{"label": ns}` JSON object.
fn render_baseline(legs: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (label, ns)) in legs.iter().enumerate() {
        let comma = if i + 1 == legs.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{label}\": {ns:.1}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Parses the flat baseline object by scanning `"label": number` pairs
/// (labels never contain quotes).
fn parse_baseline(text: &str) -> BTreeMap<String, f64> {
    let mut legs = BTreeMap::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        let label = &rest[..end];
        rest = &rest[end + 1..];
        let value = rest
            .trim_start_matches([':', ' '])
            .split([',', '\n', '}'])
            .next()
            .unwrap_or("");
        if let Ok(ns) = value.trim().parse::<f64>() {
            legs.insert(label.to_string(), ns);
        }
    }
    legs
}

/// Splits a per-stage label `group/engine/layer` (engine names may contain
/// `:` but never `/`).
fn split_leg(label: &str) -> Option<(&str, &str, &str)> {
    let mut parts = label.splitn(3, '/');
    Some((parts.next()?, parts.next()?, parts.next()?))
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

fn cmd_baseline(opts: &Opts) -> Result<bool, String> {
    let results = load_results(opts.results()?)?;
    let out = opts.out.as_deref().ok_or("--out is required")?;
    std::fs::write(out, render_baseline(&results)).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {} legs to {out}", results.len());
    Ok(true)
}

fn cmd_check(opts: &Opts) -> Result<bool, String> {
    let current = load_results(opts.results()?)?;
    let baseline_path = opts.baseline.as_deref().ok_or("--baseline is required")?;
    let baseline_text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let baseline = parse_baseline(&baseline_text);
    if baseline.is_empty() {
        return Err(format!("{baseline_path} contains no legs"));
    }

    let (mut failures, mut fresh) = gate_conv_legs(&baseline, &current, opts.max_regression);
    let (prune_failures, prune_fresh) = gate_pruning_legs(&baseline, &current, opts.max_regression);
    failures.extend(prune_failures);
    fresh.extend(prune_fresh);
    let mut summary = render_ratio_table(&current);
    let _ = writeln!(
        summary,
        "\nGate: normalized conv-leg ratio (engine/scalar, same run) and banded-pruning \
         ratio (banded/seq, same run) vs baseline, threshold +{:.0} %.\n",
        opts.max_regression * 100.0
    );
    if failures.is_empty() {
        let _ = writeln!(summary, "**PASS** — no gated leg regressed.");
    } else {
        let _ = writeln!(summary, "**FAIL** — {} leg(s) regressed:\n", failures.len());
        for f in &failures {
            let _ = writeln!(summary, "- {f}");
        }
    }
    for leg in &fresh {
        let _ = writeln!(
            summary,
            "- note: `{leg}` has no baseline entry — regenerate `crates/bench/baseline.json`."
        );
    }
    emit_summary(opts, &summary);
    Ok(failures.is_empty())
}

/// Gates every conv leg present in the baseline. Returns (failures,
/// current legs missing from the baseline).
fn gate_conv_legs(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    max_regression: f64,
) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut fresh = Vec::new();
    let scalar_leg = |legs: &BTreeMap<String, f64>, group: &str, layer: &str| {
        legs.get(&format!("{group}/scalar/{layer}")).copied()
    };
    for (label, &base_ns) in baseline {
        let Some((group, engine, layer)) = split_leg(label) else {
            continue;
        };
        if !CONV_GROUPS.contains(&group) {
            continue;
        }
        let Some(&cur_ns) = current.get(label) else {
            failures.push(format!("`{label}`: leg missing from this run"));
            continue;
        };
        if engine == "scalar" {
            continue; // the normalization reference
        }
        let (Some(base_scalar), Some(cur_scalar)) = (
            scalar_leg(baseline, group, layer),
            scalar_leg(current, group, layer),
        ) else {
            continue;
        };
        let base_rel = base_ns / base_scalar;
        let cur_rel = cur_ns / cur_scalar;
        let regression = cur_rel / base_rel - 1.0;
        if regression > max_regression {
            failures.push(format!(
                "`{label}`: {:.2}× scalar, was {:.2}× (+{:.0} %)",
                cur_rel,
                base_rel,
                regression * 100.0
            ));
        }
    }
    for label in current.keys() {
        if let Some((group, _, _)) = split_leg(label) {
            if CONV_GROUPS.contains(&group) && !baseline.contains_key(label) {
                fresh.push(label.clone());
            }
        }
    }
    (failures, fresh)
}

/// Gates the pruning group's engine-banded legs
/// (`pruning/banded/{engine}/t{threads}/b{batch}`) against the baseline,
/// normalized by the same run's sequential reference leg
/// (`pruning/seq/t{threads}/b{batch}`). The seq legs themselves are
/// reference-only and never gated. Returns (failures, current banded legs
/// missing from the baseline).
fn gate_pruning_legs(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    max_regression: f64,
) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut fresh = Vec::new();
    // "pruning/banded/{engine}/{tail}" → its "pruning/seq/{tail}" reference
    // (engine names may contain ':' but never '/').
    let seq_ref = |label: &str| -> Option<String> {
        let spec = label.strip_prefix("pruning/banded/")?;
        let (_engine, tail) = spec.split_once('/')?;
        Some(format!("pruning/seq/{tail}"))
    };
    for (label, &base_ns) in baseline {
        let Some(seq) = seq_ref(label) else { continue };
        let Some(&cur_ns) = current.get(label) else {
            failures.push(format!("`{label}`: leg missing from this run"));
            continue;
        };
        let (Some(&base_seq), Some(&cur_seq)) = (baseline.get(&seq), current.get(&seq)) else {
            continue;
        };
        let base_rel = base_ns / base_seq;
        let cur_rel = cur_ns / cur_seq;
        let regression = cur_rel / base_rel - 1.0;
        if regression > max_regression {
            failures.push(format!(
                "`{label}`: {:.2}× seq, was {:.2}× (+{:.0} %)",
                cur_rel,
                base_rel,
                regression * 100.0
            ));
        }
    }
    for label in current.keys() {
        if seq_ref(label).is_some() && !baseline.contains_key(label) {
            fresh.push(label.clone());
        }
    }
    (failures, fresh)
}

/// Renders the per-stage engine comparison as Markdown: one table per conv
/// group, one row per layer, speedups relative to the same run's scalar
/// leg.
fn render_ratio_table(current: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("## Engine bench ratios\n");
    for group in CONV_GROUPS {
        // Engines and layers present for this group, in first-seen order.
        let mut engines: Vec<&str> = Vec::new();
        let mut layers: Vec<&str> = Vec::new();
        for label in current.keys() {
            if let Some((g, engine, layer)) = split_leg(label) {
                if g == group {
                    if !engines.contains(&engine) {
                        engines.push(engine);
                    }
                    if !layers.contains(&layer) {
                        layers.push(layer);
                    }
                }
            }
        }
        if layers.is_empty() {
            continue;
        }
        engines.sort_by_key(|e| (*e != "scalar", *e));
        let _ = writeln!(out, "\n### {group}\n");
        let _ = writeln!(out, "| leg | {} |", engines.join(" | "));
        let _ = writeln!(out, "|---|{}", "---|".repeat(engines.len()));
        for layer in layers {
            let scalar_ns = current.get(&format!("{group}/scalar/{layer}")).copied();
            let cells: Vec<String> = engines
                .iter()
                .map(|engine| {
                    let Some(&ns) = current.get(&format!("{group}/{engine}/{layer}")) else {
                        return "—".to_string();
                    };
                    match (*engine, scalar_ns) {
                        ("scalar", _) | (_, None) => format_ns(ns),
                        (_, Some(s)) => format!("{} ({:.2}×)", format_ns(ns), s / ns),
                    }
                })
                .collect();
            let _ = writeln!(out, "| {layer} | {} |", cells.join(" | "));
        }
    }
    out
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn cmd_multicore(opts: &Opts) -> Result<bool, String> {
    let current = load_results(opts.results()?)?;
    let threads = std::env::var("RAYON_NUM_THREADS").unwrap_or_else(|_| "auto".into());
    let mut summary = format!("## Multi-core validation ({threads} rayon threads)\n\n");
    let mut best: Option<(String, f64)> = None;
    let _ = writeln!(summary, "| leg | scalar | parallel | ratio |");
    let _ = writeln!(summary, "|---|---|---|---|");
    for (label, &scalar_ns) in &current {
        let Some((group, engine, layer)) = split_leg(label) else {
            continue;
        };
        if group != BATCHED_GROUP || engine != "scalar" {
            continue;
        }
        // layer is e.g. "batched/conv3_128x192x8" or "per_sample/...".
        let Some(&parallel_ns) = current.get(&format!("{group}/parallel/{layer}")) else {
            continue;
        };
        let ratio = scalar_ns / parallel_ns;
        let _ = writeln!(
            summary,
            "| {layer} | {} | {} | {ratio:.2}× |",
            format_ns(scalar_ns),
            format_ns(parallel_ns)
        );
        if layer.starts_with("batched/") && best.as_ref().is_none_or(|(_, b)| ratio > *b) {
            best = Some((layer.to_string(), ratio));
        }
    }
    let pass = match &best {
        Some((layer, ratio)) => {
            let _ = writeln!(
                summary,
                "\nBest batched-leg ratio: **{ratio:.2}×** (`{layer}`), required ≥ {:.2}×.",
                opts.min_ratio
            );
            *ratio >= opts.min_ratio
        }
        None => {
            let _ = writeln!(summary, "\nNo batched scalar/parallel leg pair found.");
            false
        }
    };
    let _ = writeln!(
        summary,
        "\n**{}** — the parallel engine {} the ROADMAP's multi-core win on this runner.",
        if pass { "PASS" } else { "FAIL" },
        if pass {
            "demonstrates"
        } else {
            "did not demonstrate"
        }
    );
    emit_summary(opts, &summary);
    Ok(pass)
}

/// One epoch of a compute-heavy mini-CNN at the given worker count:
/// returns the epoch wall time and the final parameter bit patterns.
fn shard_epoch(train: &sparsetrain_nn::data::Dataset, workers: usize) -> (f64, Vec<u32>) {
    use sparsetrain_core::prune::PruneConfig;
    use sparsetrain_nn::layer::Layer as _;
    use sparsetrain_nn::models;
    use sparsetrain_nn::train::{TrainConfig, Trainer};

    // Scalar-engine worker replicas: every bit of parallelism in the
    // sharded leg comes from the worker pool, not from rayon bands.
    let net = models::mini_cnn_for(3, 16, 3, 16, Some(PruneConfig::new(0.9, 2)), 42);
    let config = TrainConfig::quick()
        .with_engine_name("scalar")
        .with_workers(workers);
    let mut trainer = Trainer::new(net, config);
    let started = std::time::Instant::now();
    trainer.train_epoch(train);
    let secs = started.elapsed().as_secs_f64();
    let mut bits = Vec::new();
    trainer
        .network_mut()
        .visit_params(&mut |w, _| bits.extend(w.iter().map(|v| v.to_bits())));
    (secs, bits)
}

fn cmd_shard(opts: &Opts) -> Result<bool, String> {
    use sparsetrain_nn::data::SyntheticSpec;

    // 16×16 images + width-16 convs make per-granule compute dominate the
    // coordinator's per-step serial work (tau broadcast + SGD step).
    let spec = SyntheticSpec {
        classes: 3,
        train_samples: 96,
        test_samples: 1,
        channels: 3,
        size: 16,
        noise: 0.35,
        seed: 7,
    };
    let (train, _) = spec.generate();

    let mut summary = String::from("## Sharded data-parallel validation\n\n");
    let _ = writeln!(summary, "| workers | epoch time | speedup vs 1 |");
    let _ = writeln!(summary, "|---|---|---|");
    let mut reference: Option<Vec<u32>> = None;
    let mut base_secs = 0.0;
    let mut ratio = 0.0;
    let mut invariant = true;
    for workers in [1usize, 2, 4] {
        let (secs, bits) = shard_epoch(&train, workers);
        match &reference {
            None => {
                reference = Some(bits);
                base_secs = secs;
            }
            Some(one) => invariant &= *one == bits,
        }
        let speedup = base_secs / secs;
        if workers == 4 {
            ratio = speedup;
        }
        let _ = writeln!(
            summary,
            "| {workers} | {} | {speedup:.2}× |",
            format_ns(secs * 1e9)
        );
    }
    let pass = invariant && ratio >= opts.min_ratio;
    let _ = writeln!(
        summary,
        "\n4-worker speedup: **{ratio:.2}×**, required ≥ {:.2}×. Final parameters \
         across 1/2/4 workers: **{}**.",
        opts.min_ratio,
        if invariant {
            "bitwise identical"
        } else {
            "DIVERGED"
        }
    );
    let _ = writeln!(
        summary,
        "\n**{}** — the sharded trainer {} the multi-worker win with a bitwise-stable aggregate.",
        if pass { "PASS" } else { "FAIL" },
        if pass {
            "demonstrates"
        } else {
            "did not demonstrate"
        }
    );
    emit_summary(opts, &summary);
    Ok(pass)
}

/// Extracts inline Markdown link targets (`[text](target)`) from one line.
fn markdown_link_targets(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find("](") {
        let after = &rest[pos + 2..];
        let Some(end) = after.find(')') else { break };
        // Drop an optional `"title"` suffix inside the parentheses.
        let target = after[..end].split_whitespace().next().unwrap_or("");
        if !target.is_empty() {
            out.push(target);
        }
        rest = &after[end + 1..];
    }
    out
}

fn cmd_doccheck(opts: &Opts) -> Result<bool, String> {
    let mut files = vec![std::path::PathBuf::from("README.md")];
    let docs = std::path::Path::new("docs");
    if docs.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(docs)
            .map_err(|e| format!("cannot read docs/: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "md"))
            .collect();
        entries.sort();
        files.extend(entries);
    }

    let mut checked = 0usize;
    let mut broken = Vec::new();
    for file in &files {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let dir = file.parent().filter(|p| !p.as_os_str().is_empty());
        let dir = dir.unwrap_or_else(|| std::path::Path::new("."));
        let mut in_fence = false;
        for (idx, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in markdown_link_targets(line) {
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with("mailto:")
                    || target.starts_with('#')
                {
                    continue;
                }
                let path_part = target.split('#').next().unwrap_or("");
                if path_part.is_empty() {
                    continue;
                }
                checked += 1;
                if !dir.join(path_part).exists() {
                    broken.push(format!("{}:{}: broken link `{target}`", file.display(), idx + 1));
                }
            }
        }
    }

    let mut summary = String::from("## Documentation link check\n\n");
    let _ = writeln!(
        summary,
        "Checked {checked} relative link(s) across {} file(s).",
        files.len()
    );
    if broken.is_empty() {
        let _ = writeln!(summary, "\n**PASS** — every relative link resolves.");
    } else {
        let _ = writeln!(summary, "\n**FAIL** — {} broken link(s):\n", broken.len());
        for b in &broken {
            let _ = writeln!(summary, "- {b}");
        }
    }
    emit_summary(opts, &summary);
    Ok(broken.is_empty())
}

/// One AlexNet-shape bench layer's deterministic operands (same shapes,
/// densities and seed as `benches/engine.rs`).
struct PlanFixture {
    name: &'static str,
    c: usize,
    f: usize,
    hw: usize,
    input: sparsetrain_sparse::rowconv::SparseFeatureMap,
    dout: sparsetrain_sparse::rowconv::SparseFeatureMap,
    weights: sparsetrain_tensor::Tensor4,
}

fn plan_fixtures() -> Vec<PlanFixture> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparsetrain_sparse::rowconv::SparseFeatureMap;
    use sparsetrain_tensor::{Tensor3, Tensor4};

    // The AlexNet-style layer table of benches/engine.rs: (name, channels,
    // filters, spatial, input density, pruned-gradient density).
    const LAYERS: [(&str, usize, usize, usize, f64, f64); 4] = [
        ("conv1_3x64x32", 3, 64, 32, 0.95, 0.25),
        ("conv2_64x128x16", 64, 128, 16, 0.45, 0.15),
        ("conv3_128x192x8", 128, 192, 8, 0.35, 0.10),
        ("conv4_192x192x8", 192, 192, 8, 0.30, 0.05),
    ];

    LAYERS
        .into_iter()
        .map(|(name, c, f, hw, din, dgrad)| {
            let mut rng = StdRng::seed_from_u64(42);
            let sparse = |rng: &mut StdRng, density: f64| {
                if rng.gen::<f64>() < density {
                    rng.gen::<f32>() - 0.5
                } else {
                    0.0
                }
            };
            let input =
                SparseFeatureMap::from_tensor(&Tensor3::from_fn(c, hw, hw, |_, _, _| sparse(&mut rng, din)));
            let dout = SparseFeatureMap::from_tensor(&Tensor3::from_fn(f, hw, hw, |_, _, _| {
                sparse(&mut rng, dgrad)
            }));
            let weights = Tensor4::from_fn(f, c, 3, 3, |_, _, _, _| rng.gen::<f32>() - 0.5);
            PlanFixture {
                name,
                c,
                f,
                hw,
                input,
                dout,
                weights,
            }
        })
        .collect()
}

/// Probes the density-adaptive planner on the AlexNet-shape bench
/// fixtures and prints the frozen plan as a Markdown table. `--emit`
/// compiles the probed plan into a binary `STPLAN` program on disk;
/// `--replay` instead decodes such a program and replays it through the
/// plan VM over the same fixtures, passing only when every program cell
/// executed (so a stale artifact that no longer matches the fixtures
/// fails loudly).
fn cmd_plan(opts: &Opts) -> Result<bool, String> {
    use sparsetrain_sparse::{ExecutionContext, ExecutionProgram, PlanVm, Stage};
    use sparsetrain_tensor::conv::ConvGeometry;
    use sparsetrain_tensor::{Tensor3, Tensor4};

    let geom = ConvGeometry::new(3, 1, 1);
    let fixtures = plan_fixtures();

    if let Some(path) = &opts.replay {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let program = ExecutionProgram::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
        let mut vm = PlanVm::new(program).map_err(|e| format!("{path}: {e}"))?;
        for fix in &fixtures {
            vm.forward_batch(
                fix.name,
                std::slice::from_ref(&fix.input),
                &fix.weights,
                None,
                geom,
            );
            let masks = vec![fix.input.masks()];
            let mut dins = vec![Tensor3::zeros(fix.c, fix.hw, fix.hw)];
            vm.input_grad_batch_into(
                fix.name,
                std::slice::from_ref(&fix.dout),
                &fix.weights,
                geom,
                &masks,
                &mut dins,
            );
            let mut dw = Tensor4::zeros(fix.f, fix.c, 3, 3);
            vm.weight_grad_batch(
                fix.name,
                std::slice::from_ref(&fix.input),
                std::slice::from_ref(&fix.dout),
                geom,
                &mut dw,
            );
        }
        let pending = vm.pending_cells();
        let mut summary = String::from("## Replayed execution program\n\n");
        summary.push_str(&vm.plan().to_markdown());
        let pass = pending.is_empty();
        if pass {
            let _ = writeln!(
                summary,
                "\nEvery program cell executed ({} cells).",
                vm.program().cells().len()
            );
        } else {
            let _ = writeln!(summary, "\n**Unreplayed program cells:**\n");
            for (layer, stage) in &pending {
                let _ = writeln!(summary, "- `{layer}` / {}", stage.name());
            }
        }
        emit_summary(opts, &summary);
        return Ok(pass);
    }

    let mut ctx = ExecutionContext::by_name("auto").map_err(|e| e.to_string())?;
    for fix in &fixtures {
        let masks = vec![fix.input.masks()];
        ctx.forward_batch_for(
            fix.name,
            std::slice::from_ref(&fix.input),
            &fix.weights,
            None,
            geom,
        );
        let mut dins = vec![Tensor3::zeros(fix.c, fix.hw, fix.hw)];
        ctx.input_grad_batch_for_into(
            fix.name,
            std::slice::from_ref(&fix.dout),
            &fix.weights,
            geom,
            &masks,
            &mut dins,
        );
        let mut dw = Tensor4::zeros(fix.f, fix.c, 3, 3);
        ctx.weight_grad_batch_for(
            fix.name,
            std::slice::from_ref(&fix.input),
            std::slice::from_ref(&fix.dout),
            geom,
            &mut dw,
        );
    }
    let plan = ctx.plan().expect("auto context is planned");
    let mut summary = String::from("## Density-adaptive execution plan\n\n");
    summary.push_str(&plan.to_markdown());
    if let Some(path) = &opts.emit {
        let mut program = plan.to_program();
        for fix in &fixtures {
            let (in_nnz, out_nnz) = (fix.input.nnz() as u64, fix.dout.nnz() as u64);
            program.note_workspace(fix.name, Stage::Forward, in_nnz);
            program.note_workspace(fix.name, Stage::InputGrad, out_nnz);
            program.note_workspace(fix.name, Stage::WeightGrad, in_nnz + out_nnz);
            program.note_prune_point(fix.name, out_nnz);
        }
        let bytes = program.encode().map_err(|e| format!("encode: {e}"))?;
        std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            summary,
            "\nCompiled program: `{path}` ({} bytes, {} cells).",
            bytes.len(),
            program.cells().len()
        );
    }
    emit_summary(opts, &summary);
    Ok(true)
}

/// Measures the checkpoint subsystem on an AlexNet-shape model: snapshot
/// encode, decode, and the atomic save round-trip (write + fsync +
/// rename), plus the snapshot size. Appends shim-format lines to the
/// results trajectory so the numbers travel with the bench history.
fn cmd_ckpt(opts: &Opts) -> Result<bool, String> {
    use sparsetrain_checkpoint::{CheckpointManager, CheckpointPolicy, Snapshot};
    use sparsetrain_core::prune::PruneConfig;
    use sparsetrain_nn::data::SyntheticSpec;
    use sparsetrain_nn::models::ModelKind;
    use sparsetrain_nn::train::{TrainConfig, Trainer};

    // AlexNet on the CIFAR-10-like fixture, trained one short epoch so the
    // snapshot carries developed state (velocities, FIFOs, densities) —
    // an untrained model would undersell the payload.
    let mut spec = SyntheticSpec::cifar10_like();
    spec.size = 16;
    spec.train_samples = 64;
    spec.test_samples = 0;
    let (train, _) = spec.generate();
    let net = ModelKind::Alexnet.build(
        spec.channels,
        spec.size,
        spec.classes,
        Some(PruneConfig::new(0.9, 4)),
        7,
    );
    let mut trainer = Trainer::new(
        net,
        TrainConfig {
            batch_size: 16,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 3,
            engine: None,
            checkpoint: None,
            shard: None,
        },
    );
    trainer.train_epoch(&train);

    let snap = trainer.snapshot();
    let bytes = snap.encode().map_err(|e| format!("encode failed: {e}"))?;
    let size = bytes.len();

    let dir = std::env::temp_dir().join(format!("sparsetrain-ckpt-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut mgr = CheckpointManager::new(CheckpointPolicy::every_epochs(&dir, 1).with_keep(1))
        .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;

    const SAMPLES: usize = 10;
    let encode = measure(SAMPLES, 5, || {
        let bytes = snap.encode().unwrap();
        std::hint::black_box(bytes.len());
    });
    let decode = measure(SAMPLES, 5, || {
        let decoded = Snapshot::decode(&bytes).unwrap();
        std::hint::black_box(decoded.layers.len());
    });
    let save = measure(SAMPLES, 1, || {
        let path = mgr.save(&snap).unwrap();
        std::hint::black_box(&path);
    });
    std::fs::remove_dir_all(&dir).map_err(|e| format!("cannot clean {}: {e}", dir.display()))?;

    let results = opts.results.as_deref().unwrap_or("target/bench-results.jsonl");
    if let Some(parent) = std::path::Path::new(results).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let legs = [
        ("ckpt/encode/alexnet", encode, SAMPLES, 5),
        ("ckpt/decode/alexnet", decode, SAMPLES, 5),
        ("ckpt/save_fsync/alexnet", save, SAMPLES, 1),
        // Size rides the same trajectory: the "ns" field carries bytes.
        ("ckpt/snapshot_bytes/alexnet", (size as f64, 0.0), 1, 1),
    ];
    {
        use std::io::Write as _;
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(results)
            .map_err(|e| format!("cannot open {results}: {e}"))?;
        for (label, (mean, stddev), samples, iters) in &legs {
            writeln!(
                file,
                "{{\"bench\":\"{label}\",\"mean_ns\":{mean:.3},\"stddev_ns\":{stddev:.3},\
                 \"samples\":{samples},\"iters\":{iters},\"unix_time\":{unix_time}}}"
            )
            .map_err(|e| format!("cannot write {results}: {e}"))?;
        }
    }

    let mut summary = String::from("## Checkpoint round-trip (AlexNet-shape)\n\n");
    let _ = writeln!(summary, "| leg | mean | stddev |");
    let _ = writeln!(summary, "|---|---|---|");
    for (label, (mean, stddev), _, _) in legs.iter().take(3) {
        let _ = writeln!(
            summary,
            "| {label} | {} | {} |",
            format_ns(*mean),
            format_ns(*stddev)
        );
    }
    let _ = writeln!(
        summary,
        "\nSnapshot size: **{:.1} KiB** ({size} bytes, {} layer-state entries). \
         Appended {} legs to `{results}`.",
        size as f64 / 1024.0,
        snap.layers.len(),
        legs.len()
    );
    emit_summary(opts, &summary);
    Ok(true)
}

/// Runs the seeded chaos campaign (see `sparsetrain_bench::chaos`): every
/// scenario injects faults through the real seams, trains through them
/// under the supervisor, and must land bitwise on the fault-free run's
/// parameters. Appends one `{"chaos":{...}}` jsonl line per scenario to
/// `--out` (default `target/chaos-results.jsonl`) and fails the job when
/// any scenario diverges.
fn cmd_chaos(opts: &Opts) -> Result<bool, String> {
    let report = sparsetrain_bench::chaos::run_campaign(opts.seed, opts.extra)?;
    let out = opts.out.as_deref().unwrap_or("target/chaos-results.jsonl");
    if let Some(parent) = std::path::Path::new(out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(out)
            .map_err(|e| format!("cannot open {out}: {e}"))?;
        for outcome in &report.outcomes {
            writeln!(file, "{}", outcome.to_jsonl()).map_err(|e| format!("cannot write {out}: {e}"))?;
        }
    }
    let mut summary = report.to_markdown();
    let _ = writeln!(
        summary,
        "\nAppended {} scenario records to `{out}`.",
        report.outcomes.len()
    );
    emit_summary(opts, &summary);
    Ok(report.all_pass())
}

/// Mean/stddev ns of `iters` calls to `f`, over `samples` timed samples.
fn measure(samples: usize, iters: usize, mut f: impl FnMut()) -> (f64, f64) {
    f(); // warm-up
    let mut per_iter = Vec::with_capacity(samples);
    for _ in 0..samples {
        let started = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(started.elapsed().as_nanos() as f64 / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let var = per_iter.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / per_iter.len() as f64;
    (mean, var.sqrt())
}

/// Appends Markdown to `--summary` (e.g. `$GITHUB_STEP_SUMMARY`) and
/// always echoes it to stdout.
fn emit_summary(opts: &Opts, text: &str) {
    println!("{text}");
    if let Some(path) = &opts.summary {
        use std::io::Write as _;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{text}"));
        if let Err(e) = appended {
            eprintln!("warning: cannot append summary to {path}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_parse() {
        let line = r#"{"bench":"engine_forward/parallel:simd/conv2_64x128x16","mean_ns":1234.500,"stddev_ns":1.0,"samples":10,"iters":3,"unix_time":1}"#;
        let (label, ns) = parse_jsonl_line(line).unwrap();
        assert_eq!(label, "engine_forward/parallel:simd/conv2_64x128x16");
        assert_eq!(ns, 1234.5);
        assert!(parse_jsonl_line("not json").is_none());
        assert!(parse_jsonl_line(r#"{"bench":"x","mean_ns":NaN}"#).is_none());
    }

    #[test]
    fn median_is_robust_to_order_and_parity() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(vec![7.0]), 7.0);
    }

    #[test]
    fn baseline_roundtrips() {
        let mut legs = BTreeMap::new();
        legs.insert("engine_forward/scalar/conv1_3x64x32".to_string(), 100.0);
        legs.insert("engine_forward/parallel:im2row/conv1_3x64x32".to_string(), 40.5);
        let text = render_baseline(&legs);
        assert_eq!(parse_baseline(&text), legs);
    }

    fn legs(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|(l, ns)| (l.to_string(), *ns)).collect()
    }

    #[test]
    fn gate_normalizes_by_the_same_runs_scalar_leg() {
        let baseline = legs(&[
            ("engine_forward/scalar/conv1", 100.0),
            ("engine_forward/simd/conv1", 50.0), // 0.5× scalar
        ]);
        // A uniformly 3× slower machine: same normalized ratio — no fail.
        let slower = legs(&[
            ("engine_forward/scalar/conv1", 300.0),
            ("engine_forward/simd/conv1", 150.0),
        ]);
        let (failures, fresh) = gate_conv_legs(&baseline, &slower, 0.20);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(fresh.is_empty());
        // A genuine 30 % relative regression on the simd leg: fail.
        let regressed = legs(&[
            ("engine_forward/scalar/conv1", 100.0),
            ("engine_forward/simd/conv1", 65.0),
        ]);
        let (failures, _) = gate_conv_legs(&baseline, &regressed, 0.20);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("engine_forward/simd/conv1"), "{failures:?}");
        // Within threshold: 10 % does not fail.
        let mild = legs(&[
            ("engine_forward/scalar/conv1", 100.0),
            ("engine_forward/simd/conv1", 55.0),
        ]);
        assert!(gate_conv_legs(&baseline, &mild, 0.20).0.is_empty());
    }

    #[test]
    fn gate_flags_missing_and_fresh_legs() {
        let baseline = legs(&[
            ("engine_forward/scalar/conv1", 100.0),
            ("engine_forward/simd/conv1", 50.0),
        ]);
        let current = legs(&[
            ("engine_forward/scalar/conv1", 100.0),
            ("engine_forward/im2row/conv1", 30.0),
        ]);
        let (failures, fresh) = gate_conv_legs(&baseline, &current, 0.20);
        assert_eq!(failures.len(), 1, "baseline leg vanished must fail: {failures:?}");
        assert_eq!(fresh, vec!["engine_forward/im2row/conv1".to_string()]);
        // Non-conv groups are never gated by the conv gate.
        let baseline = legs(&[("pruning/seq/t1/b8", 10.0)]);
        let (failures, fresh) = gate_conv_legs(&baseline, &legs(&[]), 0.20);
        assert!(failures.is_empty() && fresh.is_empty());
    }

    #[test]
    fn pruning_gate_normalizes_banded_legs_by_the_seq_reference() {
        let baseline = legs(&[
            ("pruning/seq/t1/b8", 100.0),
            ("pruning/banded/parallel:simd/t1/b8", 50.0), // 0.5× seq
        ]);
        // Uniformly slower runner, same ratio: pass.
        let slower = legs(&[
            ("pruning/seq/t1/b8", 200.0),
            ("pruning/banded/parallel:simd/t1/b8", 100.0),
        ]);
        let (failures, fresh) = gate_pruning_legs(&baseline, &slower, 0.20);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(fresh.is_empty());
        // Genuine 30 % relative regression on the banded leg: fail.
        let regressed = legs(&[
            ("pruning/seq/t1/b8", 100.0),
            ("pruning/banded/parallel:simd/t1/b8", 65.0),
        ]);
        let (failures, _) = gate_pruning_legs(&baseline, &regressed, 0.20);
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("pruning/banded/parallel:simd/t1/b8"),
            "{failures:?}"
        );
        // A baseline banded leg missing from the run fails; a fresh banded
        // leg is only noted; seq legs are never gated themselves.
        let missing = legs(&[("pruning/seq/t1/b8", 100.0), ("pruning/banded/auto/t1/b8", 60.0)]);
        let (failures, fresh) = gate_pruning_legs(&baseline, &missing, 0.20);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("leg missing"), "{failures:?}");
        assert_eq!(fresh, vec!["pruning/banded/auto/t1/b8".to_string()]);
        // A seq-only baseline gates nothing.
        let seq_only = legs(&[("pruning/seq/t1/b8", 10.0)]);
        let (failures, fresh) = gate_pruning_legs(&seq_only, &legs(&[]), 0.20);
        assert!(failures.is_empty() && fresh.is_empty());
    }

    #[test]
    fn ratio_table_lists_scalar_first_with_speedups() {
        let current = legs(&[
            ("engine_forward/scalar/conv1", 100.0),
            ("engine_forward/im2row/conv1", 25.0),
            ("engine_forward/simd/conv1", 50.0),
        ]);
        let table = render_ratio_table(&current);
        assert!(table.contains("| leg | scalar | im2row | simd |"), "{table}");
        assert!(table.contains("(4.00×)"), "{table}");
        assert!(table.contains("(2.00×)"), "{table}");
    }

    #[test]
    fn split_leg_keeps_colon_engine_names() {
        let (group, engine, layer) = split_leg("engine_forward/parallel:im2row/conv1_3x64x32").unwrap();
        assert_eq!(group, "engine_forward");
        assert_eq!(engine, "parallel:im2row");
        assert_eq!(layer, "conv1_3x64x32");
        let (_, engine, layer) = split_leg("engine_forward_batched/scalar/batched/conv3").unwrap();
        assert_eq!(engine, "scalar");
        assert_eq!(layer, "batched/conv3");
    }
}
