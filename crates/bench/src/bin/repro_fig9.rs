//! Regenerates Fig. 9: average energy per sample broken down into DRAM /
//! SRAM / register / combinational components, with efficiency ratios.

use sparsetrain_bench::experiments::latency::{mean_energy_efficiency, run_grid};
use sparsetrain_bench::profile::Profile;
use sparsetrain_bench::table::{fmt, render};
use sparsetrain_nn::models::ModelKind;
use sparsetrain_sim::energy::EnergyBreakdown;

fn breakdown_cells(e: &EnergyBreakdown) -> [String; 5] {
    [
        fmt(e.dram_pj / 1e6, 2),
        fmt(e.sram_pj / 1e6, 2),
        fmt(e.reg_pj / 1e6, 2),
        fmt(e.comb_pj / 1e6, 2),
        fmt(e.total_uj(), 2),
    ]
}

fn main() {
    let profile = Profile::from_env();
    println!("Fig. 9 reproduction ({profile:?} profile) — energy in uJ/sample");
    println!("paper: baseline SRAM share 62-71%; SparseTrain cuts SRAM 30-59%, comb 53-88%; 1.5-2.8x efficiency (avg 2.2x)\n");

    let rows = run_grid(profile, &ModelKind::ALL, &Profile::dataset_names());
    let mut out = vec![vec![
        "model".to_string(),
        "dataset".to_string(),
        "arch".to_string(),
        "DRAM".to_string(),
        "SRAM".to_string(),
        "Reg".to_string(),
        "Comb".to_string(),
        "total".to_string(),
        "SRAM share".to_string(),
        "efficiency".to_string(),
    ]];
    for r in &rows {
        let d = breakdown_cells(&r.dense_energy);
        out.push(vec![
            r.model.name().to_string(),
            r.dataset.clone(),
            "baseline".into(),
            d[0].clone(),
            d[1].clone(),
            d[2].clone(),
            d[3].clone(),
            d[4].clone(),
            format!("{}%", fmt(r.dense_energy.sram_share() * 100.0, 0)),
            "1.00x".into(),
        ]);
        let s = breakdown_cells(&r.sparse_energy);
        out.push(vec![
            String::new(),
            String::new(),
            "sparsetrain".into(),
            s[0].clone(),
            s[1].clone(),
            s[2].clone(),
            s[3].clone(),
            s[4].clone(),
            format!("{}%", fmt(r.sparse_energy.sram_share() * 100.0, 0)),
            format!("{}x", fmt(r.energy_efficiency, 2)),
        ]);
    }
    println!("{}", render(&out));
    println!(
        "geometric-mean energy efficiency: {}x",
        fmt(mean_energy_efficiency(&rows), 2)
    );
}
