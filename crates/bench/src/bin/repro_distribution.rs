//! Checks the §III modelling assumption on live training gradients.
//!
//! The threshold determination assumes activation gradients at the
//! pruning positions are zero-mean normal. This binary trains each
//! evaluated model briefly, taps the pre-prune gradients at every pruning
//! position, and prints the distribution diagnostics: σ-band coverage,
//! the half-normal ratio `E|g|/σ` (√(2/π) ≈ 0.798 under the model) and a
//! composite normality score. High scores justify the determined
//! threshold; low scores would flag layers where the achieved sparsity
//! can miss the target.
//!
//! Run with: `cargo run --release -p sparsetrain-bench --bin repro_distribution`
//! (set `SPARSETRAIN_PROFILE=full` for the larger configuration).

use sparsetrain_bench::profile::Profile;
use sparsetrain_bench::table::{fmt, render};
use sparsetrain_core::prune::diagnostics::{DistributionSummary, HALF_NORMAL_RATIO};
use sparsetrain_core::prune::PruneConfig;
use sparsetrain_nn::models::ModelKind;
use sparsetrain_nn::train::{TrainConfig, Trainer};

fn main() {
    let profile = Profile::from_env();
    println!("gradient-distribution check ({profile:?} profile)");
    println!("model assumption: zero-mean normal; E|g|/sigma = {HALF_NORMAL_RATIO:.4}\n");

    let mut rows: Vec<Vec<String>> = vec![vec![
        "model".into(),
        "positions".into(),
        "n".into(),
        "E|g|/sigma".into(),
        "skew".into(),
        "ex.kurt".into(),
        "score".into(),
    ]];

    for model in [ModelKind::Alexnet, ModelKind::Resnet18] {
        let spec = profile.sim_dataset("cifar10");
        let (train, _) = spec.generate();
        let net = model.build(
            spec.channels,
            spec.size,
            spec.classes,
            Some(PruneConfig::paper_default()),
            23,
        );
        let mut trainer = Trainer::new(
            net,
            TrainConfig {
                batch_size: 16,
                lr: 0.01,
                momentum: 0.9,
                weight_decay: 1e-4,
                seed: 5,
                engine: None,
                checkpoint: None,
                shard: None,
            },
        );
        // A little training so the gradients are shaped by the data, not
        // just by initialization.
        for _ in 0..profile.epochs().min(3) {
            trainer.train_epoch(&train);
        }

        let tapped = trainer.tap_gradients(&train);
        // The algorithm is *layer-wise* precisely because gradient scales
        // differ across layers — pooling positions would fabricate a
        // heavy-tailed variance mixture. Summarize per position, then
        // report the across-position means of the diagnostics.
        let summaries: Vec<DistributionSummary> = tapped
            .iter()
            .map(|(_, values)| DistributionSummary::from_nonzero(values))
            .collect();
        let n_total: usize = summaries.iter().map(|s| s.n).sum();
        let mean_of = |f: &dyn Fn(&DistributionSummary) -> f64| -> f64 {
            if summaries.is_empty() {
                0.0
            } else {
                summaries.iter().map(f).sum::<f64>() / summaries.len() as f64
            }
        };
        rows.push(vec![
            model.name().into(),
            tapped.len().to_string(),
            n_total.to_string(),
            fmt(mean_of(&|s| s.half_normal_ratio().unwrap_or(0.0)), 4),
            fmt(mean_of(&|s| s.skewness), 3),
            fmt(mean_of(&|s| s.excess_kurtosis), 3),
            fmt(mean_of(&|s| s.normality_score()), 3),
        ]);

        // Per-position detail for the most and least normal positions.
        let mut scored: Vec<(String, f64)> = tapped
            .iter()
            .map(|(name, v)| {
                (
                    name.clone(),
                    DistributionSummary::from_nonzero(v).normality_score(),
                )
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        if let (Some(worst), Some(best)) = (scored.first(), scored.last()) {
            println!(
                "{}: score range [{:.3} @ {}, {:.3} @ {}]",
                model.name(),
                worst.1,
                worst.0,
                best.1,
                best.0
            );
        }
    }

    println!("\n{}", render(&rows));
    println!("statistics are per pruning position (the granularity the layer-wise");
    println!("algorithm operates at), averaged across positions; scores near 1");
    println!("mean the normal model — and the threshold formula — hold.");
}
